int main(void) { (sizeof(0)); return 0; }
