int main(void) { (0 ? 0 : ((short)(0))); return 0; }
