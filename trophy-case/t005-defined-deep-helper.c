int mix1(int a, int b) { return (((((unsigned long long)((a & 16383))) & 127)) ? ((((a & 16383)) >> 5)) : (((int)sizeof(int) & 31))); }
int main(void) {
  unsigned short v1 = 13;
  long long v2 = 42;
  v2 = (v2 & 16383);
  switch (((mix1(((v1 & 16383)), ((v1 & 16383))) & 16383)) & 3) {
    case 0: {
      for (int i3 = 0; i3 < 10; i3++) {
        v1 &= (v2 & 16383);
      }
      break;
    }
    case 1: {
      v2 -= 6411;
      break;
    }
  }
  {
    int w4 = 2;
    while (w4 > 0) {
      w4 = w4 - 1;
      v1 ^= ((2891) || ((v2 & 16383)));
    }
  }
  if ((mix1((8425), ((v1 & 16383))) & 16383)) {
    {
      unsigned int t5 = (v1 & 16383);
      t5--;
    }
  } else {
    v2 = (((v2 & 16383) - 7802) & 16383);
  }
  switch (((((v1 & 16383)) && (1757))) & 3) {
    case 0: {
      (mix1(((v1 & 16383)), ((v2 & 16383))) & 16383);
      break;
    }
    case 1: {
      if ((((v1 & 16383)) <= ((((unsigned char *)&v2)[2] & 255)))) {
        v2 &= ((7795) ? (9222) : ((v2 & 16383)));
      } else {
        (((v1 & 16383)) / ((((v2 & 16383)) & 15) + 1));
      }
      break;
    }
    case 2: {
      v1++;
      break;
    }
    case 3: {
      {
        int t6 = (((7773) & 255) << 3);
        (((t6 & 16383)) >= ((t6 & 16383)));
      }
      break;
    }
    default: {
      (void)((((((unsigned char *)&v2)[1] & 255) ^ (v2 & 16383)) & 16383));
    }
  }
  {
    unsigned int t7 = (((v2 & 16383) + (((unsigned char *)&v1)[0] & 255)) & 16383);
    {
      int w8 = 9;
      while (w8 > 0) {
        w8 = w8 - 1;
        t7 = (((mix1((9230), (6213)) & 16383) * (((v2 & 16383)) / ((((w8 & 16383)) & 15) + 1))) & 16383);
      }
    }
  }
  v1--;
  if (6021) {
    v1 = ((((int)sizeof(unsigned char) & 31) + 8437) & 16383);
  } else {
    ((unsigned char *)&v1)[0] = 71;
  }
  {
    int w9 = 6;
    while (w9 > 0) {
      w9 = w9 - 1;
      v1 = (((((((unsigned char *)&v2)[5] & 255)) > (498))) && ((((short)((v2 & 16383))) & 127)));
    }
  }
  v1 = (((((v1 & 16383) & (((unsigned char *)&v1)[1] & 255)) & 16383) + (((long)((v2 & 16383))) & 127)) & 16383);
  int r10 = ((((mix1((2465), ((((unsigned char *)&v2)[5] & 255))) & 16383)) % (((((int)sizeof(long) & 31)) & 15) + 1))) & 127;
  return r10;
}
