int main(void) {
  int v0 = 0;
  v0 = (v0 + 1) & 1023;
  void bad;
  return v0 & 127;
}
