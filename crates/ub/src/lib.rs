//! Catalog and taxonomy of undefined behavior in C.
//!
//! This crate is the vocabulary shared by the whole workspace. It provides:
//!
//! - [`UbKind`] — every category of undefined behavior the checker can
//!   *detect*, each carrying a numeric error code, a C11 section reference,
//!   a static/dynamic classification and (where applicable) the class it
//!   falls into in the Juliet-derived benchmark;
//! - [`catalog`] — the full classification of the undefined behaviors
//!   enumerated by the C standard (221 entries: 92 statically detectable,
//!   129 only dynamically detectable), reproducing §5.2.1 of
//!   *Defining the Undefinedness of C*;
//! - [`UbError`] and [`Diagnostic`] — structured reports rendered in the
//!   style of the paper's `kcc` tool;
//! - [`render`] — the rendering seam: per-file [`render::FileResult`]s
//!   plus pluggable [`render::Renderer`]s (human, JSON Lines,
//!   SARIF 2.1.0), backed by the dependency-free [`json`] helpers.
//!
//! # Examples
//!
//! ```
//! use cundef_ub::{UbKind, Detectability};
//!
//! let info = UbKind::UnsequencedSideEffect.info();
//! assert_eq!(info.code, 16);
//! assert_eq!(info.detect, Detectability::Dynamic);
//! assert!(info.std_ref.contains("6.5"));
//! ```

#![deny(missing_docs)]

mod catalog;
mod class;
pub mod json;
mod kind;
pub mod render;
mod report;

pub use catalog::{catalog, catalog_counts, CatalogCounts, CatalogEntry};
pub use class::{Detectability, JulietClass};
pub use kind::{UbInfo, UbKind};
pub use report::{Diagnostic, Severity, SourceLoc, UbError};
