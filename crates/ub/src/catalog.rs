//! The full classification of C11's undefined behaviors (§5.2.1 of the
//! paper).
//!
//! *Defining the Undefinedness of C* (Hathhorn, Ellison, Roșu; PLDI 2015)
//! classifies the **221** undefined behaviors enumerated by the C11
//! standard into **92** that are *statically* detectable — diagnosable from
//! the program text alone, typically during translation — and **129** that
//! are only *dynamically* detectable, i.e. visible only on particular
//! executions (§5.2.1). This module reproduces that classification as a
//! static table.
//!
//! The enumeration follows the order of the standard itself: the entries
//! for the language clauses (4, 5.x, 6.x) come first, followed by the
//! library clause (7.x), mirroring the collected list in Annex J.2 of
//! ISO/IEC 9899:2011 together with the additional undefined behaviors the
//! paper identifies in the normative text. Each [`CatalogEntry`] records:
//!
//! - a stable 1-based `id` (position in the enumeration),
//! - a one-line paraphrased `summary` of the triggering situation,
//! - the `std_ref` section of C11 (N1570) that withholds the requirement,
//! - its static/dynamic [`Detectability`] classification, and
//! - optionally the [`UbKind`] detector in this workspace that catches it
//!   (`detected_by`), linking the taxonomy to the executable semantics.
//!
//! A `detected_by` link is a coverage *claim*: it is only recorded when a
//! checker for that kind actually exists — the evaluator for dynamic
//! kinds, the `cundef-analysis` translation-phase analyzer for static
//! ones. The analysis crate's invariant tests verify every link against
//! both registries, so links cannot rot silently.
//!
//! The headline numbers are checked by [`catalog_counts`], which asserts
//! the paper's 221 = 92 + 129 split at test time, and re-checked by the
//! crate's invariant tests.

use crate::{Detectability, UbKind};

/// One undefined behavior from the standard's enumeration, as classified
/// in §5.2.1 of the paper.
///
/// # Examples
///
/// ```
/// use cundef_ub::{catalog, Detectability};
///
/// let unsequenced = catalog()
///     .iter()
///     .find(|e| e.summary.contains("unsequenced relative to another side effect"))
///     .unwrap();
/// assert_eq!(unsequenced.detect, Detectability::Dynamic);
/// assert!(unsequenced.std_ref.starts_with("6.5"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogEntry {
    /// 1-based position in the enumeration (stable across releases).
    pub id: u16,
    /// One-line paraphrase of the situation whose behavior is undefined.
    pub summary: &'static str,
    /// The C11 (N1570) section that makes the behavior undefined.
    pub std_ref: &'static str,
    /// Whether the situation is statically or only dynamically detectable.
    pub detect: Detectability,
    /// The detector in this workspace that catches (a family including)
    /// this entry, if one exists yet. Only recorded when the named kind
    /// has a real checker: the evaluator or the translation-phase
    /// analyzer.
    pub detected_by: Option<UbKind>,
}

/// Aggregate counts over the catalog, matching the paper's headline
/// numbers.
///
/// # Examples
///
/// ```
/// use cundef_ub::catalog_counts;
///
/// let c = catalog_counts();
/// assert_eq!(c.total, 221);
/// assert_eq!(c.statically_detectable, 92);
/// assert_eq!(c.dynamically_detectable, 129);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogCounts {
    /// Total number of catalogued undefined behaviors (221).
    pub total: usize,
    /// Entries diagnosable from the program text alone (92).
    pub statically_detectable: usize,
    /// Entries diagnosable only by executing the program (129).
    pub dynamically_detectable: usize,
}

macro_rules! entries {
    ($(($id:expr, $detect:ident, $std_ref:expr, $summary:expr $(, $kind:ident)?)),+ $(,)?) => {
        &[$(CatalogEntry {
            id: $id,
            summary: $summary,
            std_ref: $std_ref,
            detect: Detectability::$detect,
            detected_by: entries!(@kind $($kind)?),
        },)+]
    };
    (@kind) => { None };
    (@kind $kind:ident) => { Some(UbKind::$kind) };
}

/// The full catalog, in standard order. See the module docs for the
/// structure of the enumeration.
///
/// # Examples
///
/// ```
/// use cundef_ub::catalog;
/// assert_eq!(catalog().len(), 221);
/// assert_eq!(catalog()[0].id, 1);
/// ```
pub fn catalog() -> &'static [CatalogEntry] {
    CATALOG
}

/// Count the catalog along the static/dynamic axis, asserting (in debug
/// builds and tests) the paper's 221 = 92 + 129 split.
pub fn catalog_counts() -> CatalogCounts {
    let statically_detectable = CATALOG
        .iter()
        .filter(|e| e.detect == Detectability::Static)
        .count();
    let total = CATALOG.len();
    let counts = CatalogCounts {
        total,
        statically_detectable,
        dynamically_detectable: total - statically_detectable,
    };
    debug_assert_eq!(counts.total, 221, "catalog must enumerate 221 UBs");
    debug_assert_eq!(counts.statically_detectable, 92, "92 static (§5.2.1)");
    debug_assert_eq!(counts.dynamically_detectable, 129, "129 dynamic (§5.2.1)");
    counts
}

static CATALOG: &[CatalogEntry] = entries![
    // ----- clause 4 & 5: conformance, environment, translation -----
    (1, Dynamic, "4:2", "A ''shall'' requirement appearing outside of a constraint or runtime-constraint is violated"),
    (2, Static, "5.1.1.2:1", "A nonempty source file does not end in a newline, or ends in a newline immediately preceded by a backslash"),
    (3, Static, "5.1.1.2:1", "A source file ends inside a preprocessing token or inside a comment"),
    (4, Static, "5.1.2.2.1:1", "In a hosted environment, main is defined with a signature the implementation does not document", NonstandardMain),
    (5, Static, "5.1.2.2.3:1", "The value returned from main is used after main's closing brace is reached in a function whose return type is incompatible with int", NonstandardMain),
    (6, Dynamic, "5.1.2.3:6", "The program's execution contains a data race on a non-atomic object"),
    (7, Static, "5.2.1:3", "A character outside the basic source character set is encountered in a source file, except where permitted"),
    (8, Static, "5.2.1.2:2", "An identifier, comment, string literal, character constant, or header name contains an invalid multibyte character"),
    (9, Static, "5.2.1.2:2", "A multibyte character sequence does not begin and end in the initial shift state"),

    // ----- 6.2: identifiers, linkage, storage, types -----
    (10, Static, "6.2.2:7", "The same identifier appears with both internal and external linkage in a translation unit", MixedLinkage),
    (11, Dynamic, "6.2.4:2", "An object is referred to outside of its lifetime", DeadObjectAccess),
    (12, Dynamic, "6.2.4:2", "The value of a pointer is used after the lifetime of the object it pointed to has ended", DeadObjectAccess),
    (13, Dynamic, "6.2.4:6", "The value of an automatic object is used while it is indeterminate", ReadIndeterminate),
    (14, Dynamic, "6.2.6.1:5", "A trap representation is read by an lvalue expression that does not have character type", ReadIndeterminate),
    (15, Dynamic, "6.2.6.1:5", "A trap representation is produced by a side effect that modifies an object through an lvalue without character type"),
    (16, Dynamic, "6.2.6.1:4", "An object is copied byte-by-byte only in part and the partially copied value is then used as a pointer"),
    (17, Dynamic, "6.2.6.2:4", "An arithmetic operation produces or consumes a negative zero in a way the implementation does not support"),
    (18, Static, "6.2.7:2", "Two declarations of the same object or function in the same scope specify incompatible types", IncompatibleRedeclaration),

    // ----- 6.3: conversions -----
    (19, Dynamic, "6.3.1.4:1", "A floating-point value is converted to an integer type that cannot represent its integral part"),
    (20, Dynamic, "6.3.1.5:1", "A real floating value being demoted cannot be represented, even approximately, in the narrower type"),
    (21, Dynamic, "6.3.2.1:2", "An lvalue that does not designate an object when it is evaluated is used"),
    (22, Static, "6.3.2.2:1", "The (nonexistent) value of a void expression is used", VoidValueUsed),
    (23, Dynamic, "6.3.2.3:5", "A pointer is converted to an integer type and the result cannot be represented in it"),
    (24, Dynamic, "6.3.2.3:7", "A pointer is converted to a pointer type for which the value is incorrectly aligned", MisalignedAccess),
    (25, Static, "6.3.2.3:8", "A converted function pointer is used to call a function whose type is incompatible with the pointed-to type", CallWrongType),
    (26, Static, "6.3.2.3", "A pointer to a function is converted to a pointer to an object type, or vice versa", FunctionObjectPointerCast),

    // ----- 6.4: lexical elements -----
    (27, Static, "6.4:3", "An unmatched ' or \" character is encountered on a logical source line during tokenization"),
    (28, Static, "6.4.1:2", "A reserved keyword token is produced by macro replacement and used as something other than a keyword"),
    (29, Static, "6.4.2.1:7", "Two identifiers differ only in nonsignificant characters"),
    (30, Static, "6.4.2.2:2", "The identifier __func__ is explicitly declared"),
    (31, Static, "6.4.3:2", "A universal character name is formed by token concatenation"),
    (32, Dynamic, "6.4.5:7", "The program attempts to modify a string literal"),
    (33, Static, "6.4.7:3", "The characters ', \\, //, or /* occur between the < and > delimiters of a header name"),

    // ----- 6.5: expressions -----
    (34, Dynamic, "6.5:2", "A side effect on a scalar object is unsequenced relative to another side effect on the same object", UnsequencedSideEffect),
    (35, Dynamic, "6.5:2", "A side effect on a scalar object is unsequenced relative to a value computation using the value of the same object", UnsequencedSideEffect),
    (36, Dynamic, "6.5:5", "An exceptional condition occurs during expression evaluation: a result of signed arithmetic not representable at the operands' converted type (unsigned arithmetic wraps and is defined)", SignedOverflow),
    (37, Dynamic, "6.5:7", "An object is accessed through an lvalue of a type incompatible with its effective type", AccessWrongEffectiveType),
    (38, Static, "6.5.1.1:3", "A generic selection has no matching association and no default association"),
    (39, Dynamic, "6.5.2.2:6", "A function is called with a number of arguments that disagrees with the number of parameters in its definition", CallWrongArity),
    (40, Dynamic, "6.5.2.2:6", "A function defined without a prototype is called with argument types incompatible with its parameter types", CallWrongType),
    (41, Dynamic, "6.5.2.2:9", "A function is called through an expression of a type incompatible with the type of the function's definition", CallWrongType),
    (42, Dynamic, "6.5.2.2:1", "The expression that denotes the called function does not designate a function", CallNonFunction),
    (43, Dynamic, "6.5.3.2:4", "The unary * operator is applied to a null or otherwise invalid pointer value", NullDereference),
    (44, Dynamic, "6.5.3.2:4", "The unary * operator is applied to a pointer to an object past the end of its array", OutOfBoundsRead),
    (45, Static, "6.5.3.2:4", "The operand of unary * is a pointer to void whose pointed-to value is used", VoidDereference),
    (46, Dynamic, "6.5.5:5", "The second operand of the / or % operator is zero", DivisionByZero),
    (47, Dynamic, "6.5.5:6", "The quotient of integer division or remainder is not representable (e.g. INT_MIN / -1)", DivisionOverflow),
    (48, Dynamic, "6.5.6:8", "Pointer arithmetic produces a result that points neither into, nor one past the end of, the same array object", PointerArithmeticOutOfBounds),
    (49, Dynamic, "6.5.6:8", "The result of pointer arithmetic that points one past the last element of an array object is dereferenced", OutOfBoundsRead),
    (50, Dynamic, "6.5.6:9", "Two pointers that do not point into, or one past the end of, the same array object are subtracted", PointerSubtractionDifferentObjects),
    (51, Dynamic, "6.5.6:9", "The difference of two pointers is not representable in ptrdiff_t"),
    (52, Dynamic, "6.5.7:3", "The shift amount is negative", ShiftByNegative),
    (53, Dynamic, "6.5.7:3", "The shift amount is greater than or equal to the width of the promoted left operand (32 for int, 64 for long under LP64)", ShiftTooFar),
    (54, Dynamic, "6.5.7:4", "A negative value of signed type is shifted left", ShiftOfNegative),
    (55, Dynamic, "6.5.7:4", "The result of a left shift of a signed value is not representable in the promoted left operand's type (unsigned left shifts wrap and are defined)", ShiftOverflow),
    (56, Dynamic, "6.5.8:5", "Pointers that do not point into the same aggregate object are compared with a relational operator", PointerCompareDifferentObjects),
    (57, Dynamic, "6.5.16.1:3", "The objects in a simple assignment overlap and have incompatible effective types"),

    // ----- 6.6 & 6.7: constants and declarations -----
    (58, Static, "6.6:4", "A constant expression in an initializer is not, or does not evaluate to, a constant"),
    (59, Static, "6.7:3", "The same identifier is declared more than once in the same scope with incompatible declarations", IncompatibleRedeclaration),
    (60, Static, "6.7.2.1:16", "A member of an atomic structure or union is accessed"),
    (61, Static, "6.7.2.3:4", "The same type tag is declared with different kinds of tag (struct vs union vs enum)"),
    (62, Static, "6.7.3:2", "The restrict qualifier is applied to a type that is not a pointer to an object type", RestrictNonPointer),
    (63, Dynamic, "6.7.3:6", "An attempt is made to modify an object defined with a const-qualified type through a non-const lvalue", WriteToConst),
    (64, Static, "6.7.3:7", "An attempt is made to refer to an object defined with a volatile-qualified type through a non-volatile lvalue"),
    (65, Static, "6.7.3:9", "A function type is specified with type qualifiers", QualifiedFunctionType),
    (66, Dynamic, "6.7.3.1:4", "A restrict-qualified pointer's object is accessed through an independent second pointer during the block"),
    (67, Dynamic, "6.7.3.1:11", "An object designated through a restrict-qualified pointer is modified after being also accessed through another pointer"),
    (68, Static, "6.7.4:6", "A call to a function declared with an inline definition that references an identifier with internal linkage is made from another translation unit"),
    (69, Static, "6.7.6.2:1", "An array is declared with a constant size that is not greater than zero", ArraySizeNotPositive),
    (70, Dynamic, "6.7.6.2:5", "A variable length array is declared whose size, when evaluated, is not greater than zero", VlaSizeNotPositive),
    (71, Dynamic, "6.7.6.2:5", "The size expression of a variable length array changes between declarations that are required to be compatible"),
    (72, Static, "6.7.6.3:15", "Two declarations of a function specify parameter lists that cannot be composed into a compatible type", IncompatibleRedeclaration),
    (73, Static, "6.7.9:11", "The initializer for a scalar is neither a single expression nor a single expression enclosed in braces"),
    (74, Dynamic, "6.7.9:23", "The value of an unnamed structure or union member with indeterminate value is used", ReadIndeterminate),

    // ----- 6.8 & 6.9: statements and external definitions -----
    (75, Static, "6.8.6.1:1", "A goto statement jumps into the scope of an identifier with variably modified type", JumpIntoVlaScope),
    (76, Static, "6.8.6.1:1", "A switch statement transfers control into the scope of an identifier with variably modified type", JumpIntoVlaScope),
    (77, Dynamic, "6.9.1:12", "The closing brace of a value-returning function is reached and the caller uses the (nonexistent) return value", MissingReturnValueUsed),
    (78, Static, "6.9.1:12", "A return statement without an expression appears in a value-returning function whose result is used on a constant path", ReturnWithoutValue),
    (79, Static, "6.9:5", "An identifier with external linkage is used but has no external definition, or more than one", DuplicateExternalDefinition),
    (80, Static, "6.9:5", "More than one external definition appears for an identifier with internal linkage that is used", DuplicateExternalDefinition),

    // ----- 6.10: preprocessing directives -----
    (81, Static, "6.10.1:4", "The token defined is generated during the expansion of a #if or #elif expression"),
    (82, Static, "6.10.2:4", "A #include directive, after macro expansion, does not match one of the two header name forms"),
    (83, Static, "6.10.2:5", "A header name formed by macro expansion contains a character sequence with no mapping"),
    (84, Static, "6.10.3:11", "There are sequences of preprocessing tokens within a macro argument that would otherwise act as directives"),
    (85, Static, "6.10.3.1:1", "The result of macro argument substitution is not a valid preprocessing token sequence"),
    (86, Static, "6.10.3.2:2", "The result of the # operator is not a valid string literal"),
    (87, Static, "6.10.3.3:3", "The result of the ## operator is not a valid preprocessing token"),
    (88, Static, "6.10.4:3", "The #line directive specifies a line number of zero or greater than 2147483647"),
    (89, Static, "6.10.4:4", "A #line directive, after macro expansion, does not match one of the defined forms"),
    (90, Static, "6.10.6:1", "A non-STDC #pragma directive causes the translator to behave in an undocumented way"),
    (91, Static, "6.10.8:2", "A predefined macro name, or the identifier defined, is the subject of a #define or #undef directive"),

    // ----- 7.1: library conventions -----
    (92, Static, "7.1.2:4", "A standard header is included while a macro with the same name as one of its keywords is defined"),
    (93, Static, "7.1.2:4", "A standard header is included within an external declaration or definition"),
    (94, Static, "7.1.3:2", "A reserved identifier (leading underscore, or a library name with external linkage) is declared or defined by the program"),
    (95, Static, "7.1.3:2", "The program removes the definition of a macro defined in a standard header with #undef"),
    (96, Dynamic, "7.1.4:1", "A library function is called with an invalid argument value (out of domain, null pointer, insufficient object)", InvalidLibraryArgument),
    (97, Dynamic, "7.1.4:1", "A library function that writes through a pointer argument is passed a pointer to a const-qualified or undersized object", InvalidLibraryArgument),
    (98, Static, "7.1.4:2", "A macro definition of a library function is suppressed in a way other than the permitted ones to access an actual function that is not declared"),
    (99, Static, "7.2.1.1:2", "The expression given to the assert macro does not have a scalar type"),

    // ----- 7.3 – 7.12: complex, character handling, errno, float env, math -----
    (100, Static, "7.3.4:1", "The CX_LIMITED_RANGE pragma is used in a position other than the permitted ones"),
    (101, Dynamic, "7.4:1", "A character handling function (<ctype.h>) is passed an argument that is neither representable as unsigned char nor EOF", InvalidLibraryArgument),
    (102, Static, "7.5:2", "A macro definition of errno is suppressed in order to access an actual object, or the program defines an identifier errno"),
    (103, Dynamic, "7.6:2", "A floating-point status flag is touched while the FENV_ACCESS pragma is off and the program then depends on it"),
    (104, Static, "7.6.1:2", "The FENV_ACCESS pragma is used in a position other than the permitted ones"),
    (105, Dynamic, "7.8.2.1:2", "The absolute value of an intmax_t argument to imaxabs cannot be represented", SignedOverflow),
    (106, Dynamic, "7.8.2.2:3", "The result of imaxdiv is not representable, or the divisor is zero", DivisionByZero),
    (107, Dynamic, "7.9:2", "The program modifies the structure pointed to by the value returned by localeconv"),
    (108, Dynamic, "7.11.1.1:8", "The string pointed to by the value returned by setlocale is modified by the program"),
    (109, Dynamic, "7.12:1", "A math function is called with an argument outside the domain over which it is defined", InvalidLibraryArgument),

    // ----- 7.13: setjmp/longjmp -----
    (110, Static, "7.13.1.1:5", "The setjmp macro is used in a context other than the four permitted expression-statement forms"),
    (111, Dynamic, "7.13.2.1:2", "longjmp is called with a jmp_buf whose corresponding setjmp invocation's function has already returned", DeadObjectAccess),
    (112, Dynamic, "7.13.2.1:3", "After a longjmp, a non-volatile automatic object modified between setjmp and longjmp is read", ReadIndeterminate),

    // ----- 7.14: signal handling -----
    (113, Static, "7.14.1.1:3", "A signal handler refers to an object with static or thread storage duration that is not a lock-free atomic or volatile sig_atomic_t"),
    (114, Static, "7.14.1.1:3", "A signal handler calls a standard library function other than the small permitted set"),
    (115, Dynamic, "7.14.1.1:4", "A signal handler returns after a computational exception signal (SIGFPE, SIGILL, SIGSEGV) was raised"),
    (116, Dynamic, "7.14.2.1:2", "The signal function is used in a multi-threaded program"),

    // ----- 7.16: variable arguments -----
    (117, Dynamic, "7.16:3", "The va_arg macro is invoked on a va_list that was passed to a function that invoked va_arg on it, without an intervening va_start"),
    (118, Dynamic, "7.16.1:2", "A macro from <stdarg.h> is invoked on a va_list that was not initialized by va_start or va_copy, or after va_end"),
    (119, Dynamic, "7.16.1.1:2", "va_arg is invoked when there is no actual next argument", CallWrongArity),
    (120, Dynamic, "7.16.1.1:2", "va_arg is invoked with a type incompatible with the type of the actual next argument", CallWrongType),
    (121, Static, "7.16.1.4:4", "The parameter named in va_start is declared with register storage class, a function type, an array type, or a type incompatible after promotion"),
    (122, Dynamic, "7.16.1.3:2", "va_copy or va_start is invoked to reinitialize a va_list without an intervening va_end"),

    // ----- 7.19 – 7.20: stddef, stdint -----
    (123, Static, "7.19:4", "The macro offsetof is used with a type that is not a structure type, or with a member designator that is a bit-field"),
    (124, Static, "7.20.4:1", "An INTn_C or UINTn_C macro argument is not a decimal, octal, or hexadecimal constant in range"),

    // ----- 7.21: input/output -----
    (125, Dynamic, "7.21.2:2", "A binary stream's file position indicator is used after writing, in a way that relies on unwritten padding"),
    (126, Dynamic, "7.21.3:4", "A FILE object is used after the associated file has been closed", DeadObjectAccess),
    (127, Static, "7.21.3:4", "A copy of a FILE object is used in place of the original stream object"),
    (128, Dynamic, "7.21.5.3:4", "An output operation on an update-mode stream is followed by input without an intervening flush or positioning call"),
    (129, Static, "7.21.6.1:2", "A printf-family format string contains an invalid conversion specification"),
    (130, Static, "7.21.6.1:7", "A printf-family length modifier is applied to a conversion specifier it is not defined for"),
    (131, Dynamic, "7.21.6.1:9", "A printf-family conversion specification is incompatible with the type of the corresponding argument"),
    (132, Dynamic, "7.21.6.1:2", "There are insufficient arguments for a printf-family format string"),
    (133, Dynamic, "7.21.6.1:6", "The %s conversion of a printf-family function is passed a pointer to a sequence that is not a string", InvalidLibraryArgument),
    (134, Dynamic, "7.21.6.1:8", "An aggregate or union, or a pointer to one, is passed where a printf conversion expects otherwise"),
    (135, Static, "7.21.6.2:2", "A scanf-family format string contains an invalid conversion specification"),
    (136, Dynamic, "7.21.6.2:10", "A scanf-family receiving object's type is incompatible with the conversion specification"),
    (137, Dynamic, "7.21.6.2:13", "The result of a scanf-family numeric conversion cannot be represented in the receiving object"),
    (138, Dynamic, "7.21.7.10:2", "ungetc is called on a stream whose file position indicator is zero after a successful call"),

    // ----- 7.22: general utilities -----
    (139, Dynamic, "7.22.1.3:8", "strtod/strtol-family endptr processing relies on a string that is modified concurrently"),
    (140, Dynamic, "7.22.1.4:5", "A strtol-family function would produce a value outside the representable range and the caller uses the unchecked result"),
    (141, Dynamic, "7.22.3:1", "A pointer returned by an allocation function is used to access an object after the allocation has been deallocated", DeadObjectAccess),
    (142, Dynamic, "7.22.3.3:2", "free or realloc is passed a pointer that was not returned by an allocation function", FreeNonHeapPointer),
    (143, Dynamic, "7.22.3.3:2", "free or realloc is passed a pointer into the middle of an allocated object", FreeInteriorPointer),
    (144, Dynamic, "7.22.3.3:2", "free or realloc is passed a pointer to an allocation that has already been deallocated", DoubleFree),
    (145, Dynamic, "7.22.3.4:3", "The value of a pointer to an object reallocated by realloc is used after the call", DeadObjectAccess),
    (146, Dynamic, "7.22.4.1:2", "abort is called while output to an open stream is pending and the stream's state is then relied on"),
    (147, Dynamic, "7.22.4.4:2", "exit is called more than once, or exit is called during the processing of atexit handlers"),
    (148, Dynamic, "7.22.4.4:3", "A function registered with atexit calls longjmp to jump out of its invocation"),
    (149, Dynamic, "7.22.4.7:3", "The string pointed to by the value returned by getenv is modified by the program"),
    (150, Dynamic, "7.22.5.1:4", "The comparison function passed to bsearch or qsort alters the contents of the array, or returns inconsistent orderings"),
    (151, Dynamic, "7.22.5.1:2", "bsearch is applied to an array that is not sorted according to the comparison function"),
    (152, Dynamic, "7.22.6.1:2", "The absolute value of an int argument to abs cannot be represented (INT_MIN)", SignedOverflow),
    (153, Dynamic, "7.22.6.2:3", "The result of div, ldiv, or lldiv is not representable, or the divisor is zero", DivisionByZero),
    (154, Dynamic, "7.22.7:1", "A multibyte conversion function is passed a sequence that does not form a valid multibyte character"),
    (155, Dynamic, "7.22.8:1", "A multibyte string conversion function overflows the destination array", OutOfBoundsWrite),

    // ----- 7.24: string handling -----
    (156, Dynamic, "7.24.1:2", "A string function is passed a character array that does not contain a null terminator within its bounds", OutOfBoundsRead),
    (157, Dynamic, "7.24.2.1:2", "memcpy is called with overlapping source and destination objects"),
    (158, Dynamic, "7.24.2.3:2", "strcpy is called with overlapping source and destination strings"),
    (159, Dynamic, "7.24.2.4:2", "strncpy is called with overlapping source and destination objects"),
    (160, Dynamic, "7.24.3.1:2", "strcat is called with overlapping source and destination strings"),
    (161, Dynamic, "7.24.1:2", "A string function writes past the end of the destination array", OutOfBoundsWrite),
    (162, Dynamic, "7.24.5.8:2", "strtok is called with a null first argument before any call with a non-null first argument"),
    (163, Dynamic, "7.24.5.8:2", "strtok is called from multiple threads on the same internal state"),

    // ----- 7.26 – 7.27: threads, time -----
    (164, Dynamic, "7.26.1:3", "A thread-specific storage destructor, mutex, or condition variable is used after being destroyed", DeadObjectAccess),
    (165, Dynamic, "7.26.4.3:2", "A mutex is unlocked by a thread that did not lock it, or a plain mutex is locked recursively"),
    (166, Dynamic, "7.26.5.6:2", "thrd_join or thrd_detach is called on a thread that was previously joined or detached"),
    (167, Dynamic, "7.27.3.1:2", "The broken-down time passed to asctime contains members outside their normal ranges, overflowing the internal buffer", OutOfBoundsWrite),

    // ----- 7.29 – 7.30: wide character handling -----
    (168, Dynamic, "7.29.1:5", "A wide string function is passed a wide character array without a null wide character within its bounds", OutOfBoundsRead),
    (169, Dynamic, "7.29.1:5", "A wide string function writes past the end of its destination array", OutOfBoundsWrite),
    (170, Dynamic, "7.29.2.1:2", "A wide printf-family conversion specification is incompatible with the corresponding argument"),
    (171, Dynamic, "7.29.2.2:10", "A wide scanf-family receiving object's type is incompatible with the conversion specification"),
    (172, Dynamic, "7.29.6.1:2", "An mbstate_t object holding an inconsistent or indeterminate state is passed to a restartable conversion function", ReadIndeterminate),
    (173, Dynamic, "7.30.2.1:2", "A wide character classification function is passed a value that is neither a valid wchar_t nor WEOF", InvalidLibraryArgument),

    // ----- additional undefinedness identified in the normative text -----
    // The paper's enumeration goes beyond Annex J.2: the standard's text
    // makes further situations undefined that the annex does not collect.
    (174, Dynamic, "6.2.4:5", "A non-lvalue expression with structure type whose array member is accessed after the next sequence point", DeadObjectAccess),
    (175, Static, "6.2.5:25", "A type is declared that requires more storage than the implementation can represent at translation time"),
    (176, Dynamic, "6.3.1.3:3", "A signed integer conversion raises an implementation-defined signal the program does not handle"),
    (177, Static, "6.4.4.4:9", "A multi-character character constant's value is relied upon across implementations in a conforming-critical context"),
    (178, Static, "6.5.2.3:6", "A common initial sequence of unions is inspected without a visible union declaration"),
    (179, Dynamic, "6.5.2.5:16", "A compound literal with automatic storage duration is accessed after its block terminates", DeadObjectAccess),
    (180, Dynamic, "6.5.3.4:2", "sizeof is applied to an expression that dereferences an invalid pointer in a variably modified context", NullDereference),
    (181, Static, "6.5.4:3", "A cast specifies a conversion between incomplete types other than void"),
    (182, Dynamic, "6.5.9:7", "Pointers to objects obtained from distinct allocations are compared for equality after one has been freed", DeadObjectAccess),
    (183, Static, "6.7.1:6", "The _Thread_local specifier is combined with function declarations or incomplete initialization"),
    (184, Static, "6.7.2.2:4", "An enumerator's value is specified by an expression that is not an integer constant expression"),
    (185, Dynamic, "6.7.5:3", "An object declared _Alignas with a weaker alignment than another declaration of the same object is accessed"),
    (186, Static, "6.7.6.3:12", "A function declarator with an identifier list appears other than as part of a function definition"),
    (187, Dynamic, "6.7.9:10", "An object with static storage duration is read during initialization of another translation unit's objects before its own"),
    (188, Static, "6.10.3:9", "A function-like macro invocation spans files via inclusion such that its arguments are incomplete"),
    (189, Static, "6.11:2", "An obsolescent feature whose behavior the standard no longer defines is used in a strictly conforming context"),
    (190, Static, "7.1.2:3", "A file with the same name as a standard header, not provided by the implementation, is placed in the standard include search path"),
    (191, Static, "7.12:2", "The macro math_errhandling is undefined or the identifier is redefined by the program"),
    (192, Static, "7.13:2", "The program declares setjmp as an identifier with external linkage, suppressing its macro definition"),
    (193, Static, "7.16.1.4:2", "va_start is invoked in a function that is declared without a variable argument list"),
    (194, Dynamic, "7.24.2.1:2", "memcpy through a restrict-qualified parameter accesses an object also accessed through the other parameter"),
    (195, Static, "7.25:3", "The macro definition of a type-generic math macro is suppressed to access an actual function of that name"),

    // ----- paper-identified refinements of expression UB families -----
    (196, Dynamic, "6.5.2.1:2", "An array subscript expression evaluates to a position outside the array object", OutOfBoundsRead),
    (197, Dynamic, "6.5.2.1:2", "An array subscript expression used as an assignment target lies outside the array object", OutOfBoundsWrite),
    (198, Dynamic, "6.5.2.2", "A function designator obtained from a non-function object pointer is invoked", CallNonFunction),
    (199, Dynamic, "6.5.2.4:2", "Postfix increment or decrement overflows the promoted operand type", SignedOverflow),
    (200, Dynamic, "6.5.3.1:2", "Prefix increment or decrement overflows the promoted operand type", SignedOverflow),
    (201, Dynamic, "6.5.3.3:3", "Unary minus applied to the most negative value of a signed type", SignedOverflow),
    (202, Static, "6.5.3.4:1", "sizeof is applied to a function designator or an incomplete type", SizeofInvalidOperand),
    (203, Dynamic, "6.5.6:7", "A pointer to a non-array object is treated as a pointer into an array of length greater than one", PointerArithmeticOutOfBounds),
    (204, Dynamic, "6.5.16:3", "The assignment's stored value is accessed by an unsequenced read in the same expression", UnsequencedSideEffect),
    (205, Static, "6.5.17", "A comma expression appears where a constant expression is required and is relied upon as constant"),
    (206, Dynamic, "6.2.6.1:6", "Padding bytes of a structure object are read as if they carried the value last stored", ReadIndeterminate),
    (207, Dynamic, "6.2.6.1:7", "A union member is read when the last store was to a member that does not fully overlap it", ReadIndeterminate),
    (208, Static, "6.7.2.1:2", "A flexible array member appears anywhere other than as the last member of a structure with more than one named member"),
    (209, Dynamic, "6.7.2.1:18", "A structure with a flexible array member is accessed beyond the storage actually allocated for it", OutOfBoundsRead),
    (210, Static, "6.7.6.1", "A pointer declarator nests more deeply than the implementation's documented translation limit in a conforming-critical context"),
    (211, Static, "6.7.6.2:2", "An array declarator's element type is an incomplete or function type"),
    (212, Static, "6.9.1:2", "The declarator of a function definition does not specify a function type"),
    (213, Static, "6.9.2:3", "A tentative definition with internal linkage has an incomplete type at the end of the translation unit"),
    (214, Static, "6.10.2:3", "An #include directive nests more deeply than the translation limit in a way the implementation does not support"),
    (215, Static, "6.10.3.4:3", "Macro rescanning produces a directive-like line that the program depends on being processed"),
    (216, Static, "7.1.1:2", "A string is passed to a library function with a length exceeding the documented translation-time limit"),
    (217, Dynamic, "7.21.6.3:2", "printf is called with the %n conversion targeting a const-qualified object", WriteToConst),
    (218, Dynamic, "7.22.3.1:2", "aligned_alloc is called with a size that is not an integral multiple of the alignment, and the result is accessed"),
    (219, Dynamic, "7.22.4.6:2", "getenv's internal buffer is relied upon across calls that overwrite it", DeadObjectAccess),
    (220, Static, "7.26.1:2", "The ONCE_FLAG_INIT initializer is applied to an object of a type other than once_flag"),
    (221, Static, "7.31.12:2", "A library feature identified as deprecated is used in a way whose behavior the standard ceases to define"),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detectability;
    use std::collections::BTreeSet;

    #[test]
    fn counts_match_the_paper() {
        let c = catalog_counts();
        assert_eq!(
            (c.total, c.statically_detectable, c.dynamically_detectable),
            (221, 92, 129),
            "§5.2.1 split violated"
        );
    }

    #[test]
    fn ids_are_sequential_from_one() {
        for (i, e) in catalog().iter().enumerate() {
            assert_eq!(e.id as usize, i + 1, "entry {} out of order", e.summary);
        }
    }

    #[test]
    fn every_entry_has_std_ref_and_summary() {
        for e in catalog() {
            assert!(!e.std_ref.is_empty(), "entry {} missing std_ref", e.id);
            assert!(e.std_ref.starts_with(|c: char| c.is_ascii_digit()));
            assert!(!e.summary.is_empty(), "entry {} missing summary", e.id);
        }
    }

    #[test]
    fn detectors_agree_on_detectability() {
        // A dynamic detector may also cover entries the paper classifies as
        // statically detectable (a static UB can always be found at run
        // time too), but a static-only entry must never be mapped to a
        // detector that claims *less* capability than the catalog requires:
        // if the catalog says an entry is dynamic, its detector must be
        // dynamic.
        for e in catalog() {
            if let Some(k) = e.detected_by {
                if e.detect == Detectability::Dynamic {
                    assert_eq!(
                        k.detectability(),
                        Detectability::Dynamic,
                        "entry {} is dynamic but detector {k:?} is static",
                        e.id
                    );
                }
            }
        }
    }

    #[test]
    fn every_detector_family_is_reachable_from_catalog() {
        let mapped: BTreeSet<UbKind> = catalog().iter().filter_map(|e| e.detected_by).collect();
        // Not every UbKind needs to appear (some are workspace-internal
        // refinements), but the flagship ones from the paper must.
        for k in [
            UbKind::UnsequencedSideEffect,
            UbKind::DivisionByZero,
            UbKind::SignedOverflow,
            UbKind::OutOfBoundsRead,
            UbKind::ReadIndeterminate,
            UbKind::ShiftTooFar,
            UbKind::DeadObjectAccess,
        ] {
            assert!(mapped.contains(&k), "{k:?} unreachable from catalog");
        }
    }
}
