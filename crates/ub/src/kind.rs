//! The undefined behaviors the checker knows how to detect.

use crate::{Detectability, JulietClass};
use std::fmt;

/// Metadata describing one detectable category of undefined behavior.
///
/// Obtained from [`UbKind::info`]. The `code` numbers are stable and appear
/// in rendered diagnostics, in the style of the paper's `kcc` output
/// (`Error: 00016`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UbInfo {
    /// Stable numeric error code used in diagnostics.
    pub code: u16,
    /// One-line description of the behavior.
    pub title: &'static str,
    /// The C11 (N1570) section imposing — or rather, withholding — the
    /// requirement, e.g. `"6.5.5:5"`.
    pub std_ref: &'static str,
    /// Whether the behavior is statically or only dynamically detectable.
    pub detect: Detectability,
    /// The Juliet benchmark class this behavior falls into, if any.
    pub juliet: Option<JulietClass>,
}

macro_rules! ub_kinds {
    ($(
        $(#[$doc:meta])*
        $variant:ident = ($code:expr, $title:expr, $std_ref:expr, $detect:ident, $juliet:expr)
    ),+ $(,)?) => {
        /// A category of undefined behavior that the semantics can detect.
        ///
        /// Each variant corresponds to a family of entries in the standard's
        /// enumeration of undefined behaviors (see [`crate::catalog`]); the
        /// mapping is recorded there via [`crate::CatalogEntry::detected_by`].
        ///
        /// # Examples
        ///
        /// ```
        /// use cundef_ub::UbKind;
        /// let k = UbKind::DivisionByZero;
        /// assert_eq!(k.info().title, "Division by zero");
        /// assert_eq!(k.code(), 2);
        /// ```
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[non_exhaustive]
        pub enum UbKind {
            $( $(#[$doc])* $variant, )+
        }

        impl UbKind {
            /// Every detectable kind, in code order.
            pub const ALL: &'static [UbKind] = &[ $(UbKind::$variant,)+ ];

            /// Static metadata for this kind.
            pub fn info(self) -> &'static UbInfo {
                match self {
                    $(UbKind::$variant => &UbInfo {
                        code: $code,
                        title: $title,
                        std_ref: $std_ref,
                        detect: Detectability::$detect,
                        juliet: $juliet,
                    },)+
                }
            }
        }
    };
}

use JulietClass as J;

ub_kinds! {
    // ----- arithmetic -----
    /// Integer or floating division by zero (`/`).
    DivisionByZero = (2, "Division by zero", "6.5.5:5", Dynamic, Some(J::DivisionByZero)),
    /// Remainder by zero (`%`).
    ModuloByZero = (3, "Remainder by zero", "6.5.5:5", Dynamic, Some(J::DivisionByZero)),
    /// Signed integer overflow in `+`, `-`, `*`, or unary negation.
    SignedOverflow = (4, "Signed integer overflow", "6.5:5", Dynamic, Some(J::IntegerOverflow)),
    /// `INT_MIN / -1` (or `%`): quotient not representable.
    DivisionOverflow = (5, "Quotient of signed division not representable", "6.5.5:6", Dynamic, Some(J::IntegerOverflow)),
    /// Shift by a negative amount.
    ShiftByNegative = (6, "Shift by a negative amount", "6.5.7:3", Dynamic, Some(J::IntegerOverflow)),
    /// Shift by at least the width of the promoted left operand.
    ShiftTooFar = (7, "Shift amount not less than the width of the type", "6.5.7:3", Dynamic, Some(J::IntegerOverflow)),
    /// Left shift of a negative value.
    ShiftOfNegative = (8, "Left shift of a negative value", "6.5.7:4", Dynamic, Some(J::IntegerOverflow)),
    /// Left shift whose result is not representable in the result type.
    ShiftOverflow = (9, "Left shift result not representable", "6.5.7:4", Dynamic, Some(J::IntegerOverflow)),
    /// Conversion of a floating value to an integer type that cannot
    /// represent it.
    FloatToIntOverflow = (10, "Floating value unrepresentable in integer type", "6.3.1.4:1", Dynamic, Some(J::IntegerOverflow)),

    // ----- sequencing -----
    /// Unsequenced side effect on a scalar object together with another
    /// side effect on, or value computation of, the same object. This is
    /// the paper's flagship `Error: 00016`.
    UnsequencedSideEffect = (16, "Unsequenced side effect on scalar object with side effect of same object", "6.5:2", Dynamic, None),

    // ----- pointers and memory -----
    /// Dereference of a null pointer.
    NullDereference = (20, "Dereference of a null pointer", "6.5.3.2:4", Dynamic, Some(J::InvalidPointer)),
    /// Dereference of a pointer to `void`.
    VoidDereference = (21, "Dereference of a void pointer", "6.3.2.1:1", Dynamic, Some(J::InvalidPointer)),
    /// Access through a pointer to an object whose lifetime has ended
    /// (out-of-scope automatic object or freed allocation).
    DeadObjectAccess = (22, "Access to an object outside of its lifetime", "6.2.4:2", Dynamic, Some(J::InvalidPointer)),
    /// Read outside the bounds of the accessed object.
    OutOfBoundsRead = (23, "Read outside the bounds of an object", "6.5.6:8", Dynamic, Some(J::InvalidPointer)),
    /// Write outside the bounds of the accessed object.
    OutOfBoundsWrite = (24, "Write outside the bounds of an object", "6.5.6:8", Dynamic, Some(J::InvalidPointer)),
    /// Pointer arithmetic producing a pointer neither into, nor one past
    /// the end of, the original object.
    PointerArithmeticOutOfBounds = (25, "Pointer arithmetic outside of an object", "6.5.6:8", Dynamic, Some(J::InvalidPointer)),
    /// Subtraction of pointers into different objects.
    PointerSubtractionDifferentObjects = (26, "Subtraction of pointers to different objects", "6.5.6:9", Dynamic, Some(J::InvalidPointer)),
    /// Relational comparison (`<`, `<=`, `>`, `>=`) of pointers into
    /// different objects.
    PointerCompareDifferentObjects = (27, "Relational comparison of pointers to different objects", "6.5.8:5", Dynamic, Some(J::InvalidPointer)),
    /// Use of an indeterminate (never-initialized) value.
    ReadIndeterminate = (28, "Use of an indeterminate value", "6.2.6.1:5", Dynamic, Some(J::UninitializedMemory)),
    /// Use of a pointer value that was only partially copied byte-by-byte
    /// (incomplete `subObject` reconstruction).
    PartialPointerUse = (29, "Use of an incompletely copied pointer value", "6.2.6.1:4", Dynamic, Some(J::UninitializedMemory)),
    /// Access through a pointer that is not suitably aligned for the
    /// referenced type.
    MisalignedAccess = (30, "Access through an insufficiently aligned pointer", "6.3.2.3:7", Dynamic, Some(J::InvalidPointer)),
    /// Write to an object defined with a `const`-qualified type.
    WriteToConst = (31, "Modification of an object defined with a const-qualified type", "6.7.3:6", Dynamic, None),
    /// Write into a string literal.
    ModifyStringLiteral = (32, "Modification of a string literal", "6.4.5:7", Dynamic, None),
    /// Access to an object through an lvalue of an incompatible type
    /// ("strict aliasing").
    AccessWrongEffectiveType = (33, "Object accessed through incompatible lvalue type", "6.5:7", Dynamic, None),

    // ----- allocation -----
    /// `free()` of a pointer not obtained from an allocation function.
    FreeNonHeapPointer = (40, "free() of a pointer not returned by an allocation function", "7.22.3.3:2", Dynamic, Some(J::BadFree)),
    /// `free()` of a pointer into the middle of an allocation.
    FreeInteriorPointer = (41, "free() of a pointer not at the start of its allocation", "7.22.3.3:2", Dynamic, Some(J::BadFree)),
    /// `free()` of an already-freed allocation.
    DoubleFree = (42, "free() of an already freed allocation", "7.22.3.3:2", Dynamic, Some(J::BadFree)),

    // ----- functions -----
    /// Call with the wrong number of arguments.
    CallWrongArity = (50, "Function called with the wrong number of arguments", "6.5.2.2:6", Dynamic, Some(J::BadFunctionCall)),
    /// Call through a function pointer of incompatible type, or with
    /// incompatible argument types.
    CallWrongType = (51, "Function called through incompatible type", "6.5.2.2:9", Dynamic, Some(J::BadFunctionCall)),
    /// Use of the return value of a function that terminated without a
    /// `return <expr>`.
    MissingReturnValueUsed = (52, "Use of the value of a function that returned without a value", "6.9.1:12", Dynamic, None),
    /// Call of something that is not a function.
    CallNonFunction = (53, "Call of a non-function object", "6.5.2.2:1", Dynamic, Some(J::BadFunctionCall)),

    // ----- library -----
    /// Null (or otherwise invalid) pointer argument passed to a library
    /// function that requires a valid object.
    InvalidLibraryArgument = (60, "Invalid pointer argument to a library function", "7.1.4:1", Dynamic, Some(J::InvalidPointer)),
    /// `printf`-family conversion specifier incompatible with the supplied
    /// argument.
    FormatMismatch = (61, "Format specifier incompatible with argument", "7.21.6.1:9", Dynamic, Some(J::BadFunctionCall)),
    /// Overlapping source and destination passed to `memcpy`/`strcpy`.
    RestrictOverlap = (62, "Overlapping objects passed to a restrict-qualified function", "7.24.2.1:2", Dynamic, None),

    // ----- statically detectable -----
    /// Array declared with zero or negative constant size.
    ArraySizeNotPositive = (70, "Array declared with non-positive size", "6.7.6.2:1", Static, None),
    /// Variable-length array whose evaluated size is not strictly positive.
    VlaSizeNotPositive = (71, "Variable length array with non-positive size", "6.7.6.2:5", Dynamic, None),
    /// Function type specified with type qualifiers.
    QualifiedFunctionType = (72, "Function type specified with type qualifiers", "6.7.3:9", Static, None),
    /// Use of the (nonexistent) value of a void expression.
    VoidValueUsed = (73, "Use of the value of a void expression", "6.3.2.2:1", Static, None),
    /// Redeclaration of an identifier with an incompatible type.
    IncompatibleRedeclaration = (74, "Identifier redeclared with incompatible type", "6.2.7:2", Static, None),
    /// Identifier with both internal and external linkage in the same
    /// translation unit.
    MixedLinkage = (75, "Identifier appears with both internal and external linkage", "6.2.2:7", Static, None),
    /// Jump into the scope of a variably modified declaration.
    JumpIntoVlaScope = (76, "Jump into the scope of a variably modified declaration", "6.8.6.1:1", Static, None),
    /// More than one external definition of the same identifier.
    DuplicateExternalDefinition = (77, "Multiple external definitions of an identifier", "6.9:5", Static, None),
    /// Conversion between function pointers and object pointers.
    FunctionObjectPointerCast = (78, "Conversion between function pointer and object pointer", "6.3.2.3", Static, None),
    /// `restrict` applied to a non-pointer type.
    RestrictNonPointer = (79, "restrict qualifier on a non-pointer type", "6.7.3:2", Static, None),
    /// `main` declared in a form the implementation does not document.
    NonstandardMain = (80, "main declared with a nonstandard signature", "5.1.2.2.1:1", Static, None),
    /// `return` with no value in a value-returning function, where the
    /// caller uses the value — static form (constant control flow).
    ReturnWithoutValue = (81, "return without a value in a value-returning function", "6.9.1:12", Static, None),
    /// Object declared with an incomplete type (`void x;`) — a
    /// translation-time constraint violation (§6.7:7).
    IncompleteTypeObject = (82, "Object declared with an incomplete type", "6.7:7", Static, None),
    /// Two `case` labels (or two `default` labels) of one `switch` with
    /// the same constant — a constraint violation (§6.8.4.2:3).
    DuplicateCaseLabel = (83, "Duplicate case label in a switch statement", "6.8.4.2:3", Static, None),
    /// A `case` label whose expression is not an integer constant
    /// expression — a constraint violation (§6.8.4.2:3).
    NonConstantCaseLabel = (84, "Case label is not an integer constant expression", "6.8.4.2:3", Static, None),
    /// The same label name defined twice in one function — a constraint
    /// violation (§6.8.1:3).
    DuplicateLabel = (85, "Duplicate label name in a function", "6.8.1:3", Static, None),
    /// `goto` naming a label that does not exist in the enclosing
    /// function — a constraint violation (§6.8.6.1:1).
    UndeclaredLabel = (86, "goto to a label not defined in the enclosing function", "6.8.6.1:1", Static, None),
    /// `sizeof` applied to a function designator or an incomplete type —
    /// a constraint violation (§6.5.3.4:1).
    SizeofInvalidOperand = (87, "sizeof applied to a function designator or an incomplete type", "6.5.3.4:1", Static, None),
}

impl UbKind {
    /// The stable numeric code, shorthand for `self.info().code`.
    pub fn code(self) -> u16 {
        self.info().code
    }

    /// One-line title, shorthand for `self.info().title`.
    pub fn title(self) -> &'static str {
        self.info().title
    }

    /// Static/dynamic classification, shorthand for `self.info().detect`.
    pub fn detectability(self) -> Detectability {
        self.info().detect
    }

    /// Juliet class, shorthand for `self.info().juliet`.
    pub fn juliet_class(self) -> Option<JulietClass> {
        self.info().juliet
    }

    /// Look a kind up by its stable code.
    ///
    /// # Examples
    ///
    /// ```
    /// use cundef_ub::UbKind;
    /// assert_eq!(UbKind::from_code(16), Some(UbKind::UnsequencedSideEffect));
    /// assert_eq!(UbKind::from_code(9999), None);
    /// ```
    pub fn from_code(code: u16) -> Option<UbKind> {
        UbKind::ALL.iter().copied().find(|k| k.code() == code)
    }
}

impl fmt::Display for UbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.title(), self.info().std_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<u16> = UbKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), UbKind::ALL.len());
    }

    #[test]
    fn every_kind_has_std_ref() {
        for k in UbKind::ALL {
            assert!(!k.info().std_ref.is_empty(), "{k:?} missing std ref");
        }
    }

    #[test]
    fn juliet_classes_cover_all_six() {
        for class in JulietClass::ALL {
            assert!(
                UbKind::ALL.iter().any(|k| k.juliet_class() == Some(class)),
                "no kind maps to {class}"
            );
        }
    }

    #[test]
    fn unsequenced_is_error_16_like_the_paper() {
        assert_eq!(UbKind::UnsequencedSideEffect.code(), 16);
    }

    #[test]
    fn display_includes_ref() {
        let s = UbKind::DivisionByZero.to_string();
        assert!(s.contains("6.5.5"));
    }

    #[test]
    fn from_code_roundtrip() {
        for k in UbKind::ALL {
            assert_eq!(UbKind::from_code(k.code()), Some(*k));
        }
    }
}
