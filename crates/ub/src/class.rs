//! Classification axes for undefined behavior.

use std::fmt;

/// Whether a category of undefined behavior can be diagnosed by inspecting
/// the program text alone, or only by (abstractly) executing the program.
///
/// The paper classifies the 221 undefined behaviors of the C standard into
/// 92 statically detectable and 129 only dynamically detectable ones
/// (§5.2.1). The rule of thumb inherited from the committee: a situation is
/// *statically* undefined when it is hard to imagine generating code for it
/// at all, and *dynamically* undefined when code can be generated but some
/// executions go wrong.
///
/// # Examples
///
/// ```
/// use cundef_ub::Detectability;
/// assert!(Detectability::Static < Detectability::Dynamic);
/// assert_eq!(Detectability::Static.to_string(), "static");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Detectability {
    /// Detectable from the program text, without running it.
    Static,
    /// Detectable only on particular executions.
    Dynamic,
}

impl fmt::Display for Detectability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detectability::Static => f.write_str("static"),
            Detectability::Dynamic => f.write_str("dynamic"),
        }
    }
}

/// The six classes of undefined behavior exercised by the Juliet-derived
/// benchmark (Figure 2 of the paper).
///
/// Each test in the extracted suite triggers exactly one class; analyzer
/// scores are reported per class.
///
/// # Examples
///
/// ```
/// use cundef_ub::JulietClass;
/// assert_eq!(JulietClass::ALL.len(), 6);
/// assert_eq!(JulietClass::DivisionByZero.to_string(), "Division by zero");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JulietClass {
    /// Use of an invalid pointer: buffer overflow, use after free,
    /// returning and using a stack address, NULL dereference, …
    InvalidPointer,
    /// Integer division (or remainder) by zero.
    DivisionByZero,
    /// Bad argument to `free()`: stack pointer, interior pointer, double
    /// free.
    BadFree,
    /// Use of uninitialized (indeterminate) memory.
    UninitializedMemory,
    /// Function call with the wrong number or types of arguments.
    BadFunctionCall,
    /// Signed integer overflow.
    IntegerOverflow,
}

impl JulietClass {
    /// All six classes, in the order of the paper's Figure 2.
    pub const ALL: [JulietClass; 6] = [
        JulietClass::InvalidPointer,
        JulietClass::DivisionByZero,
        JulietClass::BadFree,
        JulietClass::UninitializedMemory,
        JulietClass::BadFunctionCall,
        JulietClass::IntegerOverflow,
    ];

    /// Human-readable row label, as printed in Figure 2.
    pub fn label(self) -> &'static str {
        match self {
            JulietClass::InvalidPointer => "Use of invalid pointer",
            JulietClass::DivisionByZero => "Division by zero",
            JulietClass::BadFree => "Bad argument to free()",
            JulietClass::UninitializedMemory => "Uninitialized memory",
            JulietClass::BadFunctionCall => "Bad function call",
            JulietClass::IntegerOverflow => "Integer overflow",
        }
    }

    /// Number of tests in this class in the paper's extraction of the
    /// Juliet suite (total 4113).
    pub fn paper_test_count(self) -> usize {
        match self {
            JulietClass::InvalidPointer => 3193,
            JulietClass::DivisionByZero => 77,
            JulietClass::BadFree => 334,
            JulietClass::UninitializedMemory => 422,
            JulietClass::BadFunctionCall => 46,
            JulietClass::IntegerOverflow => 41,
        }
    }
}

impl fmt::Display for JulietClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}
