//! The rendering seam: one structured checking result per file, many
//! output formats.
//!
//! Every frontend (the `cundef` CLI's sequential and `--batch` drivers,
//! the fuzzer's round-trip oracle, eventually `cundef serve`) reduces
//! the checking of one file to a [`FileResult`]: a verdict, the
//! [`Diagnostic`] findings, the implementation-defined conversion
//! notes, and any engine-failure messages. A [`Renderer`] turns that
//! structure into bytes:
//!
//! - [`HumanRenderer`] — the kcc-style terminal format, byte-identical
//!   to the output `cundef` has always produced;
//! - [`JsonRenderer`] — JSON Lines, one self-contained object per
//!   event (`finding`, `note`, `verdict`, `error`), safe to stream and
//!   to concatenate across files and parallel batches;
//! - [`SarifRenderer`] — a single SARIF 2.1.0 document per invocation,
//!   with one reporting rule per detectable [`UbKind`] whose metadata
//!   is drawn from the paper's 221-entry §5.2.1 catalog.
//!
//! The seam is also where the location contract is enforced: every
//! emitted diagnostic must carry a real source position (line and
//! column ≥ 1). [`FileResult::assert_real_locs`] checks it in debug
//! builds, so a detector that forgets `.at(loc)` fails its tests
//! instead of shipping a `0:0` placeholder.

use crate::json::escape_into;
use crate::{catalog, Diagnostic, SourceLoc, UbKind};
use std::fmt::Write as _;

/// The per-file verdict, shared by every renderer and the CLI's exit
/// code (0 — all [`Verdict::Defined`]; 1 — any [`Verdict::Undefined`];
/// 2 — any [`Verdict::EngineFailure`] without undefinedness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every selected phase found no undefined behavior.
    Defined,
    /// Undefined behavior was detected (the findings say where).
    Undefined,
    /// The checker could not finish: unreadable file, input outside the
    /// supported subset, or an engine limit. Says nothing about the
    /// program.
    EngineFailure,
}

impl Verdict {
    /// Stable lower-case spelling used by the structured formats.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Defined => "defined",
            Verdict::Undefined => "undefined",
            Verdict::EngineFailure => "error",
        }
    }
}

/// Everything the checker concluded about one file, structured.
///
/// # Examples
///
/// ```
/// use cundef_ub::render::{FileResult, HumanRenderer, Renderer, Verdict};
/// use cundef_ub::{SourceLoc, UbError, UbKind};
///
/// let r = FileResult {
///     path: "t.c".into(),
///     verdict: Verdict::Undefined,
///     findings: vec![UbError::new(UbKind::DivisionByZero)
///         .at(SourceLoc::new(3, 10))
///         .in_function("main")
///         .to_diagnostic()],
///     notes: vec![],
///     success: None,
///     exit: None,
///     errors: vec![],
/// };
/// let out = HumanRenderer::new(false).render_file(&r);
/// assert!(out.stdout.starts_with("t.c:\nERROR! KCC encountered an error."));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FileResult {
    /// The file as named on the command line (used verbatim in output).
    pub path: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Diagnostics, in report order.
    pub findings: Vec<Diagnostic>,
    /// Implementation-defined conversion notes (§6.3.1.3:3), in
    /// execution order: they describe defined behavior the program
    /// relied on, whatever the verdict.
    pub notes: Vec<(SourceLoc, String)>,
    /// Human status text for a clean file (everything after `"path: "`
    /// — e.g. `"no undefined behavior detected (program returned 0)"`),
    /// when there is one. Quiet mode suppresses it in human output;
    /// structured formats carry it in the verdict record.
    pub success: Option<String>,
    /// The program's exit value, when it executed to completion.
    pub exit: Option<i64>,
    /// Engine-failure messages (everything after `"path: "`), rendered
    /// to stderr in every format.
    pub errors: Vec<String>,
}

impl FileResult {
    /// Debug-assert the location contract: every finding carries a real
    /// source position (no `0:0` placeholders). Renderers call this on
    /// entry, so any detector that drops a location fails loudly in
    /// debug/test builds while release output is unaffected.
    pub fn assert_real_locs(&self) {
        if cfg!(debug_assertions) {
            for d in &self.findings {
                let loc = d.loc.unwrap_or_else(|| {
                    panic!(
                        "{}: diagnostic {:05} ({}) emitted without a source location",
                        self.path, d.code, d.description
                    )
                });
                assert!(
                    loc.line >= 1 && loc.col >= 1,
                    "{}: diagnostic {:05} ({}) carries placeholder location {}:{}",
                    self.path,
                    d.code,
                    d.description,
                    loc.line,
                    loc.col
                );
            }
        }
    }
}

/// One file's rendered output, split by stream so parallel drivers can
/// buffer and re-emit it in input order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rendered {
    /// Bytes for standard output.
    pub stdout: String,
    /// Bytes for standard error.
    pub stderr: String,
}

/// A diagnostic output format.
///
/// Renderers are driven once per file, in input order, and once at the
/// end; formats that aggregate (SARIF) buffer in between.
pub trait Renderer {
    /// Render one file's result.
    fn render_file(&mut self, r: &FileResult) -> Rendered;

    /// Trailing output after the last file (e.g. the SARIF document).
    fn finish(&mut self) -> String {
        String::new()
    }
}

// --------------------------------------------------------------------
// Human format
// --------------------------------------------------------------------

/// The kcc-style terminal format `cundef` has always produced,
/// byte-identical to the pre-seam output (the goldens pin it).
#[derive(Debug, Clone)]
pub struct HumanRenderer {
    /// Suppress per-file success lines (`-q`).
    pub quiet: bool,
}

impl HumanRenderer {
    /// A human renderer; `quiet` suppresses success lines.
    pub fn new(quiet: bool) -> HumanRenderer {
        HumanRenderer { quiet }
    }
}

impl Renderer for HumanRenderer {
    fn render_file(&mut self, r: &FileResult) -> Rendered {
        r.assert_real_locs();
        let mut out = String::new();
        let mut err = String::new();
        for (loc, msg) in &r.notes {
            let _ = writeln!(out, "{}:{}: note: {}", r.path, loc, msg);
        }
        if !r.findings.is_empty() {
            let _ = writeln!(out, "{}:", r.path);
            for d in &r.findings {
                let _ = write!(out, "{d}");
            }
        }
        if !self.quiet {
            if let Some(msg) = &r.success {
                let _ = writeln!(out, "{}: {}", r.path, msg);
            }
        }
        for e in &r.errors {
            let _ = writeln!(err, "{}: {}", r.path, e);
        }
        Rendered {
            stdout: out,
            stderr: err,
        }
    }
}

// --------------------------------------------------------------------
// JSON Lines format
// --------------------------------------------------------------------

/// JSON Lines: one object per event, one event per line.
///
/// Event shapes (`type` discriminates):
///
/// - `finding` — `file`, `kind` (the [`UbKind`] variant name), `code`,
///   `severity`, `description`, `std_ref`, `function`, `line`,
///   `column`, `detail`;
/// - `note` — `file`, `line`, `column`, `message`;
/// - `verdict` — `file`, `verdict` (`defined`/`undefined`/`error`),
///   optional `exit` and `message`; exactly one per file;
/// - `error` — `file`, `message` (engine failures; also mirrored to
///   stderr as in the human format, so piped stdout stays pure JSONL
///   without hiding failures).
///
/// Lines from different files never interleave, and `--batch` output
/// is byte-identical to sequential output, so concatenated JSONL from
/// any driver parses the same way.
#[derive(Debug, Clone, Default)]
pub struct JsonRenderer;

impl JsonRenderer {
    /// A JSONL renderer.
    pub fn new() -> JsonRenderer {
        JsonRenderer
    }
}

/// Append `"key": "<escaped value>"` (with a leading comma) to a JSON
/// object under construction.
fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ", \"{key}\": \"");
    escape_into(out, value);
    out.push('"');
}

impl Renderer for JsonRenderer {
    fn render_file(&mut self, r: &FileResult) -> Rendered {
        r.assert_real_locs();
        let mut out = String::new();
        let mut err = String::new();
        for (loc, msg) in &r.notes {
            out.push_str("{\"type\": \"note\"");
            push_str_field(&mut out, "file", &r.path);
            let _ = write!(out, ", \"line\": {}, \"column\": {}", loc.line, loc.col);
            push_str_field(&mut out, "message", msg);
            out.push_str("}\n");
        }
        for d in &r.findings {
            out.push_str("{\"type\": \"finding\"");
            push_str_field(&mut out, "file", &r.path);
            if let Some(kind) = d.kind {
                push_str_field(&mut out, "kind", &format!("{kind:?}"));
            }
            let _ = write!(out, ", \"code\": {}", d.code);
            push_str_field(&mut out, "severity", &d.severity.to_string());
            push_str_field(&mut out, "description", &d.description);
            if let Some(std_ref) = &d.std_ref {
                push_str_field(&mut out, "std_ref", std_ref);
            }
            if let Some(function) = &d.function {
                push_str_field(&mut out, "function", function);
            }
            if let Some(loc) = d.loc {
                let _ = write!(out, ", \"line\": {}, \"column\": {}", loc.line, loc.col);
            }
            if let Some(detail) = &d.detail {
                push_str_field(&mut out, "detail", detail);
            }
            out.push_str("}\n");
        }
        out.push_str("{\"type\": \"verdict\"");
        push_str_field(&mut out, "file", &r.path);
        push_str_field(&mut out, "verdict", r.verdict.as_str());
        if let Some(exit) = r.exit {
            let _ = write!(out, ", \"exit\": {exit}");
        }
        if let Some(msg) = &r.success {
            push_str_field(&mut out, "message", msg);
        }
        out.push_str("}\n");
        for e in &r.errors {
            out.push_str("{\"type\": \"error\"");
            push_str_field(&mut out, "file", &r.path);
            push_str_field(&mut out, "message", e);
            out.push_str("}\n");
            let _ = writeln!(err, "{}: {}", r.path, e);
        }
        Rendered {
            stdout: out,
            stderr: err,
        }
    }
}

// --------------------------------------------------------------------
// SARIF 2.1.0
// --------------------------------------------------------------------

/// SARIF 2.1.0: one `sarifLog` document per invocation, buffered until
/// [`Renderer::finish`].
///
/// The driver's reporting rules are the workspace's detectable
/// [`UbKind`]s — rule `UB00016` is the paper's flagship `Error: 00016`
/// — and each rule's metadata names the §5.2.1 catalog entries it
/// covers, linking tool output back to the paper's 221-entry
/// enumeration. Findings become `results` at level `error`;
/// implementation-defined conversion notes become `results` at level
/// `note`; engine failures become `toolExecutionNotifications` on the
/// invocation (and stderr lines, as in the human format).
#[derive(Debug, Clone)]
pub struct SarifRenderer {
    tool_version: String,
    results: Vec<String>,
    notifications: Vec<String>,
    any_failure: bool,
}

/// The published SARIF 2.1.0 schema URI (also what CI validates
/// against).
pub const SARIF_SCHEMA_URI: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// The stable SARIF rule id for a kind (`UB00016` for code 16).
pub fn sarif_rule_id(kind: UbKind) -> String {
    format!("UB{:05}", kind.code())
}

impl SarifRenderer {
    /// A SARIF renderer; `tool_version` lands in
    /// `tool.driver.version`.
    pub fn new(tool_version: &str) -> SarifRenderer {
        SarifRenderer {
            tool_version: tool_version.to_string(),
            results: Vec::new(),
            notifications: Vec::new(),
            any_failure: false,
        }
    }

    /// The `region` object for a location, 1-based as SARIF requires.
    fn region(loc: SourceLoc) -> String {
        format!(
            "{{\"startLine\": {}, \"startColumn\": {}}}",
            loc.line, loc.col
        )
    }

    /// A `location` object: physical (uri + region) plus the logical
    /// function, when known.
    fn location(path: &str, loc: Option<SourceLoc>, function: Option<&str>) -> String {
        let mut out = String::from("{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
        out.push_str(&crate::json::escaped(path));
        out.push('}');
        if let Some(loc) = loc {
            let _ = write!(out, ", \"region\": {}", Self::region(loc));
        }
        out.push('}');
        if let Some(function) = function {
            out.push_str(", \"logicalLocations\": [{\"name\": ");
            out.push_str(&crate::json::escaped(function));
            out.push_str(", \"kind\": \"function\"}]");
        }
        out.push('}');
        out
    }

    /// The `rules` array: one `reportingDescriptor` per detectable
    /// kind, metadata drawn from the §5.2.1 catalog.
    fn rules_json() -> String {
        let mut out = String::from("[");
        for (i, kind) in UbKind::ALL.iter().enumerate() {
            let info = kind.info();
            let covered: Vec<u16> = catalog()
                .iter()
                .filter(|e| e.detected_by == Some(*kind))
                .map(|e| e.id)
                .collect();
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"id\": \"{}\"", sarif_rule_id(*kind));
            push_str_field(&mut out, "name", &format!("{kind:?}"));
            out.push_str(", \"shortDescription\": {\"text\": ");
            out.push_str(&crate::json::escaped(info.title));
            out.push('}');
            let mut full = format!("{}. C11 (N1570) {}.", info.title, info.std_ref);
            if !covered.is_empty() {
                let ids: Vec<String> = covered.iter().map(u16::to_string).collect();
                let _ = write!(
                    full,
                    " Covers catalog entr{} {} of the paper's 221-entry §5.2.1 enumeration.",
                    if ids.len() == 1 { "y" } else { "ies" },
                    ids.join(", ")
                );
            }
            out.push_str(", \"fullDescription\": {\"text\": ");
            out.push_str(&crate::json::escaped(&full));
            out.push('}');
            out.push_str(", \"defaultConfiguration\": {\"level\": \"error\"}");
            let _ = write!(
                out,
                ", \"properties\": {{\"detectability\": \"{:?}\", \"std_ref\": {}, \
                 \"catalogIds\": [{}]}}",
                info.detect,
                crate::json::escaped(info.std_ref),
                covered
                    .iter()
                    .map(u16::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl Renderer for SarifRenderer {
    fn render_file(&mut self, r: &FileResult) -> Rendered {
        r.assert_real_locs();
        let mut err = String::new();
        for d in &r.findings {
            let mut res = String::from("{");
            match d.kind {
                Some(kind) => {
                    let index = UbKind::ALL.iter().position(|k| *k == kind).unwrap_or(0);
                    let _ = write!(
                        res,
                        "\"ruleId\": \"{}\", \"ruleIndex\": {index}, ",
                        sarif_rule_id(kind)
                    );
                }
                None => {
                    let _ = write!(res, "\"ruleId\": \"UB{:05}\", ", d.code);
                }
            }
            res.push_str("\"level\": \"error\", \"message\": {\"text\": ");
            res.push_str(&crate::json::escaped(&format!("{}.", d.description)));
            res.push_str("}, \"locations\": [");
            res.push_str(&Self::location(&r.path, d.loc, d.function.as_deref()));
            res.push(']');
            res.push_str(", \"properties\": {");
            let mut first = true;
            let mut prop = |key: &str, value: &str, out: &mut String| {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "\"{key}\": {}", crate::json::escaped(value));
            };
            if let Some(detail) = &d.detail {
                prop("detail", detail, &mut res);
            }
            if let Some(std_ref) = &d.std_ref {
                prop("std_ref", std_ref, &mut res);
            }
            res.push_str("}}");
            self.results.push(res);
        }
        for (loc, msg) in &r.notes {
            let mut res = String::from("{\"level\": \"note\", \"message\": {\"text\": ");
            res.push_str(&crate::json::escaped(msg));
            res.push_str("}, \"locations\": [");
            res.push_str(&Self::location(&r.path, Some(*loc), None));
            res.push_str("]}");
            self.results.push(res);
        }
        for e in &r.errors {
            self.any_failure = true;
            let mut n = String::from("{\"level\": \"error\", \"message\": {\"text\": ");
            n.push_str(&crate::json::escaped(&format!("{}: {}", r.path, e)));
            n.push_str("}}");
            self.notifications.push(n);
            let _ = writeln!(err, "{}: {}", r.path, e);
        }
        Rendered {
            stdout: String::new(),
            stderr: err,
        }
    }

    fn finish(&mut self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"$schema\": \"{SARIF_SCHEMA_URI}\", \"version\": \"2.1.0\", \"runs\": [{{\
             \"tool\": {{\"driver\": {{\"name\": \"cundef\", \"version\": {}, \
             \"informationUri\": \"https://example.invalid/cundef\", \"rules\": {}}}}}, \
             \"invocations\": [{{\"executionSuccessful\": {}",
            crate::json::escaped(&self.tool_version),
            Self::rules_json(),
            !self.any_failure,
        );
        if !self.notifications.is_empty() {
            let _ = write!(
                out,
                ", \"toolExecutionNotifications\": [{}]",
                self.notifications.join(", ")
            );
        }
        let _ = write!(out, "}}], \"results\": [{}]}}]}}", self.results.join(", "));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::UbError;

    fn sample() -> FileResult {
        FileResult {
            path: "examples/unsequenced.c".into(),
            verdict: Verdict::Undefined,
            findings: vec![UbError::new(UbKind::UnsequencedSideEffect)
                .at(SourceLoc::new(3, 5))
                .in_function("main")
                .with_detail("assignment to `x` unsequenced with another side effect on it")
                .to_diagnostic()],
            notes: vec![(SourceLoc::new(2, 7), "implementation-defined: wrap".into())],
            success: None,
            exit: None,
            errors: vec![],
        }
    }

    #[test]
    fn human_format_matches_the_historical_shape() {
        let out = HumanRenderer::new(false).render_file(&sample());
        assert!(out
            .stdout
            .starts_with("examples/unsequenced.c:2:7: note: implementation-defined: wrap\n"));
        assert!(out.stdout.contains("examples/unsequenced.c:\n"));
        assert!(out.stdout.contains("Error: 00016\n"));
        assert!(out.stdout.contains("Line: 3\n"));
        assert!(out.stderr.is_empty());
    }

    #[test]
    fn quiet_suppresses_only_success_lines() {
        let clean = FileResult {
            path: "ok.c".into(),
            verdict: Verdict::Defined,
            findings: vec![],
            notes: vec![],
            success: Some("no undefined behavior detected (program returned 0)".into()),
            exit: Some(0),
            errors: vec![],
        };
        let loud = HumanRenderer::new(false).render_file(&clean);
        assert_eq!(
            loud.stdout,
            "ok.c: no undefined behavior detected (program returned 0)\n"
        );
        let quiet = HumanRenderer::new(true).render_file(&clean);
        assert!(quiet.stdout.is_empty());
        // The undefined report itself is never suppressed.
        let quiet_ub = HumanRenderer::new(true).render_file(&sample());
        assert!(quiet_ub.stdout.contains("Error: 00016"));
    }

    #[test]
    fn jsonl_events_parse_and_carry_the_finding() {
        let out = JsonRenderer::new().render_file(&sample());
        let lines: Vec<&str> = out.stdout.lines().collect();
        assert_eq!(lines.len(), 3); // note, finding, verdict
        let note = Json::parse(lines[0]).expect("note parses");
        assert_eq!(note.get("type").and_then(Json::as_str), Some("note"));
        assert_eq!(note.get("line").and_then(Json::as_u32), Some(2));
        let finding = Json::parse(lines[1]).expect("finding parses");
        assert_eq!(
            finding.get("kind").and_then(Json::as_str),
            Some("UnsequencedSideEffect")
        );
        assert_eq!(finding.get("code").and_then(Json::as_u32), Some(16));
        assert_eq!(finding.get("line").and_then(Json::as_u32), Some(3));
        assert_eq!(finding.get("column").and_then(Json::as_u32), Some(5));
        let verdict = Json::parse(lines[2]).expect("verdict parses");
        assert_eq!(
            verdict.get("verdict").and_then(Json::as_str),
            Some("undefined")
        );
    }

    #[test]
    fn sarif_document_is_valid_json_with_rules_and_results() {
        let mut r = SarifRenderer::new("0.1.0");
        let per_file = r.render_file(&sample());
        assert!(per_file.stdout.is_empty(), "SARIF aggregates until finish");
        let doc = r.finish();
        let v = Json::parse(&doc).expect("SARIF must be valid JSON");
        assert_eq!(v.get("version").and_then(Json::as_str), Some("2.1.0"));
        let run = &v.get("runs").and_then(Json::as_arr).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rules.len(), UbKind::ALL.len());
        assert!(rules
            .iter()
            .any(|r| r.get("id").and_then(Json::as_str) == Some("UB00016")));
        let results = run.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2); // finding + note
        assert_eq!(
            results[0].get("ruleId").and_then(Json::as_str),
            Some("UB00016")
        );
        let region = results[0]
            .get("locations")
            .and_then(Json::as_arr)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .unwrap();
        assert_eq!(region.get("startLine").and_then(Json::as_u32), Some(3));
    }

    #[test]
    fn sarif_rule_metadata_names_catalog_entries() {
        let doc = {
            let mut r = SarifRenderer::new("0.1.0");
            r.finish()
        };
        let v = Json::parse(&doc).unwrap();
        let rules = v.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        // Every rule with coverage must list at least one catalog id,
        // and the flagship unsequenced rule must cite §6.5:2.
        let unseq = rules
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some("UB00016"))
            .unwrap();
        let props = unseq.get("properties").unwrap();
        assert_eq!(props.get("std_ref").and_then(Json::as_str), Some("6.5:2"),);
        assert!(!props
            .get("catalogIds")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn engine_failures_reach_stderr_and_sarif_notifications() {
        let failed = FileResult {
            path: "gone.c".into(),
            verdict: Verdict::EngineFailure,
            findings: vec![],
            notes: vec![],
            success: None,
            exit: None,
            errors: vec!["cannot read file: No such file or directory (os error 2)".into()],
        };
        let human = HumanRenderer::new(false).render_file(&failed);
        assert!(human.stderr.starts_with("gone.c: cannot read file"));
        let mut sarif = SarifRenderer::new("0.1.0");
        let per_file = sarif.render_file(&failed);
        assert_eq!(per_file.stderr, human.stderr);
        let doc = Json::parse(&sarif.finish()).unwrap();
        let inv = &doc.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("invocations")
            .and_then(Json::as_arr)
            .unwrap()[0];
        assert_eq!(inv.get("executionSuccessful"), Some(&Json::Bool(false)));
        assert!(!inv
            .get("toolExecutionNotifications")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "placeholder location")]
    fn placeholder_locations_fail_the_debug_assertion() {
        let mut bad = sample();
        bad.findings[0].loc = Some(SourceLoc::new(0, 0));
        HumanRenderer::new(false).render_file(&bad);
    }
}
