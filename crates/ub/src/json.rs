//! Minimal JSON support for the structured renderers.
//!
//! The build container has no network access, so `serde`/`serde_json`
//! cannot be vendored. This module provides the two halves the
//! workspace needs instead:
//!
//! - [`escape_into`] / [`escaped`] — RFC 8259 string escaping, used by
//!   the JSONL and SARIF renderers in [`crate::render`];
//! - [`Json`] / [`Json::parse`] — a small recursive-descent JSON reader,
//!   used by the format-parity tests and the differential fuzzer's
//!   round-trip oracle to read the renderers' output back.
//!
//! The parser accepts exactly the JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null) and rejects trailing
//! garbage. It keeps numbers as `f64`, which is lossless for every
//! line/column/code the renderers emit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` with JSON string escaping (no surrounding
/// quotes).
///
/// # Examples
///
/// ```
/// let mut out = String::new();
/// cundef_ub::json::escape_into(&mut out, "a \"b\"\n");
/// assert_eq!(out, r#"a \"b\"\n"#);
/// ```
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` as a quoted, escaped JSON string literal.
///
/// # Examples
///
/// ```
/// assert_eq!(cundef_ub::json::escaped("x\ty"), "\"x\\ty\"");
/// ```
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A parsed JSON value.
///
/// Object keys are kept in a [`BTreeMap`], so re-rendering (or
/// comparing) parsed values is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one complete JSON document; `None` on any syntax error or
    /// trailing garbage.
    ///
    /// # Examples
    ///
    /// ```
    /// use cundef_ub::json::Json;
    ///
    /// let v = Json::parse(r#"{"line": 3, "ok": true}"#).unwrap();
    /// assert_eq!(v.get("line").and_then(Json::as_u32), Some(3));
    /// assert_eq!(Json::parse("{oops"), None);
    /// ```
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Member `key` of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u32`, if it is one exactly.
    pub fn as_u32(&self) -> Option<u32> {
        let n = self.as_f64()?;
        (n >= 0.0 && n <= u32::MAX as f64 && n.fract() == 0.0).then_some(n as u32)
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => eat(b, pos, "null").map(|()| Json::Null),
        b't' => eat(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => eat(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(map));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogate pairs are outside what the renderers
                        // ever emit; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Advance one whole UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_round_trip_through_the_parser() {
        let nasty = "a \"quoted\" line\nwith\ttabs, \\slashes\\ and \u{1} control";
        let doc = format!("{{\"s\": {}}}", escaped(nasty));
        let parsed = Json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}, true], "c": -2.5}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(-2.5));
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert_eq!(Json::parse("{} extra"), None);
        assert_eq!(Json::parse("{\"a\":}"), None);
        assert_eq!(Json::parse("[1,]"), None);
        assert_eq!(Json::parse("\"unterminated"), None);
    }

    #[test]
    fn numbers_keep_integer_precision_for_u32() {
        let v = Json::parse("[0, 16, 4294967295]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[1].as_u32(), Some(16));
        assert_eq!(a[2].as_u32(), Some(u32::MAX));
        assert_eq!(Json::parse("1.5").unwrap().as_u32(), None);
    }

    #[test]
    fn unicode_text_survives() {
        let v = Json::parse("\"héllo — §6.5:2\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — §6.5:2"));
    }
}
