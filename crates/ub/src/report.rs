//! Structured undefined-behavior reports and their `kcc`-style rendering.

use crate::UbKind;
use std::error::Error;
use std::fmt;

/// A position in the analyzed C source.
///
/// Lines and columns are 1-based, matching compiler convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SourceLoc {
    /// 1-based line number (0 if unknown).
    pub line: u32,
    /// 1-based column number (0 if unknown).
    pub col: u32,
}

impl SourceLoc {
    /// Create a location from a line/column pair.
    pub fn new(line: u32, col: u32) -> SourceLoc {
        SourceLoc { line, col }
    }
}

impl fmt::Display for SourceLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Severity of a diagnostic produced by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program's behavior is undefined: the standard imposes no
    /// requirements.
    Undefined,
    /// The program violates a compile-time constraint (a conforming
    /// implementation must diagnose it).
    Constraint,
    /// The checker itself gave up (resource budget, unsupported feature);
    /// this says nothing about the program.
    Engine,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Undefined => "undefined behavior",
            Severity::Constraint => "constraint violation",
            Severity::Engine => "checker limitation",
        })
    }
}

/// An occurrence of undefined behavior, as detected by the semantics.
///
/// This is the error type threaded through the whole evaluation engine:
/// every semantic rule that would "get stuck" on an undefined program
/// instead returns a `UbError` describing why.
///
/// # Examples
///
/// ```
/// use cundef_ub::{SourceLoc, UbError, UbKind};
///
/// let err = UbError::new(UbKind::DivisionByZero)
///     .at(SourceLoc::new(3, 12))
///     .in_function("main")
///     .with_detail("5 / 0");
/// assert_eq!(err.kind(), UbKind::DivisionByZero);
/// assert!(err.to_string().contains("Division by zero"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UbError {
    kind: UbKind,
    loc: Option<SourceLoc>,
    function: Option<String>,
    detail: Option<String>,
}

impl UbError {
    /// Create a report for the given kind with no location attached yet.
    pub fn new(kind: UbKind) -> UbError {
        UbError {
            kind,
            loc: None,
            function: None,
            detail: None,
        }
    }

    /// Attach a source location (keeps an existing one if already set, so
    /// the innermost frame wins as the error propagates outward).
    #[must_use]
    pub fn at(mut self, loc: SourceLoc) -> UbError {
        self.loc.get_or_insert(loc);
        self
    }

    /// Attach the enclosing function name (innermost wins).
    #[must_use]
    pub fn in_function(mut self, name: impl Into<String>) -> UbError {
        self.function.get_or_insert_with(|| name.into());
        self
    }

    /// Attach free-form detail about the offending operation.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> UbError {
        self.detail = Some(detail.into());
        self
    }

    /// The category of undefined behavior.
    pub fn kind(&self) -> UbKind {
        self.kind
    }

    /// Source location, if known.
    pub fn loc(&self) -> Option<SourceLoc> {
        self.loc
    }

    /// Enclosing function, if known.
    pub fn function(&self) -> Option<&str> {
        self.function.as_deref()
    }

    /// Free-form detail, if any.
    pub fn detail(&self) -> Option<&str> {
        self.detail.as_deref()
    }

    /// Render as a full diagnostic block.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic {
            severity: Severity::Undefined,
            kind: Some(self.kind),
            code: self.kind.code(),
            description: self.kind.title().to_string(),
            std_ref: Some(self.kind.info().std_ref.to_string()),
            function: self.function.clone(),
            loc: self.loc,
            detail: self.detail.clone(),
        }
    }
}

impl fmt::Display for UbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined behavior: {}", self.kind.title())?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        if let Some(func) = &self.function {
            write!(f, " in function {func}")?;
        }
        if let Some(loc) = self.loc {
            write!(f, " at line {}", loc.line)?;
        }
        Ok(())
    }
}

impl Error for UbError {}

/// A rendered diagnostic, formatted like the output of the paper's `kcc`
/// tool:
///
/// ```text
/// ERROR! KCC encountered an error.
/// ===============================================
/// Error: 00016
/// Description: Unsequenced side effect on scalar object with side effect
/// of same object.
/// ===============================================
/// Function: main
/// Line: 3
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Diagnostic severity.
    pub severity: Severity,
    /// The detector category behind this diagnostic, when it came from
    /// one (structured renderers key their rule metadata off this).
    pub kind: Option<UbKind>,
    /// Stable numeric code.
    pub code: u16,
    /// One-line description.
    pub description: String,
    /// C standard reference, if applicable.
    pub std_ref: Option<String>,
    /// Enclosing function, if known.
    pub function: Option<String>,
    /// Source location, if known.
    pub loc: Option<SourceLoc>,
    /// Free-form detail.
    pub detail: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ERROR! KCC encountered an error.")?;
        writeln!(f, "===============================================")?;
        writeln!(f, "Error: {:05}", self.code)?;
        writeln!(f, "Description: {}.", self.description)?;
        if let Some(r) = &self.std_ref {
            writeln!(f, "See section {r} of ISO/IEC 9899:2011.")?;
        }
        if let Some(d) = &self.detail {
            writeln!(f, "Detail: {d}")?;
        }
        writeln!(f, "===============================================")?;
        if let Some(func) = &self.function {
            writeln!(f, "Function: {func}")?;
        }
        if let Some(loc) = self.loc {
            writeln!(f, "Line: {}", loc.line)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_like_kcc() {
        let err = UbError::new(UbKind::UnsequencedSideEffect)
            .at(SourceLoc::new(3, 10))
            .in_function("main");
        let rendered = err.to_diagnostic().to_string();
        assert!(rendered.contains("Error: 00016"));
        assert!(rendered.contains("Unsequenced side effect"));
        assert!(rendered.contains("Function: main"));
        assert!(rendered.contains("Line: 3"));
    }

    #[test]
    fn innermost_location_wins() {
        let err = UbError::new(UbKind::DivisionByZero)
            .at(SourceLoc::new(7, 1))
            .at(SourceLoc::new(99, 1));
        assert_eq!(err.loc(), Some(SourceLoc::new(7, 1)));
    }

    #[test]
    fn innermost_function_wins() {
        let err = UbError::new(UbKind::DivisionByZero)
            .in_function("callee")
            .in_function("caller");
        assert_eq!(err.function(), Some("callee"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: &E) {}
        takes_error(&UbError::new(UbKind::NullDereference));
    }

    #[test]
    fn display_mentions_detail() {
        let err = UbError::new(UbKind::DivisionByZero).with_detail("5 / 0");
        assert!(err.to_string().contains("5 / 0"));
    }
}
