//! Invariant tests over the §5.2.1 catalog and the `UbKind` taxonomy,
//! checked from outside the crate the way downstream users see them.

use cundef_ub::{catalog, catalog_counts, Detectability, UbKind};
use std::collections::BTreeSet;

#[test]
fn the_headline_numbers() {
    let c = catalog_counts();
    assert_eq!(c.total, 221);
    assert_eq!(c.statically_detectable, 92);
    assert_eq!(c.dynamically_detectable, 129);
    assert_eq!(c.statically_detectable + c.dynamically_detectable, c.total);
    assert_eq!(catalog().len(), c.total);
}

#[test]
fn entry_ids_are_unique_and_dense() {
    let ids: BTreeSet<u16> = catalog().iter().map(|e| e.id).collect();
    assert_eq!(ids.len(), 221, "duplicate catalog ids");
    assert_eq!(*ids.first().unwrap(), 1);
    assert_eq!(*ids.last().unwrap(), 221);
}

#[test]
fn every_entry_cites_the_standard() {
    for e in catalog() {
        assert!(
            e.std_ref
                .split(':')
                .next()
                .unwrap()
                .split('.')
                .all(|p| p.parse::<u32>().is_ok()),
            "entry {} has malformed std_ref {:?}",
            e.id,
            e.std_ref
        );
    }
}

#[test]
fn summaries_are_nonempty_and_unique() {
    let mut seen = BTreeSet::new();
    for e in catalog() {
        assert!(!e.summary.is_empty(), "entry {} has no summary", e.id);
        assert!(
            seen.insert(e.summary),
            "entry {} duplicates summary {:?}",
            e.id,
            e.summary
        );
    }
}

#[test]
fn error_codes_are_unique_across_kinds() {
    let codes: BTreeSet<u16> = UbKind::ALL.iter().map(|k| k.code()).collect();
    assert_eq!(codes.len(), UbKind::ALL.len());
}

#[test]
fn all_is_sorted_by_code() {
    let codes: Vec<u16> = UbKind::ALL.iter().map(|k| k.code()).collect();
    let mut sorted = codes.clone();
    sorted.sort_unstable();
    assert_eq!(codes, sorted, "UbKind::ALL must stay in code order");
}

#[test]
fn language_entries_precede_library_entries_in_annex_order() {
    // The first block of the enumeration mirrors Annex J.2: language
    // clauses (4–6.10) before the library clause (7.x).
    let first_library = catalog()
        .iter()
        .position(|e| e.std_ref.starts_with("7."))
        .unwrap();
    assert!(
        catalog()[..first_library]
            .iter()
            .all(|e| !e.std_ref.starts_with("7.")),
        "library entry before position {first_library}"
    );
}

#[test]
fn coverage_spans_both_phases() {
    // The acceptance bar for the translation-phase subsystem: at least 25
    // catalog entries are covered by a detector, at least 15 of them
    // statically detectable (checked at translation time, before any
    // execution). The per-link existence check — every linked kind has a
    // real checker — lives in the analysis crate's registry tests, which
    // can see both the analyzer and the evaluator.
    let linked: Vec<_> = catalog()
        .iter()
        .filter(|e| e.detected_by.is_some())
        .collect();
    assert!(
        linked.len() >= 25,
        "only {} detected_by links",
        linked.len()
    );
    let static_linked = linked
        .iter()
        .filter(|e| e.detect == Detectability::Static)
        .count();
    assert!(
        static_linked >= 15,
        "only {static_linked} statically detectable entries are covered"
    );
}

#[test]
fn dynamic_entries_map_only_to_dynamic_detectors() {
    for e in catalog() {
        if let (Detectability::Dynamic, Some(k)) = (e.detect, e.detected_by) {
            assert_eq!(
                k.detectability(),
                Detectability::Dynamic,
                "entry {} is dynamic but mapped to static detector {k:?}",
                e.id
            );
        }
    }
}

#[test]
fn flagship_error_16_is_the_unsequenced_one() {
    let entry = catalog()
        .iter()
        .find(|e| e.detected_by == Some(UbKind::UnsequencedSideEffect))
        .expect("catalog maps something to UnsequencedSideEffect");
    assert!(entry.std_ref.starts_with("6.5"));
    assert_eq!(UbKind::UnsequencedSideEffect.code(), 16);
    assert_eq!(
        UbKind::UnsequencedSideEffect.detectability(),
        Detectability::Dynamic
    );
}
