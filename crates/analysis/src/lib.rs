//! Translation-phase static semantic analysis: the *semantics of
//! translation* half of "Defining the Undefinedness of C".
//!
//! Where `cundef-semantics` detects undefined behavior by *executing* a
//! program until its semantics gets stuck, this crate checks the program
//! text alone — the paper's §5.2.1 classifies 92 of C11's 221 undefined
//! behaviors as detectable this way, and a real-world checker must police
//! them before (or without) any run: headers, libraries, and dead code
//! have no executions to observe.
//!
//! [`analyze`] walks the interned, slot-resolved AST produced by
//! [`cundef_semantics::parser::parse`] — no re-parsing, no second symbol
//! table — and runs four passes:
//!
//! - **`decls`** ([`decls`]) — translation-unit–level declaration rules:
//!   duplicate and incompatible function definitions (§6.9:5, §6.7.6.3),
//!   mixed internal/external linkage (§6.2.2:7), qualified function
//!   types (§6.7.3:9), and nonstandard `main` signatures (§5.1.2.2.1);
//! - **`types`** ([`types`]) — a C-subset type system over the expression
//!   language: object types and qualifiers (`const` writes, `restrict`
//!   placement, `void` objects), implicit-conversion legality at call
//!   boundaries (arity and argument types against the visible
//!   definition), uses of `void` values, and function designators
//!   converted to object pointers;
//! - **`labels`** ([`labels`]) — statement/label constraints: duplicate
//!   labels, `goto` to nowhere, duplicate or non-constant `case` labels,
//!   and jumps (`goto` or `switch` dispatch) into the scope of a
//!   variably modified declaration (§6.8.6.1:1, §6.8.4.2:2);
//! - **`constexpr`** — the constant-expression engine
//!   ([`cundef_semantics::consteval`]) applied wherever §6.6 requires a
//!   constant: array sizes and case labels. Undefined operations inside
//!   them (`int a[1 << 40];`) surface with the same [`UbKind`] the
//!   evaluator would raise, so constant-foldable instances of *dynamic*
//!   defects are caught without running anything.
//!
//! Every finding is an ordinary [`cundef_ub::UbError`] and renders
//! through the same kcc-style [`cundef_ub::Diagnostic`] machinery as the
//! evaluator's reports. [`static_checks`] is the analyzer's half of the
//! workspace detector registry; together with
//! [`cundef_semantics::eval::detected_kinds`] it backs the catalog
//! invariant that every `detected_by` link points at a checker that
//! exists.

#![deny(missing_docs)]

pub mod decls;
pub mod labels;
pub mod types;

use cundef_semantics::ast::TranslationUnit;
use cundef_ub::{UbError, UbKind};

/// Run every translation-phase pass over a resolved unit.
///
/// Returns all findings, ordered by source position (then by error code,
/// so reports are deterministic when several defects share a line).
///
/// # Examples
///
/// ```
/// use cundef_analysis::analyze;
/// use cundef_semantics::parser::parse;
/// use cundef_ub::UbKind;
///
/// // No `main`, never executed — and statically undefined anyway.
/// let unit = parse("int helper(void) { int a[2 - 9]; return 0; }").unwrap();
/// let findings = analyze(&unit);
/// assert_eq!(findings[0].kind(), UbKind::ArraySizeNotPositive);
///
/// let unit = parse("int main(void) { return 0; }").unwrap();
/// assert!(analyze(&unit).is_empty());
/// ```
pub fn analyze(unit: &TranslationUnit) -> Vec<UbError> {
    let mut findings = Vec::new();
    decls::check(unit, &mut findings);
    for func in &unit.functions {
        types::check(unit, func, &mut findings);
        labels::check(unit, func, &mut findings);
    }
    findings.sort_by_key(|e| {
        let loc = e.loc().unwrap_or_default();
        (loc.line, loc.col, e.kind().code())
    });
    findings
}

/// The analyzer's detector registry: every [`UbKind`] a translation-phase
/// pass can report, with the name of the pass that reports it.
///
/// Kinds with `Detectability::Static` appear only here; a handful of
/// *dynamic* kinds also appear because their constant-foldable instances
/// (`case 1 / 0:`, `int a[1 << 40];`) or prototype-visible instances
/// (call arity/argument types) are decidable at translation time.
pub fn static_checks() -> &'static [(UbKind, &'static str)] {
    use UbKind::*;
    &[
        // declaration & linkage rules
        (NonstandardMain, "decls"),
        (MixedLinkage, "decls"),
        (DuplicateExternalDefinition, "decls"),
        (IncompatibleRedeclaration, "decls"),
        (QualifiedFunctionType, "decls"),
        // the type system (ReturnWithoutValue needs the statement walk,
        // which lives in the types pass)
        (ReturnWithoutValue, "types"),
        (IncompleteTypeObject, "types"),
        (RestrictNonPointer, "types"),
        (VoidValueUsed, "types"),
        (VoidDereference, "types"),
        (FunctionObjectPointerCast, "types"),
        (SizeofInvalidOperand, "types"),
        (CallWrongType, "types"),
        (CallWrongArity, "types"),
        (WriteToConst, "types"),
        // label & switch constraints
        (DuplicateLabel, "labels"),
        (UndeclaredLabel, "labels"),
        (DuplicateCaseLabel, "labels"),
        (NonConstantCaseLabel, "labels"),
        (JumpIntoVlaScope, "labels"),
        // the constant-expression engine
        (ArraySizeNotPositive, "constexpr"),
        (DivisionByZero, "constexpr"),
        (ModuloByZero, "constexpr"),
        (DivisionOverflow, "constexpr"),
        (SignedOverflow, "constexpr"),
        (ShiftByNegative, "constexpr"),
        (ShiftTooFar, "constexpr"),
        (ShiftOfNegative, "constexpr"),
        (ShiftOverflow, "constexpr"),
    ]
}

/// The pass that reports `kind`, if the analyzer covers it.
///
/// # Examples
///
/// ```
/// use cundef_analysis::pass_for;
/// use cundef_ub::UbKind;
///
/// assert_eq!(pass_for(UbKind::DuplicateCaseLabel), Some("labels"));
/// assert_eq!(pass_for(UbKind::DoubleFree), None); // evaluator territory
/// ```
pub fn pass_for(kind: UbKind) -> Option<&'static str> {
    static_checks()
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, pass)| *pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cundef_semantics::parser::parse;

    fn kinds_of(src: &str) -> Vec<UbKind> {
        analyze(&parse(src).unwrap())
            .iter()
            .map(|e| e.kind())
            .collect()
    }

    #[test]
    fn clean_programs_produce_no_findings() {
        for src in [
            "int main(void) { return 0; }",
            "int add(int a, int b) { return a + b; } int main(void) { return add(1, 2); }",
            "int main(void) { const int x = 3; int a[2 + 2]; return x + a[0] * 0; }",
            "int main(void) { int n = 3; int a[n]; return 0; }", // VLA: dynamic territory
            "void quiet(void) { return; } int main(void) { quiet(); return 0; }",
            "int main(void) { int x = 1; switch (x) { case 1: x = 2; break; default: x = 3; } return x; }",
            "int main(void) { goto done; done: return 0; }",
        ] {
            assert_eq!(kinds_of(src), vec![], "{src}");
        }
    }

    #[test]
    fn findings_are_ordered_by_position() {
        let src = "int main(void) {\n  void v;\n  int a[0];\n  return 0;\n}\n";
        let findings = analyze(&parse(src).unwrap());
        let kinds: Vec<UbKind> = findings.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![UbKind::IncompleteTypeObject, UbKind::ArraySizeNotPositive]
        );
        assert!(findings[0].loc().unwrap().line < findings[1].loc().unwrap().line);
    }

    #[test]
    fn registry_is_duplicate_free_and_self_describing() {
        let mut kinds: Vec<UbKind> = static_checks().iter().map(|(k, _)| *k).collect();
        let n = kinds.len();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), n, "duplicate kind in static_checks()");
        for (_, pass) in static_checks() {
            assert!(matches!(*pass, "decls" | "types" | "labels" | "constexpr"));
        }
        // Spot-check that pass names track the reporting module.
        assert_eq!(pass_for(UbKind::ReturnWithoutValue), Some("types"));
        assert_eq!(pass_for(UbKind::NonstandardMain), Some("decls"));
    }
}
