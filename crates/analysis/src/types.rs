//! The type-checking pass: a real (if small) C type system over the
//! subset's expression language.
//!
//! The walker mirrors the resolver's scope discipline exactly (§6.2.1:
//! a declaration's scope opens after its declarator, parameters share
//! the body's outermost block) and computes a value type for every
//! expression bottom-up. It reports:
//!
//! - objects declared with an incomplete type (`void x;`, §6.7:7);
//! - `restrict` on non-pointer types (§6.7.3:2);
//! - same-scope redeclarations with incompatible types (§6.7:3);
//! - assignments and `++`/`--` on objects defined `const` (§6.7.3:6 —
//!   also caught dynamically, but here before any run);
//! - uses of the (nonexistent) value of a `void` expression (§6.3.2.2:1);
//! - dereferences of pointers to `void` (§6.3.2.1/6.5.3.2);
//! - function designators converted to object values (§6.3.2.3);
//! - calls whose arity or argument types contradict the visible
//!   definition (§6.5.2.2) — every definition is a prototype in this
//!   subset, so these are decidable at translation time;
//! - `return;` in `main`, whose value the host always uses (§6.9.1:12);
//! - constant array sizes that are not positive, or whose constant
//!   expressions are themselves undefined (§6.7.6.2:1, §6.6:4).

use cundef_semantics::ast::{
    BinOp, Decl, ExprId, ExprKind, Function, SlotId, Stmt, StmtId, TranslationUnit, Ty, UnaryOp,
};
use cundef_semantics::consteval::{const_eval, ConstStop};
use cundef_semantics::ctype::{IntTy, SIZE_T};
use cundef_semantics::intern::Symbol;
use cundef_ub::{SourceLoc, UbError, UbKind};

/// What sits at the bottom of a pointer chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Base {
    /// `void` under the stars (`void *` is `Ptr { depth: 1, base: Void }`).
    Void,
    /// An integer type of the LP64 lattice.
    Scalar(IntTy),
}

/// The analyzer's value types: what an expression would evaluate to.
/// This is the full lattice of the subset — every integer type of
/// [`IntTy`] plus pointers that remember both their depth and their
/// pointee's base type, so call-argument and conversion checks are
/// width-aware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Type {
    /// An integer type of the LP64 lattice.
    Scalar(IntTy),
    /// Pointer of the given depth over the given base.
    Ptr { depth: u8, base: Base },
    /// The value of a `void` expression — using it is a finding.
    Void,
    /// Outside the analyzable fragment (undeclared names, dynamic
    /// mixes); the checker stays silent rather than guessing.
    Unknown,
}

/// What a frame slot was declared as.
struct SlotInfo {
    ty: Ty,
    is_array: bool,
    is_const: bool,
}

/// Run the type pass over one function.
pub fn check(unit: &TranslationUnit, func: &Function, findings: &mut Vec<UbError>) {
    let mut w = TypeWalker {
        unit,
        fname: unit.name_of(func),
        is_main: unit.name_of(func) == "main" && !func.returns_void,
        slots: (0..func.n_slots).map(|_| None).collect(),
        scopes: vec![Vec::new()],
        findings,
    };
    for (i, p) in func.params.iter().enumerate() {
        w.slots[i] = Some(SlotInfo {
            ty: p.ty.clone(),
            is_array: false,
            is_const: false,
        });
        w.scopes[0].push((p.name, SlotId::from_index(i)));
    }
    for &s in &func.body {
        w.stmt(s);
    }
}

struct TypeWalker<'a> {
    unit: &'a TranslationUnit,
    fname: &'a str,
    is_main: bool,
    slots: Vec<Option<SlotInfo>>,
    /// Innermost scope last, mirroring the resolver: used to find the
    /// *previous* declaration a redeclaration clashes with.
    scopes: Vec<Vec<(Symbol, SlotId)>>,
    findings: &'a mut Vec<UbError>,
}

impl<'a> TypeWalker<'a> {
    fn report(&mut self, kind: UbKind, loc: SourceLoc, detail: String) {
        self.findings.push(
            UbError::new(kind)
                .at(loc)
                .in_function(self.fname)
                .with_detail(detail),
        );
    }

    fn name(&self, sym: Symbol) -> &'a str {
        self.unit.interner.resolve(sym)
    }

    // ----- statements -----

    fn stmt(&mut self, s: StmtId) {
        match self.unit.stmt(s) {
            Stmt::Decl(d) => self.decl(d),
            Stmt::Expr(e) => {
                // A full expression's value is discarded; `void` is fine.
                self.ty_of(*e);
            }
            Stmt::If(c, then, els) => {
                self.value(*c);
                self.stmt(*then);
                if let Some(els) = els {
                    self.stmt(*els);
                }
            }
            Stmt::While(c, body) => {
                self.value(*c);
                self.stmt(*body);
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(Vec::new());
                if let Some(init) = init {
                    self.stmt(*init);
                }
                if let Some(cond) = cond {
                    self.value(*cond);
                }
                if let Some(step) = step {
                    self.ty_of(*step);
                }
                self.stmt(*body);
                self.scopes.pop();
            }
            Stmt::Return(Some(e), _) => {
                self.value(*e);
            }
            Stmt::Return(None, loc) => {
                if self.is_main {
                    // §6.9.1:12, static form: the host always uses
                    // `main`'s value as the termination status.
                    self.report(
                        UbKind::ReturnWithoutValue,
                        *loc,
                        "`return;` in `main`, whose value the host uses as the termination status"
                            .into(),
                    );
                }
            }
            Stmt::Block(items, _) => {
                self.scopes.push(Vec::new());
                for &item in items {
                    self.stmt(item);
                }
                self.scopes.pop();
            }
            Stmt::Switch(c, body, _) => {
                self.value(*c);
                self.stmt(*body);
            }
            // Case expressions are constant-checked by the labels pass.
            Stmt::Case(_, inner, _) | Stmt::Default(inner, _) | Stmt::Label(_, inner, _) => {
                self.stmt(*inner)
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Goto(_, _) | Stmt::Empty(_) => {}
        }
    }

    fn decl(&mut self, d: &Decl) {
        let dname = self.name(d.name);

        // §6.7:7 — an object's type must be complete by the end of its
        // declarator; bare `void` never is.
        if d.ty.ptr_depth() == 0 && *d.ty.base() == Ty::Void {
            self.report(
                UbKind::IncompleteTypeObject,
                d.loc,
                format!("object `{dname}` declared with incomplete type `void`"),
            );
        }

        // §6.7.3:2 — restrict only qualifies pointer-to-object types.
        if d.base_restrict || (d.quals.is_restrict && d.ty.ptr_depth() == 0) {
            self.report(
                UbKind::RestrictNonPointer,
                d.loc,
                format!("`restrict` qualifies the non-pointer type of `{dname}`"),
            );
        }

        // The array size is resolved in the scope outside the binding.
        if let Some(size) = d.array_size {
            if d.const_size {
                match const_eval(self.unit, size) {
                    Ok(n) if n.math() <= 0 => self.report(
                        UbKind::ArraySizeNotPositive,
                        d.loc,
                        format!("array `{dname}` declared with size {n}"),
                    ),
                    Ok(_) => {}
                    Err(ConstStop::Ub { kind, detail, loc }) => {
                        // §6.6:4 — the constant expression itself is
                        // undefined; report the arithmetic defect.
                        self.report(
                            kind,
                            loc,
                            format!("in the size of array `{dname}`: {detail}"),
                        )
                    }
                    // `const_size` was precomputed by the resolver.
                    Err(ConstStop::NotConst(_)) => {}
                }
            } else {
                // A VLA size is an ordinary runtime expression.
                self.value(size);
            }
        }

        // §6.7:3 — a same-scope redeclaration with a different type. The
        // resolver flagged the redeclaration; the previous binding is
        // still the innermost-scope entry for the name.
        if d.redeclaration {
            let prev = self
                .scopes
                .last()
                .and_then(|scope| scope.iter().rev().find(|(n, _)| *n == d.name))
                .map(|(_, slot)| *slot);
            if let Some(prev) = prev {
                if let Some(info) = &self.slots[prev.index()] {
                    if info.ty != d.ty || info.is_array != d.array_size.is_some() {
                        self.report(
                            UbKind::IncompatibleRedeclaration,
                            d.loc,
                            format!("`{dname}` redeclared with an incompatible type"),
                        );
                    }
                }
            }
        }

        // The binding opens before the initializer (§6.2.1:7).
        self.scopes
            .last_mut()
            .expect("active scope")
            .push((d.name, d.slot));
        self.slots[d.slot.index()] = Some(SlotInfo {
            ty: d.ty.clone(),
            is_array: d.array_size.is_some(),
            is_const: d.quals.is_const,
        });

        if let Some(init) = d.init {
            self.value(init);
        }
        if let Some(items) = &d.array_init {
            for &item in items {
                self.value(item);
            }
        }
    }

    // ----- expressions -----

    /// Type of an expression whose *value* is consumed: a `void` result
    /// is §6.3.2.2:1.
    fn value(&mut self, e: ExprId) -> Type {
        let t = self.ty_of(e);
        if t == Type::Void {
            let loc = self.unit.expr(e).loc;
            self.report(
                UbKind::VoidValueUsed,
                loc,
                "the value of a void expression is used".into(),
            );
            return Type::Unknown;
        }
        t
    }

    fn ty_of(&mut self, e: ExprId) -> Type {
        let expr = self.unit.expr(e);
        let loc = expr.loc;
        match &expr.kind {
            ExprKind::IntLit(c) => Type::Scalar(c.ty),
            ExprKind::SizeofType(ty) => {
                // §6.5.3.4:1 — sizeof needs a complete object type; bare
                // `void` is not one.
                if ty.ptr_depth() == 0 && *ty.base() == Ty::Void {
                    self.report(
                        UbKind::SizeofInvalidOperand,
                        loc,
                        "`sizeof` applied to the incomplete type `void`".into(),
                    );
                    return Type::Unknown;
                }
                Type::Scalar(SIZE_T)
            }
            ExprKind::SizeofExpr(a) => {
                // §6.5.3.4:1 — the operand shall not be a function
                // designator or have an incomplete (void) type. The
                // operand is unevaluated, but type constraints still
                // apply to the program text.
                if let ExprKind::Ident(sym) = self.unit.expr(*a).kind {
                    if self.is_function(sym) {
                        let n = self.name(sym);
                        self.report(
                            UbKind::SizeofInvalidOperand,
                            loc,
                            format!("`sizeof` applied to the function designator `{n}`"),
                        );
                        return Type::Unknown;
                    }
                }
                if self.ty_of(*a) == Type::Void {
                    self.report(
                        UbKind::SizeofInvalidOperand,
                        loc,
                        "`sizeof` applied to a void expression".into(),
                    );
                    return Type::Unknown;
                }
                Type::Scalar(SIZE_T)
            }
            ExprKind::Ident(sym) => {
                // The resolver left this unbound: either undeclared
                // (lazy, the evaluator's business) or a function
                // designator leaking into value position — the subset
                // has only object pointers for it to convert to.
                if self.is_function(*sym) {
                    let n = self.name(*sym);
                    self.report(
                        UbKind::FunctionObjectPointerCast,
                        loc,
                        format!("function designator `{n}` used as an object value"),
                    );
                }
                Type::Unknown
            }
            ExprKind::Slot(slot, _) => self.slot_type(*slot),
            ExprKind::Unary(op, a) => {
                let t = self.value(*a);
                match (op, t) {
                    // `!` yields int; `-`/`~` yield the promoted operand
                    // type (§6.5.3.3).
                    (UnaryOp::Not, _) => Type::Scalar(IntTy::Int),
                    (_, Type::Scalar(it)) => Type::Scalar(it.promote()),
                    _ => Type::Unknown,
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.value(*a);
                let tb = self.value(*b);
                binary_type(*op, ta, tb)
            }
            ExprKind::LogicalAnd(a, b) | ExprKind::LogicalOr(a, b) => {
                self.value(*a);
                self.value(*b);
                Type::Scalar(IntTy::Int)
            }
            ExprKind::Conditional(c, t, f) => {
                self.value(*c);
                let tt = self.ty_of(*t);
                let tf = self.ty_of(*f);
                match (tt, tf) {
                    _ if tt == tf => tt,
                    // §6.5.15:5 — both arithmetic: the usual arithmetic
                    // conversions decide the result type.
                    (Type::Scalar(x), Type::Scalar(y)) => Type::Scalar(IntTy::usual_arith(x, y)),
                    _ => Type::Unknown,
                }
            }
            ExprKind::Assign(place, _, rhs) => {
                let tp = self.place(*place, loc);
                self.value(*rhs);
                tp
            }
            ExprKind::PreIncDec(p, _) | ExprKind::PostIncDec(p, _) => self.place(*p, loc),
            ExprKind::Deref(a) => {
                let t = self.value(*a);
                self.deref_type(t, loc)
            }
            ExprKind::AddrOf(a) => {
                if let ExprKind::Ident(sym) = self.unit.expr(*a).kind {
                    if self.is_function(sym) {
                        let n = self.name(sym);
                        self.report(
                            UbKind::FunctionObjectPointerCast,
                            loc,
                            format!("`&{n}` converts a function pointer to an object pointer"),
                        );
                        return Type::Unknown;
                    }
                }
                // `&array` has array-pointer type, outside the subset
                // (the evaluator rejects it); stay agnostic here.
                if let ExprKind::Slot(slot, _) = self.unit.expr(*a).kind {
                    if self.slots[slot.index()]
                        .as_ref()
                        .is_some_and(|i| i.is_array)
                    {
                        return Type::Unknown;
                    }
                }
                match self.ty_of(*a) {
                    Type::Scalar(it) => Type::Ptr {
                        depth: 1,
                        base: Base::Scalar(it),
                    },
                    Type::Ptr { depth, base } => Type::Ptr {
                        depth: depth.saturating_add(1),
                        base,
                    },
                    _ => Type::Unknown,
                }
            }
            ExprKind::Index(base, idx) => {
                let tb = self.value(*base);
                self.value(*idx);
                self.deref_type(tb, loc)
            }
            ExprKind::Call(sym, args) => self.call(*sym, args, loc),
            ExprKind::Comma(a, b) => {
                self.ty_of(*a);
                self.ty_of(*b)
            }
            ExprKind::Cast(ty, a) => {
                // §6.5.4 — `(void)e` discards any operand; a cast to a
                // non-void type needs an operand with a *value* (casting
                // a void expression is the §6.3.2.2:1 use of its
                // nonexistent value). The result has the named type, so
                // pointee types propagate through casts and downstream
                // call/deref checks see `(long *)p` as a `long *`.
                if *ty == Ty::Void {
                    self.ty_of(*a);
                    return Type::Void;
                }
                self.value(*a);
                type_of_ty(ty)
            }
        }
    }

    /// An lvalue being stored to: flags writes to `const`-defined
    /// objects (§6.7.3:6) and types the place.
    fn place(&mut self, e: ExprId, op_loc: SourceLoc) -> Type {
        let expr = self.unit.expr(e);
        match &expr.kind {
            ExprKind::Slot(slot, sym) => {
                if self.slots[slot.index()]
                    .as_ref()
                    .is_some_and(|i| i.is_const)
                {
                    let n = self.name(*sym);
                    self.report(
                        UbKind::WriteToConst,
                        op_loc,
                        format!("`{n}` is defined with a const-qualified type"),
                    );
                }
                self.slot_type(*slot)
            }
            // `a[i] = …` on an array defined const.
            ExprKind::Index(base, _) => {
                if let ExprKind::Slot(slot, sym) = self.unit.expr(*base).kind {
                    let info = self.slots[slot.index()].as_ref();
                    if info.is_some_and(|i| i.is_const && i.is_array) {
                        let n = self.name(sym);
                        self.report(
                            UbKind::WriteToConst,
                            op_loc,
                            format!("`{n}` is defined with a const-qualified type"),
                        );
                    }
                }
                self.ty_of(e)
            }
            _ => self.ty_of(e),
        }
    }

    fn call(&mut self, sym: Symbol, args: &[ExprId], loc: SourceLoc) -> Type {
        let name = self.name(sym);
        let target = self
            .unit
            .func_by_symbol
            .get(sym.index())
            .copied()
            .flatten()
            .map(|i| &self.unit.functions[i as usize]);
        let Some(func) = target else {
            // `malloc`/`free` are modeled; anything else unknown is the
            // evaluator's lazy CallNonFunction.
            for &a in args {
                self.value(a);
            }
            return match name {
                // `malloc` returns `void *` (§7.22.3.4): it converts to
                // (and satisfies) any object-pointer type.
                "malloc" => Type::Ptr {
                    depth: 1,
                    base: Base::Void,
                },
                "free" => Type::Void,
                _ => Type::Unknown,
            };
        };
        // §6.5.2.2:2/:6 — every definition is a visible prototype here,
        // so arity and argument types are translation-time questions.
        if func.params.len() != args.len() {
            self.report(
                UbKind::CallWrongArity,
                loc,
                format!(
                    "`{name}` takes {} argument(s), called with {}",
                    func.params.len(),
                    args.len()
                ),
            );
        }
        for (i, &a) in args.iter().enumerate() {
            let ta = self.value(a);
            let Some(param) = func.params.get(i) else {
                continue;
            };
            let pt = type_of_ty(&param.ty);
            if !arg_compatible(ta, pt, &self.unit.expr(a).kind) {
                let pname = self.name(param.name);
                self.report(
                    UbKind::CallWrongType,
                    loc,
                    format!(
                        "argument {} of `{name}` is incompatible with parameter `{pname}`",
                        i + 1
                    ),
                );
            }
        }
        if func.returns_void && func.ret_ptr == 0 {
            Type::Void
        } else if func.ret_ptr > 0 {
            Type::Ptr {
                depth: func.ret_ptr,
                base: if func.returns_void {
                    Base::Void
                } else {
                    Base::Scalar(func.ret_scalar)
                },
            }
        } else {
            Type::Scalar(func.ret_scalar)
        }
    }

    fn deref_type(&mut self, t: Type, loc: SourceLoc) -> Type {
        match t {
            Type::Ptr {
                depth: 1,
                base: Base::Void,
            } => {
                // §6.3.2.1 / catalog entry 45 — the pointed-to value of
                // a `void *` cannot be used.
                self.report(
                    UbKind::VoidDereference,
                    loc,
                    "dereference of a pointer to void".into(),
                );
                Type::Unknown
            }
            Type::Ptr {
                depth: 1,
                base: Base::Scalar(it),
            } => Type::Scalar(it),
            Type::Ptr { depth, base } => Type::Ptr {
                depth: depth - 1,
                base,
            },
            _ => Type::Unknown,
        }
    }

    fn slot_type(&self, slot: SlotId) -> Type {
        match &self.slots[slot.index()] {
            Some(info) if info.is_array => Type::Ptr {
                depth: info.ty.ptr_depth().saturating_add(1),
                base: base_of_ty(&info.ty),
            },
            Some(info) => type_of_ty(&info.ty),
            None => Type::Unknown,
        }
    }

    fn is_function(&self, sym: Symbol) -> bool {
        self.unit
            .func_by_symbol
            .get(sym.index())
            .copied()
            .flatten()
            .is_some()
    }
}

fn base_of_ty(ty: &Ty) -> Base {
    match ty.base() {
        Ty::Int(it) => Base::Scalar(*it),
        _ => Base::Void,
    }
}

fn type_of_ty(ty: &Ty) -> Type {
    match ty {
        Ty::Int(it) => Type::Scalar(*it),
        Ty::Void => Type::Void,
        Ty::Ptr(_) => Type::Ptr {
            depth: ty.ptr_depth(),
            base: base_of_ty(ty),
        },
    }
}

fn binary_type(op: BinOp, ta: Type, tb: Type) -> Type {
    use BinOp::*;
    match (ta, tb) {
        (Type::Scalar(a), Type::Scalar(b)) => match op {
            // §6.5.8/§6.5.9 — comparisons yield int.
            Lt | Le | Gt | Ge | Eq | Ne => Type::Scalar(IntTy::Int),
            // §6.5.7:3 — shifts take the promoted *left* operand's type.
            Shl | Shr => Type::Scalar(a.promote()),
            // Everything else goes through the usual arithmetic
            // conversions.
            _ => Type::Scalar(IntTy::usual_arith(a, b)),
        },
        (p @ Type::Ptr { .. }, Type::Scalar(_)) if matches!(op, Add | Sub) => p,
        (Type::Scalar(_), p @ Type::Ptr { .. }) if op == Add => p,
        // Pointer subtraction yields ptrdiff_t — `long` on LP64
        // (§6.5.6:9); pointer comparisons yield int.
        (Type::Ptr { .. }, Type::Ptr { .. }) if op == Sub => Type::Scalar(IntTy::Long),
        (Type::Ptr { .. }, Type::Ptr { .. }) if matches!(op, Lt | Le | Gt | Ge | Eq | Ne) => {
            Type::Scalar(IntTy::Int)
        }
        _ => Type::Unknown,
    }
}

/// Whether an argument of type `ta` may initialize a parameter of type
/// `pt` (§6.5.2.2:2 via §6.5.16.1): any arithmetic type converts to any
/// other (implicitly, at worst implementation-defined — never a
/// constraint violation), `void *` accepts and provides any object
/// pointer, the null pointer constant `0` converts to any pointer, and
/// other pointers must match in depth *and* pointee base type — `long *`
/// does not initialize `int *`.
fn arg_compatible(ta: Type, pt: Type, arg: &ExprKind) -> bool {
    const VOID_PTR: Type = Type::Ptr {
        depth: 1,
        base: Base::Void,
    };
    match (ta, pt) {
        (Type::Unknown, _) | (_, Type::Unknown) => true,
        (a, b) if a == b => true,
        (Type::Scalar(_), Type::Scalar(_)) => true,
        (Type::Scalar(_), Type::Ptr { .. }) => {
            matches!(arg, ExprKind::IntLit(c) if c.is_zero())
        }
        (Type::Ptr { .. }, p) if p == VOID_PTR => true,
        (p, Type::Ptr { .. }) if p == VOID_PTR => true,
        (Type::Ptr { depth: a, base: ab }, Type::Ptr { depth: b, base: bb }) => a == b && ab == bb,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cundef_semantics::parser::parse;

    fn kinds_of(src: &str) -> Vec<UbKind> {
        let unit = parse(src).unwrap();
        let mut findings = Vec::new();
        for f in &unit.functions {
            check(&unit, f, &mut findings);
        }
        findings.iter().map(|e| e.kind()).collect()
    }

    #[test]
    fn void_objects_and_restrict_placement() {
        assert_eq!(
            kinds_of("int main(void) { void v; return 0; }"),
            vec![UbKind::IncompleteTypeObject]
        );
        assert_eq!(
            kinds_of("int main(void) { restrict int x; return 0; }"),
            vec![UbKind::RestrictNonPointer]
        );
        assert_eq!(
            kinds_of("int main(void) { restrict int *p; return 0; }"),
            vec![UbKind::RestrictNonPointer]
        );
        // …but restrict on the pointer itself is fine.
        assert_eq!(
            kinds_of("int main(void) { int * restrict p; return 0; }"),
            vec![]
        );
        // `void *p` is a fine declaration; dereferencing it is not.
        assert_eq!(kinds_of("int main(void) { void *p; return 0; }"), vec![]);
    }

    #[test]
    fn void_values_and_void_deref() {
        assert_eq!(
            kinds_of("void f(void) { return; } int main(void) { int x = f(); return x; }"),
            vec![UbKind::VoidValueUsed]
        );
        assert_eq!(
            kinds_of("int main(void) { void *p; int x = *p; return x; }"),
            vec![UbKind::VoidDereference]
        );
        // Discarding a void call is fine.
        assert_eq!(
            kinds_of("void f(void) { return; } int main(void) { f(); return 0; }"),
            vec![]
        );
    }

    #[test]
    fn incompatible_redeclarations_in_block_scope() {
        assert_eq!(
            kinds_of("int main(void) { int x = 0; int *x; return 0; }"),
            vec![UbKind::IncompatibleRedeclaration]
        );
        assert_eq!(
            kinds_of("int main(void) { int a[3]; int a; return 0; }"),
            vec![UbKind::IncompatibleRedeclaration]
        );
        // Same-type redeclaration stays the evaluator's lazy verdict.
        assert_eq!(
            kinds_of("int main(void) { int x = 0; int x; return 0; }"),
            vec![]
        );
        // Shadowing in an inner scope is not a redeclaration.
        assert_eq!(
            kinds_of("int main(void) { int x = 0; { int *x; } return 0; }"),
            vec![]
        );
    }

    #[test]
    fn const_writes_are_static_findings() {
        assert_eq!(
            kinds_of("int main(void) { const int x = 1; x = 2; return x; }"),
            vec![UbKind::WriteToConst]
        );
        assert_eq!(
            kinds_of("int main(void) { const int x = 1; x++; return x; }"),
            vec![UbKind::WriteToConst]
        );
        assert_eq!(
            kinds_of("int main(void) { const int a[2] = {1, 2}; a[0] = 3; return 0; }"),
            vec![UbKind::WriteToConst]
        );
        // const pointer to mutable data: writes through it are fine.
        assert_eq!(
            kinds_of("int main(void) { int x = 1; int * const p = &x; *p = 2; return x; }"),
            vec![]
        );
    }

    #[test]
    fn call_arity_and_argument_types_against_the_definition() {
        assert_eq!(
            kinds_of("int add(int a, int b) { return a + b; } int main(void) { return add(1); }"),
            vec![UbKind::CallWrongArity]
        );
        assert_eq!(
            kinds_of(
                "int deref(int *p) { return *p; } int main(void) { int x = 5; return deref(x); }"
            ),
            vec![UbKind::CallWrongType]
        );
        assert_eq!(
            kinds_of(
                "int f(int x) { return x; } int main(void) { int y = 0; int *p = &y; return f(p); }"
            ),
            vec![UbKind::CallWrongType]
        );
        // The null pointer constant converts to any pointer type.
        assert_eq!(
            kinds_of("int f(int *p) { return p == 0; } int main(void) { return f(0); }"),
            vec![]
        );
    }

    #[test]
    fn pointer_arguments_match_on_width_not_just_depth() {
        // `long *` does not initialize `int *` (§6.5.16.1:1) — the
        // lattice now sees the pointee width.
        assert_eq!(
            kinds_of(
                "int deref(int *p) { return *p; } \
                 int main(void) { long v = 1; return deref(&v); }"
            ),
            vec![UbKind::CallWrongType]
        );
        // Matching base types are fine at any width…
        assert_eq!(
            kinds_of(
                "long deref(long *p) { return *p; } \
                 int main(void) { long v = 1; return deref(&v) == 1; }"
            ),
            vec![]
        );
        // …and `void *` still accepts (and provides) any object pointer.
        assert_eq!(
            kinds_of(
                "int take(void *p) { return p != 0; } \
                 int main(void) { long v = 1; return take(&v); }"
            ),
            vec![]
        );
    }

    #[test]
    fn scalar_arguments_convert_implicitly_at_any_width() {
        // Arithmetic-to-arithmetic argument passing is never a
        // constraint violation: the conversion is implicit (at worst
        // implementation-defined).
        assert_eq!(
            kinds_of(
                "int f(char c) { return c; } int g(long l) { return l == 0; } \
                 int main(void) { return f(300) + g(7); }"
            ),
            vec![]
        );
    }

    #[test]
    fn sizeof_constraints_are_static_findings() {
        // §6.5.3.4:1 — no sizeof of void or of a function designator.
        assert_eq!(
            kinds_of("int main(void) { return sizeof(void); }"),
            vec![UbKind::SizeofInvalidOperand]
        );
        assert_eq!(
            kinds_of("int f(void) { return 1; } int main(void) { return sizeof f; }"),
            vec![UbKind::SizeofInvalidOperand]
        );
        assert_eq!(
            kinds_of("void q(void) { return; } int main(void) { return sizeof(q()); }"),
            vec![UbKind::SizeofInvalidOperand]
        );
        // Ordinary sizeof uses are clean, and type as size_t.
        assert_eq!(
            kinds_of("int main(void) { int x = 1; return sizeof x == sizeof(int); }"),
            vec![]
        );
    }

    #[test]
    fn function_designators_do_not_convert_to_object_values() {
        assert_eq!(
            kinds_of("int f(void) { return 1; } int main(void) { int *p; p = f; return 0; }"),
            vec![UbKind::FunctionObjectPointerCast]
        );
        assert_eq!(
            kinds_of("int f(void) { return 1; } int main(void) { int *p = &f; return 0; }"),
            vec![UbKind::FunctionObjectPointerCast]
        );
        // A local may shadow the function name.
        assert_eq!(
            kinds_of("int f(void) { return 1; } int main(void) { int f = 2; return f; }"),
            vec![]
        );
    }

    #[test]
    fn constant_array_sizes_fold_at_translation_time() {
        assert_eq!(
            kinds_of("int dead(void) { int a[1 - 4]; return 0; }"),
            vec![UbKind::ArraySizeNotPositive]
        );
        assert_eq!(
            kinds_of("int dead(void) { int a[1 << 40]; return 0; }"),
            vec![UbKind::ShiftTooFar]
        );
        assert_eq!(
            kinds_of("int dead(void) { int a[1 / 0]; return 0; }"),
            vec![UbKind::DivisionByZero]
        );
        // VLAs stay dynamic.
        assert_eq!(
            kinds_of("int main(void) { int n = 0; int a[n]; return 0; }"),
            vec![]
        );
    }

    #[test]
    fn bare_return_in_main_is_static() {
        assert_eq!(
            kinds_of("int main(void) { return; }"),
            vec![UbKind::ReturnWithoutValue]
        );
        // In other value-returning functions the caller may ignore the
        // value, so the verdict stays dynamic.
        assert_eq!(
            kinds_of("int f(void) { return; } int main(void) { f(); return 0; }"),
            vec![]
        );
    }
}
