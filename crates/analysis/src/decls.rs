//! Translation-unit–level declaration and linkage rules.
//!
//! Everything here is decidable from the list of function definitions
//! alone: the subset has no separate declarations, so every definition is
//! also the prototype every other check sees.

use cundef_semantics::ast::{Function, TranslationUnit};
use cundef_semantics::ctype::IntTy;
use cundef_ub::{UbError, UbKind};

/// Run the declaration pass over a whole unit.
pub fn check(unit: &TranslationUnit, findings: &mut Vec<UbError>) {
    for (i, f) in unit.functions.iter().enumerate() {
        let name = unit.name_of(f);

        // §6.7.3:9 — a function type specified with type qualifiers.
        if f.fn_quals.any() {
            findings.push(
                UbError::new(UbKind::QualifiedFunctionType)
                    .at(f.loc)
                    .in_function(name)
                    .with_detail(format!("function type of `{name}` carries type qualifiers")),
            );
        }

        // §5.1.2.2.1:1 — `main` must be defined as `int main(void)` (the
        // `argc`/`argv` form is outside the subset, and nothing else is
        // documented by this implementation).
        if name == "main" {
            if f.returns_void || f.ret_ptr > 0 || f.ret_scalar != IntTy::Int {
                findings.push(nonstandard_main(f, "`main` must return `int`"));
            } else if !f.params.is_empty() {
                findings.push(nonstandard_main(
                    f,
                    "only `int main(void)` is documented by this implementation",
                ));
            } else if f.is_static {
                findings.push(nonstandard_main(f, "`main` declared `static`"));
            }
        }

        // Redefinitions: compare against the first definition of the
        // same name (the one the resolver's call table binds).
        if let Some(first) = unit.functions[..i].iter().find(|g| g.name == f.name) {
            let kind = if first.is_static != f.is_static {
                // §6.2.2:7 — the identifier appears with both internal
                // and external linkage in one translation unit.
                UbKind::MixedLinkage
            } else if !compatible_signatures(first, f) {
                // §6.7.6.3:15 / §6.7:3 — incompatible redeclaration.
                UbKind::IncompatibleRedeclaration
            } else {
                // §6.9:5 — more than one definition of the identifier.
                UbKind::DuplicateExternalDefinition
            };
            findings.push(
                UbError::new(kind)
                    .at(f.loc)
                    .in_function(name)
                    .with_detail(format!(
                        "`{name}` is already defined at line {}",
                        first.loc.line
                    )),
            );
        }
    }
}

fn nonstandard_main(f: &Function, detail: &str) -> UbError {
    UbError::new(UbKind::NonstandardMain)
        .at(f.loc)
        .in_function("main")
        .with_detail(detail)
}

/// Whether two definitions of one name declare compatible function types
/// (§6.7.6.3:15): same return shape (including the scalar width), same
/// parameter list.
fn compatible_signatures(a: &Function, b: &Function) -> bool {
    a.returns_void == b.returns_void
        && a.ret_ptr == b.ret_ptr
        && (a.returns_void || a.ret_scalar == b.ret_scalar)
        && a.params.len() == b.params.len()
        && a.params.iter().zip(&b.params).all(|(p, q)| p.ty == q.ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cundef_semantics::parser::parse;

    fn kinds_of(src: &str) -> Vec<UbKind> {
        let unit = parse(src).unwrap();
        let mut findings = Vec::new();
        check(&unit, &mut findings);
        findings.iter().map(|e| e.kind()).collect()
    }

    #[test]
    fn duplicate_definitions_are_flagged_by_flavor() {
        assert_eq!(
            kinds_of("int f(void) { return 1; } int f(void) { return 2; } int main(void) { return f(); }"),
            vec![UbKind::DuplicateExternalDefinition]
        );
        assert_eq!(
            kinds_of(
                "int f(void) { return 1; } int f(int x) { return x; } int main(void) { return 0; }"
            ),
            vec![UbKind::IncompatibleRedeclaration]
        );
        assert_eq!(
            kinds_of("static int f(void) { return 1; } int f(void) { return 2; } int main(void) { return 0; }"),
            vec![UbKind::MixedLinkage]
        );
    }

    #[test]
    fn nonstandard_main_signatures() {
        assert_eq!(
            kinds_of("void main(void) { return; }"),
            vec![UbKind::NonstandardMain]
        );
        assert_eq!(
            kinds_of("int main(int x) { return x; }"),
            vec![UbKind::NonstandardMain]
        );
        assert_eq!(
            kinds_of("static int main(void) { return 0; }"),
            vec![UbKind::NonstandardMain]
        );
        assert_eq!(kinds_of("int main(void) { return 0; }"), vec![]);
    }

    #[test]
    fn qualified_function_types_are_flagged() {
        assert_eq!(
            kinds_of("int f(void) const { return 1; } int main(void) { return 0; }"),
            vec![UbKind::QualifiedFunctionType]
        );
    }
}
