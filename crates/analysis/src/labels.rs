//! Label, `goto`, and `switch` constraints — the statement-level half of
//! the translation phase.
//!
//! The pass consumes the label/goto tables the resolver exported on each
//! [`Function`] (duplicate labels §6.8.1:3, `goto` to nowhere
//! §6.8.6.1:1) and walks the body once for everything positional:
//!
//! - `case`/`default` labels: constant-expression checking via
//!   [`cundef_semantics::consteval`] (§6.8.4.2:3 — non-constant labels,
//!   and undefined operations *inside* constant labels), duplicate case
//!   values, and duplicate `default`s per `switch`;
//! - jumps into the scope of a variably modified declaration: a `goto`
//!   whose target label sits in the scope of a VLA the goto itself is
//!   not in (§6.8.6.1:1, catalog entry 75), and a `case`/`default`
//!   label in the scope of a VLA declared inside the `switch` body
//!   (§6.8.4.2:2, catalog entry 76).

use cundef_semantics::ast::{Function, Stmt, StmtId, TranslationUnit};
use cundef_semantics::consteval::{const_eval, ConstStop};
use cundef_semantics::intern::Symbol;
use cundef_ub::{SourceLoc, UbError, UbKind};

/// Run the label pass over one function.
pub fn check(unit: &TranslationUnit, func: &Function, findings: &mut Vec<UbError>) {
    let fname = unit.name_of(func);

    // §6.8.1:3 — label names are unique within a function.
    let mut seen: Vec<Symbol> = Vec::new();
    for (sym, loc) in &func.labels {
        if seen.contains(sym) {
            findings.push(
                UbError::new(UbKind::DuplicateLabel)
                    .at(*loc)
                    .in_function(fname)
                    .with_detail(format!(
                        "label `{}` is already defined in `{fname}`",
                        unit.interner.resolve(*sym)
                    )),
            );
        } else {
            seen.push(*sym);
        }
    }

    // §6.8.6.1:1 — a goto names a label of the enclosing function.
    for (sym, loc) in &func.gotos {
        if !func.labels.iter().any(|(l, _)| l == sym) {
            findings.push(
                UbError::new(UbKind::UndeclaredLabel)
                    .at(*loc)
                    .in_function(fname)
                    .with_detail(format!(
                        "`goto {}` names no label in `{fname}`",
                        unit.interner.resolve(*sym)
                    )),
            );
        }
    }

    let mut w = LabelWalker {
        unit,
        fname,
        findings,
        vlas: Vec::new(),
        switches: Vec::new(),
        label_scopes: Vec::new(),
        goto_scopes: Vec::new(),
    };
    for &s in &func.body {
        w.stmt(s);
    }

    // §6.8.6.1:1 — the VLAs in scope at the label must all be in scope
    // at the goto; anything extra means the jump *enters* a VLA scope.
    let LabelWalker {
        label_scopes,
        goto_scopes,
        ..
    } = w;
    for (gsym, gloc, gset) in &goto_scopes {
        let Some((_, _, lset)) = label_scopes.iter().find(|(l, _, _)| l == gsym) else {
            continue; // UndeclaredLabel already reported
        };
        if let Some((_, vname)) = lset
            .iter()
            .find(|(slot, _)| !gset.iter().any(|(g, _)| g == slot))
        {
            findings.push(
                UbError::new(UbKind::JumpIntoVlaScope)
                    .at(*gloc)
                    .in_function(fname)
                    .with_detail(format!(
                        "`goto {}` jumps into the scope of variably modified `{}`",
                        unit.interner.resolve(*gsym),
                        unit.interner.resolve(*vname)
                    )),
            );
        }
    }
}

/// A variably modified declaration in scope: `(slot, name)`.
type Vla = (u32, Symbol);

/// A jump point (label or `goto`) with the VLA set in scope there.
type JumpScope = (Symbol, SourceLoc, Vec<Vla>);

/// One enclosing `switch` during the walk.
struct SwitchFrame {
    /// Depth of the VLA stack when the switch was entered: labels that
    /// see more VLAs than this sit inside a VLA scope the dispatch jump
    /// would enter.
    vla_base: usize,
    /// Case values (mathematical values of the folded constants) seen so
    /// far in this switch.
    seen: Vec<i128>,
    saw_default: bool,
}

struct LabelWalker<'a> {
    unit: &'a TranslationUnit,
    fname: &'a str,
    findings: &'a mut Vec<UbError>,
    /// Variably modified declarations currently in scope.
    vlas: Vec<Vla>,
    switches: Vec<SwitchFrame>,
    /// Each ordinary label with the VLA set in scope at its position.
    label_scopes: Vec<JumpScope>,
    /// Each `goto` with the VLA set in scope at its position.
    goto_scopes: Vec<JumpScope>,
}

impl<'a> LabelWalker<'a> {
    fn report(&mut self, kind: UbKind, loc: SourceLoc, detail: String) {
        self.findings.push(
            UbError::new(kind)
                .at(loc)
                .in_function(self.fname)
                .with_detail(detail),
        );
    }

    fn stmt(&mut self, s: StmtId) {
        match self.unit.stmt(s) {
            Stmt::Decl(d) => {
                if d.array_size.is_some() && !d.const_size {
                    self.vlas.push((d.slot.index() as u32, d.name));
                }
            }
            Stmt::Block(items, _) => {
                let mark = self.vlas.len();
                for &item in items {
                    self.stmt(item);
                }
                self.vlas.truncate(mark);
            }
            Stmt::If(_, then, els) => {
                self.stmt(*then);
                if let Some(els) = els {
                    self.stmt(*els);
                }
            }
            Stmt::While(_, body) => self.stmt(*body),
            Stmt::For(init, _, _, body) => {
                let mark = self.vlas.len();
                if let Some(init) = init {
                    self.stmt(*init);
                }
                self.stmt(*body);
                self.vlas.truncate(mark);
            }
            Stmt::Switch(_, body, _) => {
                self.switches.push(SwitchFrame {
                    vla_base: self.vlas.len(),
                    seen: Vec::new(),
                    saw_default: false,
                });
                let body = *body;
                self.stmt(body);
                self.switches.pop();
            }
            Stmt::Case(e, inner, loc) => {
                self.case_label(*e, *loc);
                self.check_label_vla(*loc, "case");
                self.stmt(*inner);
            }
            Stmt::Default(inner, loc) => {
                if let Some(frame) = self.switches.last_mut() {
                    if frame.saw_default {
                        let loc = *loc;
                        self.report(
                            UbKind::DuplicateCaseLabel,
                            loc,
                            "multiple `default` labels in one switch statement".into(),
                        );
                    } else {
                        frame.saw_default = true;
                    }
                }
                self.check_label_vla(*loc, "default");
                self.stmt(*inner);
            }
            Stmt::Label(sym, inner, loc) => {
                self.label_scopes.push((*sym, *loc, self.vlas.clone()));
                self.stmt(*inner);
            }
            Stmt::Goto(sym, loc) => self.goto_scopes.push((*sym, *loc, self.vlas.clone())),
            Stmt::Expr(_)
            | Stmt::Return(_, _)
            | Stmt::Break(_)
            | Stmt::Continue(_)
            | Stmt::Empty(_) => {}
        }
    }

    /// §6.8.4.2:3 — a case expression is an integer constant expression,
    /// distinct from every other case of the same switch. Duplicates are
    /// detected on the constants' mathematical values; the stricter
    /// "same value *after conversion* to the promoted controlling type"
    /// form (e.g. `case -1:` vs `case 4294967295u:` under an unsigned
    /// controlling expression) needs the controlling expression's static
    /// type, which this pass does not compute — such pairs are left to
    /// the evaluator, whose dispatch does convert (§6.8.4.2:5).
    fn case_label(&mut self, e: cundef_semantics::ast::ExprId, loc: SourceLoc) {
        match const_eval(self.unit, e) {
            Ok(v) => {
                let v = v.math();
                let dup = self
                    .switches
                    .last()
                    .is_some_and(|frame| frame.seen.contains(&v));
                if dup {
                    self.report(
                        UbKind::DuplicateCaseLabel,
                        loc,
                        format!("duplicate case label {v}"),
                    );
                } else if let Some(frame) = self.switches.last_mut() {
                    frame.seen.push(v);
                }
            }
            Err(ConstStop::NotConst(l)) => self.report(
                UbKind::NonConstantCaseLabel,
                l,
                "case label is not an integer constant expression".into(),
            ),
            Err(ConstStop::Ub {
                kind,
                detail,
                loc: l,
            }) => self.report(kind, l, format!("in a case label: {detail}")),
        }
    }

    /// §6.8.4.2:2 — a `case`/`default` label must not sit in the scope
    /// of a VLA declared inside the switch body: dispatching to it would
    /// jump into that scope.
    fn check_label_vla(&mut self, loc: SourceLoc, what: &str) {
        let Some(frame) = self.switches.last() else {
            return;
        };
        if self.vlas.len() > frame.vla_base {
            let (_, vname) = self.vlas[self.vlas.len() - 1];
            let name = self.unit.interner.resolve(vname).to_string();
            self.report(
                UbKind::JumpIntoVlaScope,
                loc,
                format!("`{what}` label lies in the scope of variably modified `{name}`"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cundef_semantics::parser::parse;

    fn kinds_of(src: &str) -> Vec<UbKind> {
        let unit = parse(src).unwrap();
        let mut findings = Vec::new();
        for f in &unit.functions {
            check(&unit, f, &mut findings);
        }
        findings.iter().map(|e| e.kind()).collect()
    }

    #[test]
    fn duplicate_and_undeclared_labels() {
        assert_eq!(
            kinds_of("int main(void) { x: ; x: ; return 0; }"),
            vec![UbKind::DuplicateLabel]
        );
        assert_eq!(
            kinds_of("int main(void) { goto nowhere; return 0; }"),
            vec![UbKind::UndeclaredLabel]
        );
        assert_eq!(
            kinds_of("int main(void) { goto out; out: return 0; }"),
            vec![]
        );
    }

    #[test]
    fn duplicate_and_non_constant_case_labels() {
        assert_eq!(
            kinds_of("int main(void) { switch (1) { case 2: ; case 1 + 1: ; } return 0; }"),
            vec![UbKind::DuplicateCaseLabel]
        );
        assert_eq!(
            kinds_of("int main(void) { switch (1) { default: ; default: ; } return 0; }"),
            vec![UbKind::DuplicateCaseLabel]
        );
        assert_eq!(
            kinds_of("int main(void) { int k = 1; switch (1) { case k: ; } return 0; }"),
            vec![UbKind::NonConstantCaseLabel]
        );
        // An undefined constant operation inside a case label carries
        // the arithmetic kind.
        assert_eq!(
            kinds_of("int main(void) { switch (1) { case 1 / 0: ; } return 0; }"),
            vec![UbKind::DivisionByZero]
        );
        // Distinct cases across distinct switches are fine.
        assert_eq!(
            kinds_of(
                "int main(void) { switch (1) { case 1: ; } switch (2) { case 1: ; } return 0; }"
            ),
            vec![]
        );
    }

    #[test]
    fn jumps_into_vla_scope() {
        // goto forward past a VLA declaration into its scope.
        assert_eq!(
            kinds_of(
                "int main(void) { int n = 2; goto in; { int a[n]; in: a[0] = 1; } return 0; }"
            ),
            vec![UbKind::JumpIntoVlaScope]
        );
        // switch dispatch over a VLA declared inside the body.
        assert_eq!(
            kinds_of(
                "int main(void) { int n = 2; switch (1) { int a[n]; case 1: return 0; } return 0; }"
            ),
            vec![UbKind::JumpIntoVlaScope]
        );
        // goto within the VLA's scope is fine.
        assert_eq!(
            kinds_of(
                "int main(void) { int n = 2; { int a[n]; goto in; in: a[0] = 1; } return 0; }"
            ),
            vec![]
        );
        // goto *out of* a VLA scope is fine too.
        assert_eq!(
            kinds_of("int main(void) { int n = 2; { int a[n]; goto out; } out: return 0; }"),
            vec![]
        );
    }
}
