//! The detector registry invariants: every `detected_by` link in the
//! §5.2.1 catalog must point at a checker that actually exists — the
//! translation-phase analyzer for static kinds, the evaluator for
//! dynamic ones. This test lives in the analysis crate because it is the
//! only place that can see both registries.

use cundef_analysis::{pass_for, static_checks};
use cundef_semantics::eval::detected_kinds;
use cundef_ub::{catalog, Detectability, UbKind};
use std::collections::BTreeSet;

fn analyzer_kinds() -> BTreeSet<UbKind> {
    static_checks().iter().map(|(k, _)| *k).collect()
}

fn evaluator_kinds() -> BTreeSet<UbKind> {
    detected_kinds().iter().copied().collect()
}

#[test]
fn every_link_points_at_an_existing_checker() {
    let analyzer = analyzer_kinds();
    let evaluator = evaluator_kinds();
    for e in catalog() {
        let Some(kind) = e.detected_by else { continue };
        assert!(
            analyzer.contains(&kind) || evaluator.contains(&kind),
            "catalog entry {} ({}) links {kind:?}, which no checker implements",
            e.id,
            e.std_ref
        );
    }
}

#[test]
fn static_entries_are_covered_at_translation_time() {
    // A statically detectable entry must be caught without running the
    // program: its kind needs a named analysis pass.
    let analyzer = analyzer_kinds();
    for e in catalog() {
        let Some(kind) = e.detected_by else { continue };
        if e.detect == Detectability::Static {
            assert!(
                analyzer.contains(&kind),
                "static catalog entry {} links {kind:?}, which has no analysis pass",
                e.id
            );
            assert!(pass_for(kind).is_some());
        }
    }
}

#[test]
fn every_static_kind_with_a_catalog_link_names_its_pass() {
    // The reverse direction: each Detectability::Static kind referenced
    // from the catalog resolves to exactly one of the analyzer's passes.
    for e in catalog() {
        let Some(kind) = e.detected_by else { continue };
        if kind.detectability() == Detectability::Static {
            assert!(
                pass_for(kind).is_some(),
                "static kind {kind:?} (entry {}) is not in static_checks()",
                e.id
            );
        }
    }
}

#[test]
fn dynamic_links_resolve_to_the_evaluator_or_constant_folding() {
    // Dynamic entries are the evaluator's job; a handful of dynamic
    // kinds are also constant-foldable and registered by the analyzer,
    // but that never substitutes for the evaluator on a kind the
    // evaluator claims.
    let evaluator = evaluator_kinds();
    let analyzer = analyzer_kinds();
    for e in catalog() {
        let Some(kind) = e.detected_by else { continue };
        if e.detect == Detectability::Dynamic {
            assert!(
                evaluator.contains(&kind) || analyzer.contains(&kind),
                "dynamic catalog entry {} links {kind:?}, which neither phase detects",
                e.id
            );
        }
    }
}

#[test]
fn registries_do_not_claim_unknown_kinds() {
    // Both registries only name kinds that exist in the taxonomy (true
    // by construction in Rust) and the analyzer's static claims line up
    // with detectability: every Detectability::Static kind in the
    // registry really is static.
    for (kind, pass) in static_checks() {
        if kind.detectability() == Detectability::Static {
            assert!(!pass.is_empty(), "{kind:?} registered without a pass name");
        } else {
            // Dynamic kinds in the analyzer must also be known to the
            // evaluator or be pure constant-folding/type-checking wins:
            // either way the pass name documents where they surface.
            assert!(
                matches!(*pass, "constexpr" | "types"),
                "dynamic kind {kind:?} registered under unexpected pass `{pass}`"
            );
        }
    }
}

#[test]
fn coverage_counts_meet_the_acceptance_bar() {
    // The bar ratchets up as coverage grows: 91 entries carried
    // `detected_by` links before the byte-addressable memory core
    // re-linked the representation-level kinds (MisalignedAccess,
    // AccessWrongEffectiveType), and a refactor must never silently shed
    // coverage.
    let linked: Vec<_> = catalog()
        .iter()
        .filter(|e| e.detected_by.is_some())
        .collect();
    assert!(linked.len() >= 93, "only {} links", linked.len());
    let static_covered = linked
        .iter()
        .filter(|e| e.detect == Detectability::Static)
        .count();
    assert!(static_covered >= 15, "only {static_covered} static links");
}
