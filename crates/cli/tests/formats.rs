//! End-to-end tests of the structured output formats.
//!
//! The render seam promises that `--format human`, `--format json`, and
//! `--format sarif` are three views of the *same* [`FileResult`]s: every
//! finding agrees across formats on (kind, file, line, column, detail),
//! sequential and `--batch` output are byte-identical, and both engines
//! render the same bytes. These tests pin that promise on every shipped
//! example, and consolidate the CLI exit-code contract (0 defined / 1
//! undefined / 2 engine failure or usage error) in one place.
//!
//! Running the binary here also exercises the location contract: the
//! test binary is a debug build, so [`FileResult::assert_real_locs`]
//! panics (exit != 0..=2, no verdict) on any `0:0` placeholder.

use cundef_ub::json::Json;
use cundef_ub::UbKind;
use std::path::PathBuf;
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    // crates/cli -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn cundef(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cundef"))
        .current_dir(workspace_root())
        .args(args)
        .output()
        .expect("binary should run")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

/// Every `examples/*.c`, workspace-relative, sorted.
fn all_examples() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(workspace_root().join("examples"))
        .expect("examples/ exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.ends_with(".c").then(|| format!("examples/{name}"))
        })
        .collect();
    files.sort();
    assert!(files.len() > 20, "expected the full example corpus");
    files
}

// --------------------------------------------------------------------
// The exit-code contract, consolidated
// --------------------------------------------------------------------

/// The documented contract: 0 — every file defined; 1 — undefined
/// behavior found in any file (wins over engine failures); 2 — engine
/// failure (unreadable file, unsupported input) or usage error, with
/// no undefinedness found.
#[test]
fn exit_code_contract() {
    // 0: a defined program, and a multi-file all-defined run.
    assert_eq!(cundef(&["examples/defined.c"]).status.code(), Some(0));
    assert_eq!(
        cundef(&["examples/defined.c", "examples/goto_loop.c"])
            .status
            .code(),
        Some(0)
    );

    // 1: undefined behavior, dynamic and static, single and batch.
    assert_eq!(cundef(&["examples/unsequenced.c"]).status.code(), Some(1));
    assert_eq!(cundef(&["examples/static_redecl.c"]).status.code(), Some(1));
    assert_eq!(
        cundef(&["--batch", "examples/defined.c", "examples/unsequenced.c"])
            .status
            .code(),
        Some(1)
    );

    // 2: engine failures — unreadable file, with and without clean
    // company.
    assert_eq!(cundef(&["examples/no_such_file.c"]).status.code(), Some(2));
    assert_eq!(
        cundef(&["examples/defined.c", "examples/no_such_file.c"])
            .status
            .code(),
        Some(2)
    );

    // 1 beats 2: undefinedness anywhere wins over an engine failure
    // elsewhere, in both drivers.
    for mode in [&[][..], &["--batch"][..]] {
        let mut args = mode.to_vec();
        args.extend(["examples/no_such_file.c", "examples/unsequenced.c"]);
        assert_eq!(cundef(&args).status.code(), Some(1), "mode {mode:?}");
    }

    // 2: usage errors — no files, unknown flag, bad flag values.
    assert_eq!(cundef(&[]).status.code(), Some(2));
    assert_eq!(cundef(&["--nonsense"]).status.code(), Some(2));
    assert_eq!(
        cundef(&["--format", "yaml", "examples/defined.c"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        cundef(&["--engine", "jit", "examples/defined.c"])
            .status
            .code(),
        Some(2)
    );

    // The contract holds in every format: the verdict drives the code,
    // not the renderer.
    for format in ["human", "json", "sarif"] {
        assert_eq!(
            cundef(&["--format", format, "examples/defined.c"])
                .status
                .code(),
            Some(0),
            "format {format}"
        );
        assert_eq!(
            cundef(&["--format", format, "examples/unsequenced.c"])
                .status
                .code(),
            Some(1),
            "format {format}"
        );
        assert_eq!(
            cundef(&["--format", format, "examples/no_such_file.c"])
                .status
                .code(),
            Some(2),
            "format {format}"
        );
    }
}

/// `--fail-on` moves the exit threshold without touching reports:
/// `ub` (default) is the historical contract above, `error` fails only
/// on engine failures, `never` always exits 0 — identically for
/// one-shot and `--batch` drivers.
#[test]
fn fail_on_exit_thresholds() {
    for mode in [&[][..], &["--batch"][..]] {
        let run = |fail_on: &str, files: &[&str]| {
            let mut args = mode.to_vec();
            args.extend(["--fail-on", fail_on]);
            args.extend(files);
            cundef(&args).status.code()
        };
        // Undefined file: ub -> 1, error demotes to 0, never -> 0.
        assert_eq!(run("ub", &["examples/unsequenced.c"]), Some(1), "{mode:?}");
        assert_eq!(
            run("error", &["examples/unsequenced.c"]),
            Some(0),
            "{mode:?}"
        );
        assert_eq!(
            run("never", &["examples/unsequenced.c"]),
            Some(0),
            "{mode:?}"
        );
        // Engine failure: ub and error both -> 2, never -> 0.
        assert_eq!(run("ub", &["examples/no_such_file.c"]), Some(2), "{mode:?}");
        assert_eq!(
            run("error", &["examples/no_such_file.c"]),
            Some(2),
            "{mode:?}"
        );
        assert_eq!(
            run("never", &["examples/no_such_file.c"]),
            Some(0),
            "{mode:?}"
        );
        // Mixed UB + failure: under `error` the failure resurfaces (UB
        // no longer masks it); under `ub` the historical 1 wins.
        let mixed = &["examples/no_such_file.c", "examples/unsequenced.c"][..];
        assert_eq!(run("ub", mixed), Some(1), "{mode:?}");
        assert_eq!(run("error", mixed), Some(2), "{mode:?}");
        assert_eq!(run("never", mixed), Some(0), "{mode:?}");
    }

    // The report itself is unaffected by the threshold.
    let loud = cundef(&["examples/unsequenced.c"]);
    let demoted = cundef(&["--fail-on", "never", "examples/unsequenced.c"]);
    assert_eq!(stdout_of(&loud), stdout_of(&demoted));
    assert_eq!(stderr_of(&loud), stderr_of(&demoted));

    // Usage errors are never demoted — they always exit 2.
    assert_eq!(
        cundef(&["--fail-on", "never", "--nonsense"]).status.code(),
        Some(2)
    );
    assert_eq!(
        cundef(&["--fail-on", "warnings", "examples/defined.c"])
            .status
            .code(),
        Some(2),
        "unknown threshold is a usage error"
    );
}

/// `--batch` checks duplicate paths once and replays the result: the
/// output is byte-identical to the sequential run over the same
/// (repeated) inputs, in every format.
#[test]
fn batch_dedups_duplicate_paths() {
    let files = [
        "examples/unsequenced.c",
        "examples/defined.c",
        "examples/unsequenced.c",
        "examples/unsequenced.c",
        "examples/defined.c",
    ];
    for format in ["human", "json", "sarif"] {
        let mut sequential = vec!["--format", format];
        sequential.extend(files);
        let mut batch = vec!["--batch", "--format", format];
        batch.extend(files);
        let seq_out = cundef(&sequential);
        let batch_out = cundef(&batch);
        assert_eq!(
            stdout_of(&seq_out),
            stdout_of(&batch_out),
            "format {format}: dedup replay must be byte-identical"
        );
        assert_eq!(seq_out.status.code(), batch_out.status.code());
    }
}

// --------------------------------------------------------------------
// Cross-format parity
// --------------------------------------------------------------------

/// A finding as seen through one format, normalized for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    file: String,
    code: u32,
    line: u32,
    detail: Option<String>,
    function: Option<String>,
}

/// Parse the human format's kcc-style error blocks.
fn human_findings(stdout: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut file = String::new();
    let mut cur: Option<Finding> = None;
    let field = |line: &str, key: &str| line.strip_prefix(key).map(str::to_string);
    for line in stdout.lines() {
        if let Some(f) = line.strip_suffix(':') {
            if !line.contains(' ') {
                file = f.to_string();
            }
        } else if line == "ERROR! KCC encountered an error." {
            cur = Some(Finding {
                file: file.clone(),
                code: 0,
                line: 0,
                detail: None,
                function: None,
            });
        } else if let Some(cur) = cur.as_mut() {
            if let Some(code) = field(line, "Error: ") {
                cur.code = code.parse().expect("numeric code");
            } else if let Some(detail) = field(line, "Detail: ") {
                cur.detail = Some(detail);
            } else if let Some(function) = field(line, "Function: ") {
                cur.function = Some(function);
            } else if let Some(l) = field(line, "Line: ") {
                cur.line = l.parse().expect("numeric line");
            }
        }
        // A block is complete once its trailing `Line:` has been seen;
        // flush lazily when the next block (or EOF) arrives.
        if cur.as_ref().is_some_and(|c| c.line != 0) {
            findings.push(cur.take().unwrap());
        }
    }
    findings
}

/// Parse `--format json` stdout; returns findings plus every
/// (file, verdict) pair, asserting the column contract along the way.
fn json_findings(stdout: &str) -> (Vec<Finding>, Vec<(String, String)>) {
    let mut findings = Vec::new();
    let mut verdicts = Vec::new();
    for line in stdout.lines() {
        let v = Json::parse(line).unwrap_or_else(|| panic!("bad JSONL line {line:?}"));
        let ty = v.get("type").and_then(Json::as_str).expect("typed event");
        let file = v
            .get("file")
            .and_then(Json::as_str)
            .expect("every event names its file")
            .to_string();
        match ty {
            "finding" => {
                let line_no = v.get("line").and_then(Json::as_u32).expect("line");
                let column = v.get("column").and_then(Json::as_u32).expect("column");
                assert!(line_no >= 1, "{file}: placeholder line");
                assert!(column >= 1, "{file}: placeholder column");
                // The JSON kind/code pair must be internally consistent
                // with the Rust catalog.
                let code = v.get("code").and_then(Json::as_u32).expect("code");
                if let Some(kind) = v.get("kind").and_then(Json::as_str) {
                    let known = UbKind::ALL
                        .iter()
                        .find(|k| format!("{k:?}") == kind)
                        .unwrap_or_else(|| panic!("unknown kind {kind}"));
                    assert_eq!(u32::from(known.code()), code, "kind/code drift");
                }
                findings.push(Finding {
                    file,
                    code,
                    line: line_no,
                    detail: v.get("detail").and_then(Json::as_str).map(str::to_string),
                    function: v.get("function").and_then(Json::as_str).map(str::to_string),
                });
            }
            "verdict" => verdicts.push((
                file,
                v.get("verdict")
                    .and_then(Json::as_str)
                    .expect("verdict string")
                    .to_string(),
            )),
            "note" | "error" => {}
            other => panic!("unexpected event type {other}"),
        }
    }
    (findings, verdicts)
}

/// Parse a SARIF document; returns error-level results as findings
/// (note-level results are conversion notes, not findings) plus the
/// per-finding columns for the JSON-vs-SARIF column check.
fn sarif_findings(stdout: &str) -> (Vec<Finding>, Vec<u32>) {
    let doc = Json::parse(stdout).expect("SARIF must be one valid JSON document");
    let run = &doc.get("runs").and_then(Json::as_arr).expect("runs")[0];
    let mut findings = Vec::new();
    let mut columns = Vec::new();
    for res in run.get("results").and_then(Json::as_arr).expect("results") {
        if res.get("level").and_then(Json::as_str) == Some("note") {
            continue;
        }
        let rule_id = res.get("ruleId").and_then(Json::as_str).expect("ruleId");
        let code: u32 = rule_id
            .strip_prefix("UB")
            .expect("UBnnnnn rule id")
            .parse()
            .expect("numeric rule id");
        let loc = &res
            .get("locations")
            .and_then(Json::as_arr)
            .expect("locations")[0];
        let phys = loc.get("physicalLocation").expect("physicalLocation");
        let file = phys
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .expect("uri")
            .to_string();
        let region = phys.get("region").expect("findings carry a region");
        let line = region
            .get("startLine")
            .and_then(Json::as_u32)
            .expect("startLine");
        let column = region
            .get("startColumn")
            .and_then(Json::as_u32)
            .expect("startColumn");
        assert!(line >= 1 && column >= 1, "{file}: placeholder region");
        let function = loc
            .get("logicalLocations")
            .and_then(Json::as_arr)
            .and_then(|l| l[0].get("name"))
            .and_then(Json::as_str)
            .map(str::to_string);
        findings.push(Finding {
            file,
            code,
            line,
            detail: res
                .get("properties")
                .and_then(|p| p.get("detail"))
                .and_then(Json::as_str)
                .map(str::to_string),
            function,
        });
        columns.push(column);
    }
    (findings, columns)
}

/// On every example, under both engines: the three formats agree on
/// every finding's (kind/code, file, line, detail, function), JSON and
/// SARIF agree on column, and the JSON verdict matches what the human
/// format implies. This is also the SourceLoc audit: every structured
/// location must be ≥ 1:1, and the debug-build renderer asserts it.
#[test]
fn formats_agree_on_every_example() {
    for engine in ["tree", "bytecode"] {
        for file in all_examples() {
            let human = cundef(&["--engine", engine, &file]);
            let json = cundef(&["--engine", engine, "--format", "json", &file]);
            let sarif = cundef(&["--engine", engine, "--format", "sarif", &file]);
            assert_eq!(
                human.status.code(),
                json.status.code(),
                "{file}: exit drift human vs json"
            );
            assert_eq!(
                human.status.code(),
                sarif.status.code(),
                "{file}: exit drift human vs sarif"
            );

            let hf = human_findings(&stdout_of(&human));
            let (jf, verdicts) = json_findings(&stdout_of(&json));
            let (sf, s_columns) = sarif_findings(&stdout_of(&sarif));
            assert_eq!(hf, jf, "{file} ({engine}): human vs json findings");
            assert_eq!(jf, sf, "{file} ({engine}): json vs sarif findings");
            assert_eq!(s_columns.len(), jf.len());

            // Exactly one verdict per file, consistent with the human
            // view: findings ⇔ undefined, exit code 2 ⇔ error.
            assert_eq!(verdicts.len(), 1, "{file}: one verdict record");
            let expected = match human.status.code() {
                Some(0) => "defined",
                Some(1) => "undefined",
                Some(2) => "error",
                other => panic!("{file}: unexpected exit {other:?}"),
            };
            assert_eq!(verdicts[0].1, expected, "{file} ({engine}): verdict");
            assert_eq!(verdicts[0].0, file);
            assert_eq!((expected == "undefined"), !jf.is_empty(), "{file}");
        }
    }
}

/// JSON columns equal SARIF columns finding-for-finding (the human
/// format does not print columns, so the two structured formats pin
/// each other).
#[test]
fn structured_columns_agree() {
    let files = all_examples();
    let args: Vec<&str> = files.iter().map(String::as_str).collect();
    let mut json_args = vec!["--format", "json"];
    json_args.extend(&args);
    let mut sarif_args = vec!["--format", "sarif"];
    sarif_args.extend(&args);
    let (jf, _) = json_findings(&stdout_of(&cundef(&json_args)));
    let json_columns: Vec<u32> = {
        // Re-parse columns in order; `json_findings` already asserted
        // they are ≥ 1.
        stdout_of(&cundef(&json_args))
            .lines()
            .filter_map(|l| {
                let v = Json::parse(l)?;
                (v.get("type").and_then(Json::as_str) == Some("finding"))
                    .then(|| v.get("column").and_then(Json::as_u32).unwrap())
            })
            .collect()
    };
    let (sf, sarif_columns) = sarif_findings(&stdout_of(&cundef(&sarif_args)));
    assert_eq!(jf, sf, "multi-file findings agree");
    assert_eq!(json_columns, sarif_columns, "columns agree");
    assert!(!json_columns.is_empty(), "the corpus has findings");
}

// --------------------------------------------------------------------
// Batch and engine byte-identity per format
// --------------------------------------------------------------------

/// For every format, `--batch` stdout is byte-identical to sequential
/// stdout over the full example corpus.
#[test]
fn batch_output_is_byte_identical_per_format() {
    let files = all_examples();
    for format in ["human", "json", "sarif"] {
        let mut seq_args = vec!["--format", format];
        seq_args.extend(files.iter().map(String::as_str));
        let mut batch_args = vec!["--format", format, "--batch", "--jobs", "4"];
        batch_args.extend(files.iter().map(String::as_str));
        let seq = cundef(&seq_args);
        let batch = cundef(&batch_args);
        assert_eq!(
            stdout_of(&seq),
            stdout_of(&batch),
            "format {format}: batch stdout differs from sequential"
        );
        assert_eq!(seq.status.code(), batch.status.code(), "format {format}");
    }
}

/// For the structured formats, the tree-walker and the bytecode VM
/// produce byte-identical output on every example (the human-format
/// counterpart lives in `cli.rs`).
#[test]
fn engines_render_identical_structured_output() {
    for format in ["json", "sarif"] {
        for file in all_examples() {
            let tree = cundef(&["--engine", "tree", "--format", format, &file]);
            let vm = cundef(&["--engine", "bytecode", "--format", format, &file]);
            assert_eq!(
                stdout_of(&tree),
                stdout_of(&vm),
                "{file}: engines disagree under --format {format}"
            );
        }
    }
}

// --------------------------------------------------------------------
// SARIF document structure
// --------------------------------------------------------------------

/// The SARIF document carries the full rule catalog and well-formed
/// result records, whatever the mix of verdicts.
#[test]
fn sarif_document_structure() {
    let files = all_examples();
    let mut args = vec!["--format", "sarif"];
    args.extend(files.iter().map(String::as_str));
    let out = cundef(&args);
    let doc = Json::parse(&stdout_of(&out)).expect("valid JSON");
    assert_eq!(
        doc.get("$schema").and_then(Json::as_str),
        Some(cundef_ub::render::SARIF_SCHEMA_URI)
    );
    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let run = &doc.get("runs").and_then(Json::as_arr).expect("runs")[0];
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("driver");
    assert_eq!(driver.get("name").and_then(Json::as_str), Some("cundef"));
    let rules = driver.get("rules").and_then(Json::as_arr).expect("rules");
    assert_eq!(
        rules.len(),
        UbKind::ALL.len(),
        "one reporting rule per detectable kind"
    );
    // Every result's ruleId resolves into the rules array, and its
    // ruleIndex points at that very rule.
    let rule_ids: Vec<&str> = rules
        .iter()
        .map(|r| r.get("id").and_then(Json::as_str).expect("rule id"))
        .collect();
    for res in run.get("results").and_then(Json::as_arr).expect("results") {
        let Some(rule_id) = res.get("ruleId").and_then(Json::as_str) else {
            continue; // note-level results carry no rule
        };
        let index = res
            .get("ruleIndex")
            .and_then(Json::as_u32)
            .expect("ruleIndex") as usize;
        assert_eq!(rule_ids[index], rule_id, "ruleIndex points at ruleId");
    }
    // The corpus contains an unreadable-free, undefined-heavy mix, so
    // the invocation must report success and plenty of results.
    let inv = &run
        .get("invocations")
        .and_then(Json::as_arr)
        .expect("invocations")[0];
    assert_eq!(inv.get("executionSuccessful"), Some(&Json::Bool(true)));
}

// --------------------------------------------------------------------
// --stats and --profile telemetry
// --------------------------------------------------------------------

/// `--stats` reports phase timings on stderr without disturbing
/// stdout; `--stats=json` emits machine-readable records; multi-file
/// runs add an aggregate.
#[test]
fn stats_report_phases_on_stderr() {
    let plain = cundef(&["examples/defined.c"]);
    let stats = cundef(&["--stats", "examples/defined.c"]);
    assert_eq!(stdout_of(&plain), stdout_of(&stats), "stdout undisturbed");
    let err = stderr_of(&stats);
    assert!(
        err.contains("examples/defined.c: stats: read "),
        "missing stats line: {err}"
    );
    for phase in [
        "lex ", "parse ", "resolve ", "analyze ", "compile ", "execute ", "total ",
    ] {
        assert!(err.contains(phase), "missing phase {phase}: {err}");
    }

    // JSON stats: every record parses, names its file, and the
    // aggregate (file: null) covers both files.
    let two = cundef(&["--stats=json", "examples/defined.c", "examples/goto_loop.c"]);
    let mut per_file = 0;
    let mut aggregate = 0;
    for line in stderr_of(&two).lines() {
        let v = Json::parse(line).unwrap_or_else(|| panic!("bad stats line {line:?}"));
        assert_eq!(v.get("type").and_then(Json::as_str), Some("stats"));
        let total = v.get("total_ns").and_then(Json::as_f64).expect("total_ns");
        assert!(total > 0.0);
        match v.get("file").and_then(Json::as_str) {
            Some(_) => per_file += 1,
            None => {
                aggregate += 1;
                assert_eq!(v.get("files").and_then(Json::as_u32), Some(2));
            }
        }
    }
    assert_eq!(per_file, 2);
    assert_eq!(aggregate, 1);
}

/// `--profile` reports nonzero VM counters on stderr for an executed
/// program, and is silent when off.
#[test]
fn profile_reports_nonzero_counters() {
    let plain = cundef(&["examples/defined.c"]);
    assert!(
        !stderr_of(&plain).contains("profile:"),
        "profiling must be off by default"
    );
    let out = cundef(&["--profile", "examples/defined.c"]);
    assert_eq!(stdout_of(&plain), stdout_of(&out), "stdout undisturbed");
    let err = stderr_of(&out);
    let field = |key: &str| -> u64 {
        let tail = err
            .split(key)
            .nth(1)
            .unwrap_or_else(|| panic!("missing `{key}` in: {err}"));
        tail.split(|c: char| !c.is_ascii_digit())
            .next()
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no number after `{key}` in: {err}"))
    };
    assert!(field("steps ") > 0, "steps counted: {err}");
    assert!(field("ops ") > 0, "ops counted: {err}");
    assert!(
        field("superinstruction hits ") > 0,
        "fusion observed: {err}"
    );
    assert!(err.contains("word fast-path"), "{err}");
    assert!(err.contains("footprint elision"), "{err}");
    assert!(err.contains("top ops:"), "{err}");
    assert!(field("objects ") > 0, "allocations observed: {err}");
    assert!(field("peak live bytes ") > 0, "{err}");
}
