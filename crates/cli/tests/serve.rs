//! End-to-end tests of `cundef serve` over the stdin-JSONL transport.
//!
//! The daemon's contract: a serve response's rendered bytes are
//! **byte-identical** to what a one-shot `cundef` run prints for the
//! same file and options — in every format, for both engines, whether
//! the answer came from a cold check, a warm unit reuse, or a full
//! cache hit. These tests pin that contract over the whole example
//! corpus, plus the cache semantics themselves: repeats hit, one-byte
//! mutations invalidate, option fingerprints never cross-contaminate,
//! and eviction under a tiny capacity changes performance, not answers.
//!
//! Cache-outcome assertions run the daemon with `--jobs 1`: with
//! parallel workers two identical in-flight requests can race to a
//! double miss (benign — both compute the same bytes), so outcome
//! labels are only deterministic single-threaded.

use cundef_ub::json::Json;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn cundef(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cundef"))
        .current_dir(workspace_root())
        .args(args)
        .output()
        .expect("binary should run")
}

/// Run `cundef serve` with `args`, feed `input` JSONL on stdin, and
/// return the response lines (the trailing shutdown line included).
fn serve(args: &[&str], input: &str) -> Vec<Json> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cundef"))
        .current_dir(workspace_root())
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon should spawn");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon should exit");
    assert_eq!(out.status.code(), Some(0), "daemon exit: {out:?}");
    String::from_utf8(out.stdout)
        .expect("stdout is UTF-8")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|| panic!("response line is JSON: {l}")))
        .collect()
}

fn field<'a>(v: &'a Json, key: &str) -> &'a Json {
    v.get(key)
        .unwrap_or_else(|| panic!("field `{key}` in {v:?}"))
}

fn str_field<'a>(v: &'a Json, key: &str) -> &'a str {
    field(v, key).as_str().expect("string field")
}

fn num_field(v: &Json, key: &str) -> u64 {
    field(v, key).as_f64().expect("number field") as u64
}

/// Every `examples/*.c`, workspace-relative, sorted.
fn all_examples() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(workspace_root().join("examples"))
        .expect("examples/ exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.ends_with(".c").then(|| format!("examples/{name}"))
        })
        .collect();
    files.sort();
    assert!(files.len() > 20, "expected the full example corpus");
    files
}

// --------------------------------------------------------------------
// Parity: serve responses == one-shot output, everywhere
// --------------------------------------------------------------------

/// Over every example and every format, a serve response carries
/// exactly the stdout, stderr, and exit code of a one-shot run — both
/// cold and as a cache hit.
#[test]
fn serve_parity_all_examples_all_formats() {
    let examples = all_examples();
    let mut input = String::new();
    let mut expected = Vec::new();
    for format in ["human", "json", "sarif"] {
        for file in &examples {
            // Two passes per (file, format): the second must answer
            // from the cache with the same bytes.
            for _ in 0..2 {
                input.push_str(&format!(
                    "{{\"path\": \"{file}\", \"format\": \"{format}\"}}\n"
                ));
            }
            expected.push((file.clone(), format, cundef(&["--format", format, file])));
        }
    }
    input.push_str("{\"cmd\": \"shutdown\"}\n");
    let responses = serve(&["--jobs", "1"], &input);
    assert_eq!(responses.len(), examples.len() * 3 * 2 + 1);
    for (i, (file, format, one_shot)) in expected.iter().enumerate() {
        let cold = &responses[i * 2];
        let warm = &responses[i * 2 + 1];
        let want_stdout = String::from_utf8(one_shot.stdout.clone()).unwrap();
        let want_stderr = String::from_utf8(one_shot.stderr.clone()).unwrap();
        let want_exit = one_shot.status.code().expect("one-shot exit") as u64;
        for (pass, resp) in [("cold", cold), ("warm", warm)] {
            assert_eq!(
                str_field(resp, "stdout"),
                want_stdout,
                "{file} ({format}, {pass}) stdout diverges from one-shot"
            );
            assert_eq!(
                str_field(resp, "stderr"),
                want_stderr,
                "{file} ({format}, {pass}) stderr diverges from one-shot"
            );
            assert_eq!(
                num_field(resp, "exit"),
                want_exit,
                "{file} ({format}, {pass})"
            );
        }
        assert_eq!(
            str_field(warm, "cache"),
            "hit",
            "{file} ({format}) warm pass"
        );
    }
}

/// Engine choice is part of the cache fingerprint: the same file under
/// `tree` after `bytecode` is a warm unit reuse (never a cross-engine
/// result hit), and both render the engine-parity bytes.
#[test]
fn serve_engine_fingerprint_isolation() {
    let input = "\
        {\"path\": \"examples/unsequenced.c\", \"engine\": \"bytecode\"}\n\
        {\"path\": \"examples/unsequenced.c\", \"engine\": \"tree\"}\n\
        {\"cmd\": \"shutdown\"}\n";
    let responses = serve(&["--jobs", "1"], input);
    assert_eq!(str_field(&responses[0], "cache"), "miss");
    assert_eq!(
        str_field(&responses[1], "cache"),
        "warm",
        "same content, new options: frontend skipped, check re-run"
    );
    assert_eq!(
        str_field(&responses[0], "stdout"),
        str_field(&responses[1], "stdout"),
        "engine parity holds through the service path"
    );
}

/// `--phase` is fingerprinted too, and each response matches the
/// corresponding one-shot phase run byte for byte.
#[test]
fn serve_phase_fingerprint_isolation() {
    let file = "examples/unsequenced.c";
    let input = format!(
        "{{\"path\": \"{file}\", \"phase\": \"translation\"}}\n\
         {{\"path\": \"{file}\"}}\n\
         {{\"path\": \"{file}\", \"phase\": \"translation\"}}\n\
         {{\"cmd\": \"shutdown\"}}\n"
    );
    let responses = serve(&["--jobs", "1"], &input);
    let translation = cundef(&["--phase", "translation", file]);
    let full = cundef(&[file]);
    assert_eq!(
        str_field(&responses[0], "stdout"),
        String::from_utf8(translation.stdout).unwrap()
    );
    assert_eq!(
        str_field(&responses[1], "stdout"),
        String::from_utf8(full.stdout).unwrap()
    );
    // Different fingerprints never cross-contaminate: the translation
    // result was cached under its own key and replays as a hit, while
    // the default-phase request in between was a separate entry.
    assert_eq!(str_field(&responses[0], "cache"), "miss");
    assert_eq!(str_field(&responses[1], "cache"), "warm");
    assert_eq!(str_field(&responses[2], "cache"), "hit");
    assert_eq!(
        str_field(&responses[0], "stdout"),
        str_field(&responses[2], "stdout")
    );
}

// --------------------------------------------------------------------
// Cache semantics
// --------------------------------------------------------------------

/// A one-byte mutation of inline source invalidates: the mutated
/// request misses and reports its own (different) verdict.
#[test]
fn serve_mutation_invalidates() {
    let input = "\
        {\"source\": \"int main(void) { return 0; }\", \"path\": \"a.c\"}\n\
        {\"source\": \"int main(void) { return 1; }\", \"path\": \"a.c\"}\n\
        {\"source\": \"int main(void) { return 0; }\", \"path\": \"a.c\"}\n\
        {\"cmd\": \"shutdown\"}\n";
    let responses = serve(&["--jobs", "1"], input);
    assert_eq!(str_field(&responses[0], "cache"), "miss");
    assert_eq!(
        str_field(&responses[1], "cache"),
        "miss",
        "one changed byte must flip the content hash"
    );
    assert_eq!(str_field(&responses[2], "cache"), "hit");
    assert!(str_field(&responses[0], "stdout").contains("program returned 0"));
    assert!(str_field(&responses[1], "stdout").contains("program returned 1"));
    assert_eq!(
        str_field(&responses[0], "stdout"),
        str_field(&responses[2], "stdout")
    );
}

/// The same bytes under a different label replay from the cache, with
/// the response rendered under the *request's* path.
#[test]
fn serve_hit_rewrites_path() {
    let input = "\
        {\"source\": \"int main(void) { return 7; }\", \"path\": \"first.c\"}\n\
        {\"source\": \"int main(void) { return 7; }\", \"path\": \"second.c\"}\n\
        {\"cmd\": \"shutdown\"}\n";
    let responses = serve(&["--jobs", "1"], input);
    assert_eq!(str_field(&responses[1], "cache"), "hit");
    assert!(str_field(&responses[0], "stdout").starts_with("first.c:"));
    assert!(str_field(&responses[1], "stdout").starts_with("second.c:"));
}

/// Under `--cache-capacity 1`, alternating files evict each other —
/// every request misses, and the answers stay byte-identical.
#[test]
fn serve_eviction_stays_correct() {
    let a = "examples/defined.c";
    let b = "examples/unsequenced.c";
    let input = format!(
        "{{\"path\": \"{a}\"}}\n{{\"path\": \"{b}\"}}\n{{\"path\": \"{a}\"}}\n\
         {{\"path\": \"{b}\"}}\n{{\"cmd\": \"stats\"}}\n{{\"cmd\": \"shutdown\"}}\n"
    );
    let responses = serve(&["--jobs", "1", "--cache-capacity", "1"], &input);
    for (i, want) in ["miss", "miss", "miss", "miss"].iter().enumerate() {
        assert_eq!(str_field(&responses[i], "cache"), *want, "request {i}");
    }
    assert_eq!(
        str_field(&responses[0], "stdout"),
        str_field(&responses[2], "stdout"),
        "evicted-and-recomputed result is byte-identical"
    );
    assert_eq!(
        str_field(&responses[1], "stdout"),
        str_field(&responses[3], "stdout")
    );
    let stats = &responses[4];
    let results = field(stats, "results");
    assert_eq!(num_field(results, "entries"), 1);
    assert_eq!(num_field(results, "capacity"), 1);
    assert!(
        num_field(results, "evictions") >= 2,
        "tiny cache must evict"
    );
}

/// `{"cmd": "stats"}` is a barrier: it reflects exactly the requests
/// that preceded it on stdin, so counters are deterministic.
#[test]
fn serve_stats_deterministic() {
    let input = "\
        {\"path\": \"examples/defined.c\"}\n\
        {\"path\": \"examples/defined.c\"}\n\
        {\"path\": \"examples/unsequenced.c\"}\n\
        {\"cmd\": \"stats\"}\n\
        {\"cmd\": \"shutdown\"}\n";
    let responses = serve(&["--jobs", "1"], input);
    let stats = &responses[3];
    assert_eq!(str_field(stats, "type"), "stats");
    assert_eq!(num_field(stats, "requests"), 3);
    assert_eq!(num_field(stats, "full_hits"), 1);
    assert_eq!(num_field(stats, "cold_misses"), 2);
    assert_eq!(num_field(stats, "uncached"), 0);
}

// --------------------------------------------------------------------
// Per-request fail_on, error envelopes
// --------------------------------------------------------------------

/// `fail_on` maps the same verdict to different exit codes without
/// touching the rendered report.
#[test]
fn serve_fail_on_thresholds() {
    let file = "examples/unsequenced.c"; // undefined
    let input = format!(
        "{{\"path\": \"{file}\"}}\n\
         {{\"path\": \"{file}\", \"fail_on\": \"error\"}}\n\
         {{\"path\": \"{file}\", \"fail_on\": \"never\"}}\n\
         {{\"path\": \"no/such/file.c\"}}\n\
         {{\"path\": \"no/such/file.c\", \"fail_on\": \"never\"}}\n\
         {{\"cmd\": \"shutdown\"}}\n"
    );
    let responses = serve(&["--jobs", "1"], &input);
    assert_eq!(str_field(&responses[0], "verdict"), "undefined");
    assert_eq!(num_field(&responses[0], "exit"), 1);
    assert_eq!(
        num_field(&responses[1], "exit"),
        0,
        "fail_on=error demotes UB"
    );
    assert_eq!(num_field(&responses[2], "exit"), 0);
    assert_eq!(
        str_field(&responses[0], "stdout"),
        str_field(&responses[1], "stdout"),
        "fail_on changes the exit code, never the report"
    );
    assert_eq!(str_field(&responses[3], "verdict"), "error");
    assert_eq!(num_field(&responses[3], "exit"), 2);
    assert_eq!(str_field(&responses[3], "cache"), "uncached");
    assert_eq!(num_field(&responses[4], "exit"), 0);
}

/// Malformed lines and unknown commands get error envelopes; the
/// daemon keeps serving afterwards.
#[test]
fn serve_error_envelopes() {
    let input = "\
        this is not json\n\
        {\"cmd\": \"frobnicate\"}\n\
        {\"id\": 9}\n\
        {\"path\": \"examples/defined.c\", \"id\": 10}\n\
        {\"cmd\": \"shutdown\"}\n";
    let responses = serve(&["--jobs", "1"], input);
    assert_eq!(str_field(&responses[0], "type"), "error");
    assert_eq!(str_field(&responses[1], "type"), "error");
    assert_eq!(str_field(&responses[2], "type"), "error");
    assert_eq!(num_field(&responses[2], "id"), 9, "id echoes on errors");
    assert_eq!(str_field(&responses[3], "type"), "response");
    assert_eq!(num_field(&responses[3], "id"), 10);
    assert_eq!(str_field(&responses[3], "verdict"), "defined");
}

/// Responses come back in request order even when many requests are in
/// flight across parallel workers.
#[test]
fn serve_responses_in_request_order() {
    let mut input = String::new();
    for i in 0..40 {
        let file = if i % 2 == 0 {
            "examples/defined.c"
        } else {
            "examples/unsequenced.c"
        };
        input.push_str(&format!("{{\"path\": \"{file}\", \"id\": {i}}}\n"));
    }
    input.push_str("{\"cmd\": \"shutdown\"}\n");
    let responses = serve(&["--jobs", "4"], &input);
    assert_eq!(responses.len(), 41);
    for (i, resp) in responses[..40].iter().enumerate() {
        assert_eq!(num_field(resp, "id"), i as u64, "response {i} out of order");
        let want = if i % 2 == 0 { "defined" } else { "undefined" };
        assert_eq!(str_field(resp, "verdict"), want);
    }
}
