//! End-to-end tests of the `cundef` binary against the shipped examples.

use std::path::PathBuf;
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    // crates/cli -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn cundef(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cundef"))
        .current_dir(workspace_root())
        .args(args)
        .output()
        .expect("binary should run")
}

#[test]
fn detects_the_flagship_unsequenced_example() {
    let out = cundef(&["examples/unsequenced.c"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("Error: 00016"), "{stdout}");
    assert!(stdout.contains("6.5:2"), "{stdout}");
    assert!(stdout.contains("Function: main"), "{stdout}");
}

#[test]
fn detects_at_least_six_distinct_dynamic_kinds_across_examples() {
    let cases = [
        ("examples/unsequenced.c", "00016"),
        ("examples/division_by_zero.c", "00002"),
        ("examples/signed_overflow.c", "00004"),
        ("examples/out_of_bounds.c", "00023"),
        ("examples/uninitialized.c", "00028"),
        ("examples/shift_width.c", "00007"),
        ("examples/dangling.c", "00022"),
        ("examples/double_free.c", "00042"),
        ("examples/null_deref.c", "00020"),
    ];
    for (file, code) in cases {
        let out = cundef(&[file]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{file} should be undefined\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("Error: {code}")),
            "{file}: expected code {code}, got:\n{stdout}"
        );
        assert!(
            stdout.contains("of ISO/IEC 9899:2011"),
            "{file} must cite C11:\n{stdout}"
        );
    }
}

#[test]
fn defined_program_exits_zero() {
    let out = cundef(&["examples/defined.c"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no undefined behavior"), "{stdout}");
}

#[test]
fn catalog_summary_prints_the_split() {
    let out = cundef(&["--catalog"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("221"), "{stdout}");
    assert!(stdout.contains("92"), "{stdout}");
    assert!(stdout.contains("129"), "{stdout}");
}

#[test]
fn unreadable_file_is_an_engine_failure() {
    let out = cundef(&["examples/no_such_file.c"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_error_without_files() {
    let out = cundef(&[]);
    assert_eq!(out.status.code(), Some(2));
}
