//! End-to-end tests of the `cundef` binary against the shipped examples.

use std::path::PathBuf;
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    // crates/cli -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn cundef(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cundef"))
        .current_dir(workspace_root())
        .args(args)
        .output()
        .expect("binary should run")
}

#[test]
fn detects_the_flagship_unsequenced_example() {
    let out = cundef(&["examples/unsequenced.c"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("Error: 00016"), "{stdout}");
    assert!(stdout.contains("6.5:2"), "{stdout}");
    assert!(stdout.contains("Function: main"), "{stdout}");
}

#[test]
fn detects_every_readme_family_across_examples() {
    let cases = [
        ("examples/unsequenced.c", "00016"),
        ("examples/division_by_zero.c", "00002"),
        ("examples/signed_overflow.c", "00004"),
        ("examples/out_of_bounds.c", "00023"),
        ("examples/uninitialized.c", "00028"),
        ("examples/shift_width.c", "00007"),
        ("examples/dangling.c", "00022"),
        ("examples/double_free.c", "00042"),
        ("examples/null_deref.c", "00020"),
        ("examples/call_arity.c", "00050"),
        ("examples/vla_size.c", "00071"),
        ("examples/bad_free.c", "00040"),
        ("examples/static_redecl.c", "00074"),
        ("examples/case_dup.c", "00083"),
        ("examples/neg_array_static.c", "00070"),
        ("examples/void_object.c", "00082"),
        ("examples/shift_long.c", "00007"),
        ("examples/misaligned.c", "00030"),
        ("examples/uninit_byte.c", "00028"),
        ("examples/alias_write.c", "00033"),
        ("examples/goto_vla.c", "00076"),
    ];
    for (file, code) in cases {
        let out = cundef(&[file]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{file} should be undefined\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("Error: {code}")),
            "{file}: expected code {code}, got:\n{stdout}"
        );
        assert!(
            stdout.contains("of ISO/IEC 9899:2011"),
            "{file} must cite C11:\n{stdout}"
        );
    }
}

/// Examples that are fully defined programs: they must exit 0 in every
/// mode. `unsigned_wrap.c` is the width-awareness acceptance case — a
/// width-naive engine reports false SignedOverflow on it — and
/// `memrep_char.c` is the byte-model acceptance case: a char sweep of a
/// long's representation that reassembles the stored value exactly.
const DEFINED_EXAMPLES: [&str; 6] = [
    "examples/defined.c",
    "examples/unsigned_wrap.c",
    "examples/narrow_conv.c",
    "examples/sizeof_expr.c",
    "examples/memrep_char.c",
    "examples/goto_loop.c",
];

#[test]
fn defined_program_exits_zero() {
    let out = cundef(&["examples/defined.c"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no undefined behavior"), "{stdout}");
}

#[test]
fn typed_examples_are_defined_in_every_mode() {
    for file in DEFINED_EXAMPLES {
        for mode in [
            &[file][..],
            &["--batch", file][..],
            &["--phase", "translation", file][..],
            &["--phase", "execution", file][..],
        ] {
            let out = cundef(mode);
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert_eq!(
                out.status.code(),
                Some(0),
                "{file} {mode:?} must be defined\n{stdout}"
            );
        }
    }
}

#[test]
fn narrowing_conversions_print_notes_not_verdicts() {
    let out = cundef(&["examples/narrow_conv.c"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("note: implementation-defined"), "{stdout}");
    assert!(stdout.contains("`char`"), "{stdout}");
    assert!(stdout.contains("`short`"), "{stdout}");
    // Defined conversions (to unsigned, to _Bool) get no note.
    assert!(!stdout.contains("unsigned char"), "{stdout}");
    assert!(!stdout.contains("_Bool"), "{stdout}");
}

#[test]
fn long_shift_misuse_reports_width_64() {
    let out = cundef(&["examples/shift_long.c"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Error: 00007"), "{stdout}");
    assert!(
        stdout.contains("shift amount 64 >= width 64"),
        "the verdict must be at the promoted left operand's width:\n{stdout}"
    );
    // The defined 32..62-bit shifts earlier in the file are decoys: the
    // report must point at the real line.
    assert!(stdout.contains("Line: 10"), "{stdout}");
}

#[test]
fn byte_model_examples_report_representation_level_detail() {
    // The misaligned cast names the required alignment…
    let out = cundef(&["examples/misaligned.c"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Error: 00030"), "{stdout}");
    assert!(stdout.contains("requires 4-byte alignment"), "{stdout}");
    // …the partial-init read names the first indeterminate byte…
    let out = cundef(&["examples/uninit_byte.c"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Error: 00028"), "{stdout}");
    assert!(stdout.contains("byte 1"), "{stdout}");
    // …and the aliasing write names both types.
    let out = cundef(&["examples/alias_write.c"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Error: 00033"), "{stdout}");
    assert!(stdout.contains("`long`"), "{stdout}");
}

#[test]
fn catalog_summary_prints_the_split() {
    let out = cundef(&["--catalog"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("221"), "{stdout}");
    assert!(stdout.contains("92"), "{stdout}");
    assert!(stdout.contains("129"), "{stdout}");
}

/// Every shipped example, in sorted order (as a shell glob would pass
/// them).
fn all_examples() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(workspace_root().join("examples"))
        .expect("examples dir")
        .map(|e| {
            format!(
                "examples/{}",
                e.expect("dir entry").file_name().to_string_lossy()
            )
        })
        .filter(|f| f.ends_with(".c"))
        .collect();
    files.sort();
    files
}

#[test]
fn batch_mode_matches_sequential_verdicts_and_output() {
    let files = all_examples();
    assert!(
        files.len() >= 12,
        "example sweep looks too small: {files:?}"
    );
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();

    let sequential = cundef(&refs);
    let mut batch_args = vec!["--batch"];
    batch_args.extend(&refs);
    let batch = cundef(&batch_args);

    assert_eq!(batch.status.code(), sequential.status.code());
    assert_eq!(
        String::from_utf8_lossy(&batch.stdout),
        String::from_utf8_lossy(&sequential.stdout),
        "batch stdout must be byte-identical to sequential"
    );
    assert_eq!(
        String::from_utf8_lossy(&batch.stderr),
        String::from_utf8_lossy(&sequential.stderr),
    );

    // And with an explicit worker count exceeding the file count.
    let mut jobs_args = vec!["--batch", "--jobs", "32"];
    jobs_args.extend(&refs);
    let with_jobs = cundef(&jobs_args);
    assert_eq!(with_jobs.status.code(), sequential.status.code());
    assert_eq!(with_jobs.stdout, sequential.stdout);
}

#[test]
fn goto_runs_under_both_engines_and_vla_jumps_stay_caught() {
    for engine in ["tree", "bytecode"] {
        // A defined program whose control flow is entirely backward
        // gotos must run to completion in either engine.
        let out = cundef(&["--engine", engine, "examples/goto_loop.c"]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(0),
            "goto_loop.c must be defined under --engine {engine}\n{stdout}"
        );
        // A jump into the scope of a variably modified declaration is
        // translation-phase UB (Error 00076): it must be reported before
        // either engine would execute a single statement.
        let out = cundef(&["--engine", engine, "examples/goto_vla.c"]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "goto_vla.c must be undefined under --engine {engine}\n{stdout}"
        );
        assert!(stdout.contains("Error: 00076"), "{engine}: {stdout}");
        assert!(stdout.contains("variably modified"), "{engine}: {stdout}");
    }
}

#[test]
fn engines_produce_byte_identical_output_across_the_example_sweep() {
    let files = all_examples();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();

    // Sequential sweep: one process per engine over every example.
    let mut tree_args = vec!["--engine", "tree"];
    tree_args.extend(&refs);
    let mut vm_args = vec!["--engine", "bytecode"];
    vm_args.extend(&refs);
    let tree = cundef(&tree_args);
    let vm = cundef(&vm_args);
    assert_eq!(tree.status.code(), vm.status.code());
    assert_eq!(
        String::from_utf8_lossy(&tree.stdout),
        String::from_utf8_lossy(&vm.stdout),
        "engine stdout must be byte-identical across the example sweep"
    );
    assert_eq!(tree.stderr, vm.stderr);

    // Batch mode: the parallel driver must preserve the same parity.
    let mut tree_batch = vec!["--batch", "--engine", "tree"];
    tree_batch.extend(&refs);
    let mut vm_batch = vec!["--batch", "--engine", "bytecode"];
    vm_batch.extend(&refs);
    let tree_b = cundef(&tree_batch);
    let vm_b = cundef(&vm_batch);
    assert_eq!(tree_b.status.code(), vm_b.status.code());
    assert_eq!(
        String::from_utf8_lossy(&tree_b.stdout),
        String::from_utf8_lossy(&vm_b.stdout),
        "--batch stdout must be byte-identical across engines"
    );

    // The default engine is the bytecode VM, and batch output matches
    // sequential output, so all four runs agree byte for byte.
    let default_run = cundef(&refs);
    assert_eq!(default_run.stdout, vm.stdout);
    assert_eq!(vm_b.stdout, vm.stdout);
}

#[test]
fn batch_jobs_requires_a_positive_integer() {
    let out = cundef(&["--batch", "--jobs", "zero", "examples/defined.c"]);
    assert_eq!(out.status.code(), Some(2));
    let out = cundef(&["--batch", "--jobs", "0", "examples/defined.c"]);
    assert_eq!(out.status.code(), Some(2));
}

/// The four translation-phase examples: file, expected static code, and
/// the dynamic decoy code the evaluator would report if it ever ran.
const STATIC_EXAMPLES: [(&str, &str, Option<&str>); 4] = [
    ("examples/static_redecl.c", "00074", Some("00002")),
    ("examples/case_dup.c", "00083", Some("00002")),
    ("examples/neg_array_static.c", "00070", None), // no main at all
    ("examples/void_object.c", "00082", Some("00002")),
];

#[test]
fn static_examples_are_flagged_without_being_executed() {
    for (file, code, decoy) in STATIC_EXAMPLES {
        for mode in [
            &["--phase", "translation", file][..],
            &[file][..],
            &["--batch", file][..],
        ] {
            let out = cundef(mode);
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert_eq!(
                out.status.code(),
                Some(1),
                "{file} {mode:?} should be undefined\n{stdout}"
            );
            assert!(
                stdout.contains(&format!("Error: {code}")),
                "{file} {mode:?}: expected {code}:\n{stdout}"
            );
            // The decoy dynamic defect sits on an earlier line: seeing
            // only the static code proves the evaluator never entered
            // the program.
            if let Some(decoy) = decoy {
                assert!(
                    !stdout.contains(&format!("Error: {decoy}")),
                    "{file} {mode:?}: decoy {decoy} reported — the evaluator ran:\n{stdout}"
                );
            }
        }
    }
}

#[test]
fn phase_execution_reaches_the_decoy_instead() {
    // The same file, restricted to the execution phase, must hit the
    // dynamic decoy — demonstrating the phases are genuinely different
    // detectors over one program.
    let out = cundef(&["--phase", "execution", "examples/static_redecl.c"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("Error: 00002"), "{stdout}");
    assert!(!stdout.contains("Error: 00074"), "{stdout}");
}

#[test]
fn phase_translation_passes_clean_and_dynamic_only_files() {
    // defined.c is clean in both phases; division_by_zero.c is only
    // dynamically undefined, so the translation phase alone passes it.
    for file in ["examples/defined.c", "examples/division_by_zero.c"] {
        let out = cundef(&["--phase", "translation", file]);
        assert_eq!(out.status.code(), Some(0), "{file}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("translation phase found no undefined behavior"),
            "{file}: {stdout}"
        );
    }
}

#[test]
fn files_without_main_are_a_note_not_an_error() {
    let path = std::env::temp_dir().join("cundef_header_lib.c");
    std::fs::write(&path, "int helper(int x) { return x + 1; }\n").unwrap();
    let path = path.to_str().unwrap();

    // Default (phase-less) runs: translation-only checking works out of
    // the box — exit 0 with a "nothing to execute" note.
    let out = cundef(&[path]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nothing to execute"), "{stdout}");

    // Explicit phases agree.
    for args in [
        &["--phase", "translation", path][..],
        &["--phase", "execution", path][..],
        &["--batch", path][..],
    ] {
        let out = cundef(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
    }

    // Quiet mode stays silent about it.
    let out = cundef(&["-q", path]);
    assert_eq!(out.status.code(), Some(0));
    assert!(out.stdout.is_empty());
}

#[test]
fn phase_option_rejects_unknown_values() {
    let out = cundef(&["--phase", "bogus", "examples/defined.c"]);
    assert_eq!(out.status.code(), Some(2));
    let out = cundef(&["--phase"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unreadable_file_is_an_engine_failure() {
    let out = cundef(&["examples/no_such_file.c"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_error_without_files() {
    let out = cundef(&[]);
    assert_eq!(out.status.code(), Some(2));
}
