//! End-to-end tests of the `cundef` binary against the shipped examples.

use std::path::PathBuf;
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    // crates/cli -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn cundef(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cundef"))
        .current_dir(workspace_root())
        .args(args)
        .output()
        .expect("binary should run")
}

#[test]
fn detects_the_flagship_unsequenced_example() {
    let out = cundef(&["examples/unsequenced.c"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.contains("Error: 00016"), "{stdout}");
    assert!(stdout.contains("6.5:2"), "{stdout}");
    assert!(stdout.contains("Function: main"), "{stdout}");
}

#[test]
fn detects_every_readme_family_across_examples() {
    let cases = [
        ("examples/unsequenced.c", "00016"),
        ("examples/division_by_zero.c", "00002"),
        ("examples/signed_overflow.c", "00004"),
        ("examples/out_of_bounds.c", "00023"),
        ("examples/uninitialized.c", "00028"),
        ("examples/shift_width.c", "00007"),
        ("examples/dangling.c", "00022"),
        ("examples/double_free.c", "00042"),
        ("examples/null_deref.c", "00020"),
        ("examples/call_arity.c", "00050"),
        ("examples/vla_size.c", "00071"),
        ("examples/bad_free.c", "00040"),
    ];
    for (file, code) in cases {
        let out = cundef(&[file]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{file} should be undefined\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("Error: {code}")),
            "{file}: expected code {code}, got:\n{stdout}"
        );
        assert!(
            stdout.contains("of ISO/IEC 9899:2011"),
            "{file} must cite C11:\n{stdout}"
        );
    }
}

#[test]
fn defined_program_exits_zero() {
    let out = cundef(&["examples/defined.c"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no undefined behavior"), "{stdout}");
}

#[test]
fn catalog_summary_prints_the_split() {
    let out = cundef(&["--catalog"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("221"), "{stdout}");
    assert!(stdout.contains("92"), "{stdout}");
    assert!(stdout.contains("129"), "{stdout}");
}

/// Every shipped example, in sorted order (as a shell glob would pass
/// them).
fn all_examples() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(workspace_root().join("examples"))
        .expect("examples dir")
        .map(|e| {
            format!(
                "examples/{}",
                e.expect("dir entry").file_name().to_string_lossy()
            )
        })
        .filter(|f| f.ends_with(".c"))
        .collect();
    files.sort();
    files
}

#[test]
fn batch_mode_matches_sequential_verdicts_and_output() {
    let files = all_examples();
    assert!(
        files.len() >= 12,
        "example sweep looks too small: {files:?}"
    );
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();

    let sequential = cundef(&refs);
    let mut batch_args = vec!["--batch"];
    batch_args.extend(&refs);
    let batch = cundef(&batch_args);

    assert_eq!(batch.status.code(), sequential.status.code());
    assert_eq!(
        String::from_utf8_lossy(&batch.stdout),
        String::from_utf8_lossy(&sequential.stdout),
        "batch stdout must be byte-identical to sequential"
    );
    assert_eq!(
        String::from_utf8_lossy(&batch.stderr),
        String::from_utf8_lossy(&sequential.stderr),
    );

    // And with an explicit worker count exceeding the file count.
    let mut jobs_args = vec!["--batch", "--jobs", "32"];
    jobs_args.extend(&refs);
    let with_jobs = cundef(&jobs_args);
    assert_eq!(with_jobs.status.code(), sequential.status.code());
    assert_eq!(with_jobs.stdout, sequential.stdout);
}

#[test]
fn batch_jobs_requires_a_positive_integer() {
    let out = cundef(&["--batch", "--jobs", "zero", "examples/defined.c"]);
    assert_eq!(out.status.code(), Some(2));
    let out = cundef(&["--batch", "--jobs", "0", "examples/defined.c"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn unreadable_file_is_an_engine_failure() {
    let out = cundef(&["examples/no_such_file.c"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_error_without_files() {
    let out = cundef(&[]);
    assert_eq!(out.status.code(), Some(2));
}
