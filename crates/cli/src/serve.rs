//! `cundef serve` — checking as a service.
//!
//! A long-running daemon that accepts translation units as requests,
//! shards them across the same [`WorkerPool`] that powers `--batch`,
//! and answers through the existing `FileResult` → `Renderer` seam, so
//! a serve response's rendered bytes are **identical** to what a
//! one-shot `cundef` run prints for the same file and options, in every
//! `--format`.
//!
//! Two transports share one core:
//!
//! - **stdin-JSONL** — one JSON request object per line on stdin, one
//!   JSON response object per line on stdout, *in request order* (a
//!   reorder buffer sequences worker completions). In-band commands:
//!   `{"cmd": "stats"}` and `{"cmd": "shutdown"}`. EOF also shuts down.
//! - **HTTP** (`--listen ADDR`) — `POST /check` with the same request
//!   object as the body returns the rendered report verbatim as the
//!   response body (verdict/exit/cache outcome in `X-Cundef-*`
//!   headers), plus `GET /stats`, `GET /health`, and `POST /shutdown`.
//!   Connections are keep-alive; each parsed request is dispatched to
//!   the worker pool.
//!
//! In front of the workers sits the content-hash incremental cache
//! (`cundef-cache`): a *result* cache keyed by (source-bytes hash,
//! options fingerprint) memoizing the full [`FileResult`], and a
//! *unit* cache keyed by content hash alone memoizing the parsed +
//! resolved translation unit — so a repeat file is a hash lookup and a
//! re-render, and a known file under new options skips the whole
//! frontend. Both caches are bounded LRU; hit/miss/eviction counters
//! surface through `{"cmd": "stats"}` / `GET /stats`.

use crate::check::{
    check_parsed, check_source, render_profile, CheckOptions, Checked, FailOn, Format, Phase,
    PhaseStats,
};
use crate::pool::WorkerPool;
use cundef_cache::{content_hash, CacheKey, CacheStats, LruCache};
use cundef_semantics::ast::TranslationUnit;
use cundef_semantics::eval::Engine;
use cundef_semantics::parser;
use cundef_ub::json::{escaped, Json};
use cundef_ub::render::{
    FileResult, HumanRenderer, JsonRenderer, Rendered, Renderer, SarifRenderer, Verdict,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Default bound on each cache (entries, not bytes): generous for a
/// sweep over a large tree, small enough that a long-lived daemon
/// cannot grow without bound.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Per-daemon configuration (from `cundef serve` flags).
pub struct ServeConfig {
    /// Default checking options for requests that don't override them.
    pub opts: CheckOptions,
    /// Default output format.
    pub format: Format,
    /// Default human-format quiet flag.
    pub quiet: bool,
    /// Default exit-code threshold.
    pub fail_on: FailOn,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Capacity of each cache, in entries.
    pub cache_capacity: usize,
    /// HTTP listen address (e.g. `127.0.0.1:0`), when HTTP is wanted.
    pub listen: Option<String>,
    /// Service stdin-JSONL requests. Defaults on when `listen` is off.
    pub stdin: bool,
}

/// One parsed check request (transport-independent).
#[derive(Debug, Clone)]
pub struct CheckRequest {
    /// Pass-through correlation id, echoed in the JSONL envelope.
    pub id: Option<u64>,
    /// The label used in diagnostics; also the file to read when no
    /// inline `source` is given.
    pub path: String,
    /// Inline source bytes (a translation unit shipped in-band).
    pub source: Option<String>,
    /// Checking options for this request.
    pub opts: CheckOptions,
    /// Output format for this request.
    pub format: Format,
    /// Human-format quiet flag.
    pub quiet: bool,
    /// Exit-code threshold for this request.
    pub fail_on: FailOn,
}

/// One served response: the rendered bytes plus the structured outcome.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Echoed request id.
    pub id: Option<u64>,
    /// Echoed request path.
    pub path: String,
    /// Verdict spelling (`defined`/`undefined`/`error`).
    pub verdict: &'static str,
    /// The exit code a one-shot `cundef` run on this file would return
    /// under the request's `fail_on` threshold.
    pub exit: u8,
    /// Cache outcome: `hit` (full result), `warm` (parsed unit reused),
    /// `miss` (cold check, now cached), `uncached` (not cacheable —
    /// read failure or profiling request).
    pub cache: &'static str,
    /// Exactly the bytes a one-shot run would print to stdout.
    pub stdout: String,
    /// Exactly the bytes a one-shot run would print to stderr.
    pub stderr: String,
}

impl ServeResponse {
    /// The stdin-JSONL envelope (one line, no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::from("{\"type\": \"response\"");
        if let Some(id) = self.id {
            let _ = write!(out, ", \"id\": {id}");
        }
        let _ = write!(out, ", \"path\": {}", escaped(&self.path));
        let _ = write!(out, ", \"verdict\": \"{}\"", self.verdict);
        let _ = write!(out, ", \"exit\": {}", self.exit);
        let _ = write!(out, ", \"cache\": \"{}\"", self.cache);
        let _ = write!(out, ", \"stdout\": {}", escaped(&self.stdout));
        let _ = write!(out, ", \"stderr\": {}", escaped(&self.stderr));
        out.push('}');
        out
    }
}

/// The daemon's shared state: caches, counters, defaults.
pub struct ServeCore {
    defaults: ServeDefaults,
    /// Full-result cache: (content hash, options fingerprint) →
    /// path-normalized [`FileResult`].
    results: Mutex<LruCache<FileResult>>,
    /// Artifact cache: content hash → parsed + resolved unit, shared
    /// across options fingerprints.
    units: Mutex<LruCache<Arc<TranslationUnit>>>,
    requests: AtomicU64,
    full_hits: AtomicU64,
    warm_hits: AtomicU64,
    cold_misses: AtomicU64,
    uncached: AtomicU64,
    workers: usize,
    started: Instant,
}

/// Per-request defaults from the daemon's command line.
#[derive(Debug, Clone, Copy)]
pub struct ServeDefaults {
    /// Checking options.
    pub opts: CheckOptions,
    /// Output format.
    pub format: Format,
    /// Human quiet flag.
    pub quiet: bool,
    /// Exit threshold.
    pub fail_on: FailOn,
}

/// Parse an `--engine` / request spelling.
pub fn parse_engine(s: &str) -> Option<Engine> {
    match s {
        "tree" => Some(Engine::Tree),
        "bytecode" => Some(Engine::Bytecode),
        _ => None,
    }
}

impl ServeCore {
    /// A fresh core with empty caches.
    pub fn new(defaults: ServeDefaults, cache_capacity: usize, workers: usize) -> ServeCore {
        ServeCore {
            defaults,
            results: Mutex::new(LruCache::new(cache_capacity)),
            units: Mutex::new(LruCache::new(cache_capacity)),
            requests: AtomicU64::new(0),
            full_hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cold_misses: AtomicU64::new(0),
            uncached: AtomicU64::new(0),
            workers,
            started: Instant::now(),
        }
    }

    /// Parse one JSON request object against the daemon defaults.
    ///
    /// Recognized fields: `path` (string), `source` (string, inline
    /// translation unit), `id` (number), `phase`, `engine`, `format`
    /// (strings), `quiet` (bool), `profile` (bool), `fail_on` (string).
    pub fn parse_request(&self, v: &Json) -> Result<CheckRequest, String> {
        let d = self.defaults;
        let path = v.get("path").and_then(Json::as_str).map(str::to_string);
        let source = v.get("source").and_then(Json::as_str).map(str::to_string);
        let path = match (path, &source) {
            (Some(p), _) => p,
            (None, Some(_)) => "<request>.c".to_string(),
            (None, None) => return Err("request needs a `path` or inline `source`".into()),
        };
        let id = v.get("id").and_then(Json::as_f64).map(|f| f as u64);
        let mut opts = d.opts;
        if let Some(s) = v.get("phase").and_then(Json::as_str) {
            opts.phase = Phase::parse(s).ok_or_else(|| format!("unknown phase `{s}`"))?;
        }
        if let Some(s) = v.get("engine").and_then(Json::as_str) {
            opts.engine = parse_engine(s).ok_or_else(|| format!("unknown engine `{s}`"))?;
        }
        if let Some(Json::Bool(b)) = v.get("profile") {
            opts.profile = *b;
        }
        let format = match v.get("format").and_then(Json::as_str) {
            Some(s) => Format::parse(s).ok_or_else(|| format!("unknown format `{s}`"))?,
            None => d.format,
        };
        let quiet = match v.get("quiet") {
            Some(Json::Bool(b)) => *b,
            _ => d.quiet,
        };
        let fail_on = match v.get("fail_on").and_then(Json::as_str) {
            Some(s) => FailOn::parse(s).ok_or_else(|| format!("unknown fail_on `{s}`"))?,
            None => d.fail_on,
        };
        Ok(CheckRequest {
            id,
            path,
            source,
            opts,
            format,
            quiet,
            fail_on,
        })
    }

    /// Serve one request end to end: resolve the source bytes, consult
    /// the caches, check on a miss, and render through the seam.
    pub fn handle(&self, req: &CheckRequest) -> ServeResponse {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (checked, cache) = self.check_cached(req);
        let Rendered { stdout, stderr } = render_one(&checked.result, req.format, req.quiet);
        let mut stderr = stderr;
        if let Some(p) = &checked.profile {
            stderr.push_str(&render_profile(&checked.result.path, p));
        }
        let (verdict, any_ub, any_fail) = match checked.result.verdict {
            Verdict::Defined => ("defined", false, false),
            Verdict::Undefined => ("undefined", true, false),
            Verdict::EngineFailure => ("error", false, true),
        };
        ServeResponse {
            id: req.id,
            path: req.path.clone(),
            verdict,
            exit: req.fail_on.exit_code(any_ub, any_fail),
            cache,
            stdout,
            stderr,
        }
    }

    /// The caching check: full-result hit, warm unit hit, or cold miss.
    fn check_cached(&self, req: &CheckRequest) -> (Checked, &'static str) {
        let mut stats = PhaseStats::default();
        let source = match &req.source {
            Some(s) => s.clone(),
            None => {
                let t = Instant::now();
                match std::fs::read_to_string(&req.path) {
                    Ok(s) => {
                        stats.read = t.elapsed();
                        s
                    }
                    Err(e) => {
                        stats.read = t.elapsed();
                        // Not content-addressable: never cached.
                        self.uncached.fetch_add(1, Ordering::Relaxed);
                        return (
                            Checked::failed(&req.path, stats, format!("cannot read file: {e}")),
                            "uncached",
                        );
                    }
                }
            }
        };
        if req.opts.profile {
            // Profiling wants fresh telemetry, and cached results carry
            // none — bypass the cache entirely.
            self.uncached.fetch_add(1, Ordering::Relaxed);
            return (
                check_source(&req.path, &source, stats, &req.opts),
                "uncached",
            );
        }
        let content = content_hash(source.as_bytes());
        let result_key = CacheKey {
            content,
            fingerprint: req.opts.fingerprint(),
        };
        if let Some(cached) = self
            .results
            .lock()
            .expect("result cache poisoned")
            .get(&result_key)
        {
            self.full_hits.fetch_add(1, Ordering::Relaxed);
            let mut result = cached.clone();
            result.path = req.path.clone();
            return (
                Checked {
                    result,
                    stats,
                    profile: None,
                },
                "hit",
            );
        }
        let unit_key = CacheKey {
            content,
            fingerprint: 0,
        };
        let cached_unit = self
            .units
            .lock()
            .expect("unit cache poisoned")
            .get(&unit_key)
            .cloned();
        let (checked, cache) = match cached_unit {
            Some(unit) => {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                (check_parsed(&req.path, &unit, stats, &req.opts), "warm")
            }
            None => {
                self.cold_misses.fetch_add(1, Ordering::Relaxed);
                match parser::parse_timed(&source) {
                    Err(parse_err) => (
                        Checked::failed(&req.path, stats, parse_err.to_string()),
                        "miss",
                    ),
                    Ok((unit, timing)) => {
                        stats.lex = timing.lex;
                        stats.parse = timing.parse;
                        stats.resolve = timing.resolve;
                        let unit = Arc::new(unit);
                        self.units
                            .lock()
                            .expect("unit cache poisoned")
                            .insert(unit_key, Arc::clone(&unit));
                        (check_parsed(&req.path, &unit, stats, &req.opts), "miss")
                    }
                }
            }
        };
        // Memoize the full result, path-normalized so the same bytes
        // under another name replay with that name.
        let mut stored = checked.result.clone();
        stored.path = String::new();
        self.results
            .lock()
            .expect("result cache poisoned")
            .insert(result_key, stored);
        (checked, cache)
    }

    /// The `{"cmd": "stats"}` / `GET /stats` body (one JSON object).
    pub fn stats_json(&self) -> String {
        let (results_len, results_cap, results_stats) = {
            let c = self.results.lock().expect("result cache poisoned");
            (c.len(), c.capacity(), c.stats())
        };
        let (units_len, units_cap, units_stats) = {
            let c = self.units.lock().expect("unit cache poisoned");
            (c.len(), c.capacity(), c.stats())
        };
        let cache_obj = |len: usize, cap: usize, s: CacheStats| {
            format!(
                "{{\"entries\": {len}, \"capacity\": {cap}, \"hits\": {}, \"misses\": {}, \
                 \"insertions\": {}, \"evictions\": {}, \"replacements\": {}}}",
                s.hits, s.misses, s.insertions, s.evictions, s.replacements
            )
        };
        format!(
            "{{\"type\": \"stats\", \"requests\": {}, \"full_hits\": {}, \"warm_hits\": {}, \
             \"cold_misses\": {}, \"uncached\": {}, \"workers\": {}, \"uptime_ms\": {}, \
             \"results\": {}, \"units\": {}}}",
            self.requests.load(Ordering::Relaxed),
            self.full_hits.load(Ordering::Relaxed),
            self.warm_hits.load(Ordering::Relaxed),
            self.cold_misses.load(Ordering::Relaxed),
            self.uncached.load(Ordering::Relaxed),
            self.workers,
            self.started.elapsed().as_millis(),
            cache_obj(results_len, results_cap, results_stats),
            cache_obj(units_len, units_cap, units_stats),
        )
    }

    /// The shutdown summary printed to the daemon's stderr.
    fn summary(&self) -> String {
        format!(
            "cundef serve: {} requests served ({} hits, {} warm, {} misses, {} uncached)",
            self.requests.load(Ordering::Relaxed),
            self.full_hits.load(Ordering::Relaxed),
            self.warm_hits.load(Ordering::Relaxed),
            self.cold_misses.load(Ordering::Relaxed),
            self.uncached.load(Ordering::Relaxed),
        )
    }
}

/// Render one result exactly as a one-shot run would: per-file render
/// plus the format's trailing output (the SARIF document).
pub fn render_one(result: &FileResult, format: Format, quiet: bool) -> Rendered {
    let mut renderer: Box<dyn Renderer> = match format {
        Format::Human => Box::new(HumanRenderer::new(quiet)),
        Format::Json => Box::new(JsonRenderer::new()),
        Format::Sarif => Box::new(SarifRenderer::new(env!("CARGO_PKG_VERSION"))),
    };
    let mut rendered = renderer.render_file(result);
    rendered.stdout.push_str(&renderer.finish());
    rendered
}

/// A `{"type": "error"}` line for a malformed request.
fn error_jsonl(id: Option<u64>, message: &str) -> String {
    let mut out = String::from("{\"type\": \"error\"");
    if let Some(id) = id {
        let _ = write!(out, ", \"id\": {id}");
    }
    let _ = write!(out, ", \"message\": {}", escaped(message));
    out.push('}');
    out
}

/// Run the daemon. Returns the process exit code.
pub fn run_serve(cfg: ServeConfig) -> u8 {
    let workers = if cfg.jobs == 0 {
        WorkerPool::default_workers()
    } else {
        cfg.jobs
    };
    let core = Arc::new(ServeCore::new(
        ServeDefaults {
            opts: cfg.opts,
            format: cfg.format,
            quiet: cfg.quiet,
            fail_on: cfg.fail_on,
        },
        cfg.cache_capacity,
        workers,
    ));
    let pool = Arc::new(WorkerPool::new(workers));
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new((Mutex::new(false), Condvar::new()));

    let mut http_addr = None;
    if let Some(addr) = &cfg.listen {
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cundef serve: cannot listen on {addr}: {e}");
                return 2;
            }
        };
        let local = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.clone());
        eprintln!("cundef serve: listening on http://{local}");
        http_addr = Some(local);
        let core = Arc::clone(&core);
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let done = Arc::clone(&done);
        std::thread::spawn(move || http_accept_loop(listener, core, pool, stop, done));
    }

    if cfg.stdin {
        stdin_loop(&core, &pool);
        // stdin closing ends the whole service, HTTP included.
        stop.store(true, Ordering::SeqCst);
        if let Some(addr) = &http_addr {
            let _ = TcpStream::connect(addr); // wake the accept loop
        }
    } else {
        // HTTP-only: park until /shutdown.
        let (lock, cv) = &*done;
        let mut finished = lock.lock().expect("shutdown flag poisoned");
        while !*finished {
            finished = cv.wait(finished).expect("shutdown flag poisoned");
        }
    }
    eprintln!("{}", core.summary());
    0
}

/// The stdin-JSONL request loop. Responses print in request order; a
/// reorder buffer on the printer thread sequences worker completions.
fn stdin_loop(core: &Arc<ServeCore>, pool: &Arc<WorkerPool>) {
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    // (next sequence number to print, printed-count condvar).
    let progress = Arc::new((Mutex::new(0u64), Condvar::new()));
    let printer = {
        let progress = Arc::clone(&progress);
        std::thread::spawn(move || {
            let stdout = std::io::stdout();
            let mut buffer: BTreeMap<u64, String> = BTreeMap::new();
            let mut next = 0u64;
            for (seq, line) in rx {
                buffer.insert(seq, line);
                let mut emitted = false;
                while let Some(line) = buffer.remove(&next) {
                    let mut out = stdout.lock();
                    let _ = writeln!(out, "{line}");
                    let _ = out.flush();
                    next += 1;
                    emitted = true;
                }
                if emitted {
                    let (lock, cv) = &*progress;
                    *lock.lock().expect("printer progress poisoned") = next;
                    cv.notify_all();
                }
            }
        })
    };
    // Block until every response up to `seq` has printed — the barrier
    // that makes `stats` deterministic (it reflects every request that
    // preceded it on stdin) and `shutdown` clean (nothing in flight).
    let drain = |seq: u64| {
        let (lock, cv) = &*progress;
        let mut printed = lock.lock().expect("printer progress poisoned");
        while *printed < seq {
            printed = cv.wait(printed).expect("printer progress poisoned");
        }
    };
    let mut seq = 0u64;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line);
        let id = parsed
            .as_ref()
            .and_then(|v| v.get("id"))
            .and_then(Json::as_f64)
            .map(|f| f as u64);
        let Some(v) = parsed else {
            let _ = tx.send((seq, error_jsonl(id, "request line is not valid JSON")));
            seq += 1;
            continue;
        };
        match v.get("cmd").and_then(Json::as_str) {
            Some("stats") => {
                drain(seq);
                let _ = tx.send((seq, core.stats_json()));
                seq += 1;
                continue;
            }
            Some("shutdown") => {
                drain(seq);
                let _ = tx.send((seq, "{\"type\": \"shutdown\"}".to_string()));
                seq += 1;
                break;
            }
            Some(other) => {
                let _ = tx.send((seq, error_jsonl(id, &format!("unknown cmd `{other}`"))));
                seq += 1;
                continue;
            }
            None => {}
        }
        match core.parse_request(&v) {
            Err(msg) => {
                let _ = tx.send((seq, error_jsonl(id, &msg)));
                seq += 1;
            }
            Ok(req) => {
                let core = Arc::clone(core);
                let tx = tx.clone();
                let s = seq;
                pool.submit(move || {
                    let resp = core.handle(&req);
                    let _ = tx.send((s, resp.to_jsonl()));
                });
                seq += 1;
            }
        }
    }
    drain(seq);
    drop(tx);
    let _ = printer.join();
}

// --------------------------------------------------------------------
// HTTP transport
// --------------------------------------------------------------------

/// Accept connections until `stop`; one thread per connection.
fn http_accept_loop(
    listener: TcpListener,
    core: Arc<ServeCore>,
    pool: Arc<WorkerPool>,
    stop: Arc<AtomicBool>,
    done: Arc<(Mutex<bool>, Condvar)>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let core = Arc::clone(&core);
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let done = Arc::clone(&done);
        let addr = listener.local_addr().ok();
        std::thread::spawn(move || {
            let _ = handle_connection(stream, core, pool, stop, done, addr);
        });
    }
    let (lock, cv) = &*done;
    *lock.lock().expect("shutdown flag poisoned") = true;
    cv.notify_all();
}

/// Serve HTTP/1.1 requests on one connection (keep-alive) until the
/// peer closes, asks to, or the daemon shuts down.
fn handle_connection(
    stream: TcpStream,
    core: Arc<ServeCore>,
    pool: Arc<WorkerPool>,
    stop: Arc<AtomicBool>,
    done: Arc<(Mutex<bool>, Condvar)>,
    local_addr: Option<std::net::SocketAddr>,
) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            break; // peer closed
        }
        let mut parts = request_line.split_whitespace();
        let (method, target) = match (parts.next(), parts.next()) {
            (Some(m), Some(t)) => (m.to_string(), t.to_string()),
            _ => {
                write_http(&mut writer, 400, "text/plain", &[], b"bad request\n")?;
                break;
            }
        };
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Ok(());
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;

        match (method.as_str(), target.as_str()) {
            ("POST", "/check") => {
                let parsed = std::str::from_utf8(&body)
                    .ok()
                    .and_then(Json::parse)
                    .ok_or_else(|| "request body is not valid JSON".to_string())
                    .and_then(|v| core.parse_request(&v));
                match parsed {
                    Err(msg) => {
                        let body = format!("{}\n", error_jsonl(None, &msg));
                        write_http(&mut writer, 400, "application/json", &[], body.as_bytes())?;
                    }
                    Ok(req) => {
                        let content_type = match req.format {
                            Format::Human => "text/plain; charset=utf-8",
                            Format::Json => "application/x-ndjson",
                            Format::Sarif => "application/json",
                        };
                        // Shard the check across the worker pool; this
                        // connection thread just waits for its slot.
                        let (rtx, rrx) = mpsc::channel();
                        let job_core = Arc::clone(&core);
                        pool.submit(move || {
                            let _ = rtx.send(job_core.handle(&req));
                        });
                        let Ok(resp) = rrx.recv() else {
                            write_http(
                                &mut writer,
                                500,
                                "text/plain",
                                &[],
                                b"worker pool unavailable\n",
                            )?;
                            break;
                        };
                        let mut extra = vec![
                            format!("X-Cundef-Verdict: {}", resp.verdict),
                            format!("X-Cundef-Exit: {}", resp.exit),
                            format!("X-Cundef-Cache: {}", resp.cache),
                        ];
                        if !resp.stderr.is_empty() {
                            extra.push(format!("X-Cundef-Stderr: {}", escaped(&resp.stderr)));
                        }
                        write_http(
                            &mut writer,
                            200,
                            content_type,
                            &extra,
                            resp.stdout.as_bytes(),
                        )?;
                    }
                }
            }
            ("GET", "/stats") => {
                let body = format!("{}\n", core.stats_json());
                write_http(&mut writer, 200, "application/json", &[], body.as_bytes())?;
            }
            ("GET", "/health") => {
                write_http(&mut writer, 200, "text/plain", &[], b"ok\n")?;
            }
            ("POST", "/shutdown") => {
                write_http(&mut writer, 200, "text/plain", &[], b"shutting down\n")?;
                stop.store(true, Ordering::SeqCst);
                if let Some(addr) = local_addr {
                    let _ = TcpStream::connect(addr); // wake the accept loop
                }
                let (lock, cv) = &*done;
                *lock.lock().expect("shutdown flag poisoned") = true;
                cv.notify_all();
                break;
            }
            _ => {
                write_http(&mut writer, 404, "text/plain", &[], b"not found\n")?;
            }
        }
        if close {
            break;
        }
    }
    Ok(())
}

// --------------------------------------------------------------------
// `cundef fuzz --serve-replay`
// --------------------------------------------------------------------

/// Replay the fuzz-generated corpus through the serve pipeline and
/// assert every response is byte-identical to one-shot output — a
/// service-path oracle on top of the sweep's five.
///
/// Each generated program is checked twice (a cold pass and a warm
/// pass that must be a full-result cache hit) in a rotating format
/// (`human`/`json`/`sarif` by case index), and both passes' rendered
/// stdout/stderr and exit code are compared against a direct
/// `check_source` + render of the same bytes. Returns `true` when no
/// response diverged and every warm pass hit the cache.
pub fn serve_replay(seed: u64, count: u64) -> bool {
    use cundef_fuzz::decision::DecisionSource;
    use cundef_fuzz::gen::{generate, Class};
    use cundef_fuzz::rng::case_seed;

    let defaults = ServeDefaults {
        opts: CheckOptions {
            phase: Phase::All,
            engine: Engine::default(),
            profile: false,
        },
        format: Format::Human,
        quiet: false,
        fail_on: FailOn::Ub,
    };
    let core = ServeCore::new(defaults, DEFAULT_CACHE_CAPACITY, 1);
    let formats = [Format::Human, Format::Json, Format::Sarif];
    let mut divergences = 0u64;
    for i in 0..count {
        let class = Class::of_case(i);
        let mut d = DecisionSource::from_seed(case_seed(seed, i));
        let case = generate(class, &mut d);
        let format = formats[(i % 3) as usize];
        let path = format!("fuzz-{i}.c");

        // The ground truth: what a one-shot run prints for these bytes.
        let checked = check_source(&path, &case.source, PhaseStats::default(), &defaults.opts);
        let expected = render_one(&checked.result, format, false);
        let (any_ub, any_fail) = match checked.result.verdict {
            Verdict::Defined => (false, false),
            Verdict::Undefined => (true, false),
            Verdict::EngineFailure => (false, true),
        };
        let expected_exit = FailOn::Ub.exit_code(any_ub, any_fail);

        let req = CheckRequest {
            id: Some(i),
            path: path.clone(),
            source: Some(case.source.clone()),
            opts: defaults.opts,
            format,
            quiet: false,
            fail_on: FailOn::Ub,
        };
        for pass in ["cold", "warm"] {
            let resp = core.handle(&req);
            if resp.stdout != expected.stdout
                || resp.stderr != expected.stderr
                || resp.exit != expected_exit
            {
                divergences += 1;
                eprintln!(
                    "serve-replay: DIVERGENCE case {i} ({}, {:?}, {pass} pass): \
                     serve exit {} vs one-shot {expected_exit}",
                    class.name(),
                    format,
                    resp.exit,
                );
                eprintln!("  serve stdout:    {}", escaped(&resp.stdout));
                eprintln!("  one-shot stdout: {}", escaped(&expected.stdout));
                eprintln!("  serve stderr:    {}", escaped(&resp.stderr));
                eprintln!("  one-shot stderr: {}", escaped(&expected.stderr));
            }
            // The warm pass of the same (bytes, options) must be a
            // full-result hit; the cold pass may itself hit when two
            // cases generate identical source, so it is not asserted.
            if pass == "warm" && resp.cache != "hit" {
                divergences += 1;
                eprintln!(
                    "serve-replay: case {i}: warm pass was `{}`, expected a cache hit",
                    resp.cache
                );
            }
        }
    }
    println!(
        "serve-replay: seed {seed}, {count} cases x (cold + warm), formats rotated human/json/sarif"
    );
    println!(
        "serve-replay: {} requests, {} full hits, {} misses, {} warm",
        core.requests.load(Ordering::Relaxed),
        core.full_hits.load(Ordering::Relaxed),
        core.cold_misses.load(Ordering::Relaxed),
        core.warm_hits.load(Ordering::Relaxed),
    );
    if divergences == 0 {
        println!("serve-replay: every response byte-identical to one-shot output");
        true
    } else {
        println!("serve-replay: {divergences} divergences");
        false
    }
}

/// Write one HTTP response.
fn write_http(
    w: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[String],
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}
