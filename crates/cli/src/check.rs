//! The per-file checking pipeline, factored out of `main` so every
//! driver — the one-shot CLI, the `--batch` worker pool, and the
//! `cundef serve` daemon — runs the *same* code path and produces the
//! same [`FileResult`] for the same bytes and options.
//!
//! The pipeline is split at the two seams the serve cache needs:
//!
//! - [`check_file`] — read from disk, then [`check_source`];
//! - [`check_source`] — lex/parse/resolve, then [`check_parsed`];
//! - [`check_parsed`] — translation-phase analysis and (when selected)
//!   execution over an already-parsed translation unit. A warm cache
//!   hit on the parsed artifact enters here directly, skipping the
//!   whole frontend.

use cundef_analysis::analyze;
use cundef_semantics::ast::TranslationUnit;
use cundef_semantics::eval::{Engine, Interp, Limits, Outcome};
use cundef_semantics::intern::kw;
use cundef_semantics::{compile_unit, parser, ExecProfile};
use cundef_ub::render::{FileResult, Verdict};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Which checking phases to run on each file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Static analysis only; nothing is executed.
    Translation,
    /// Execution only (the pre-analysis behavior).
    Execution,
    /// Translation first; execution only for files that pass it.
    All,
}

impl Phase {
    /// Parse the `--phase` / request spelling.
    pub fn parse(s: &str) -> Option<Phase> {
        match s {
            "translation" => Some(Phase::Translation),
            "execution" => Some(Phase::Execution),
            "all" => Some(Phase::All),
            _ => None,
        }
    }
}

/// Output format behind `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// kcc-style terminal reports.
    Human,
    /// JSON Lines.
    Json,
    /// One SARIF 2.1.0 document per run.
    Sarif,
}

impl Format {
    /// Parse the `--format` / request spelling.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "human" => Some(Format::Human),
            "json" => Some(Format::Json),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }
}

/// The `--fail-on` severity threshold gating the exit code (the
/// verdicts and reports themselves are never affected).
///
/// - [`FailOn::Ub`] (default) — the historical contract: exit 1 on any
///   undefined file, else 2 on any engine failure, else 0.
/// - [`FailOn::Error`] — CI mode for advisory sweeps: undefined
///   verdicts report but exit 0; only engine failures (the tool could
///   not finish) exit 2.
/// - [`FailOn::Never`] — always exit 0 once the run completes (usage
///   errors still exit 2 before any checking starts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOn {
    /// Fail only on engine failures.
    Error,
    /// Fail on undefined behavior (and engine failures) — the default.
    Ub,
    /// Never fail.
    Never,
}

impl FailOn {
    /// Parse the `--fail-on` / request spelling.
    pub fn parse(s: &str) -> Option<FailOn> {
        match s {
            "error" => Some(FailOn::Error),
            "ub" => Some(FailOn::Ub),
            "never" => Some(FailOn::Never),
            _ => None,
        }
    }

    /// The exit code for a run that saw the given verdict mix, under
    /// this threshold. Shared by the one-shot CLI, `--batch`, and every
    /// `serve` response so the contract cannot drift between drivers.
    pub fn exit_code(self, any_undefined: bool, any_engine_failure: bool) -> u8 {
        match self {
            FailOn::Never => 0,
            FailOn::Error => {
                if any_engine_failure {
                    2
                } else {
                    0
                }
            }
            FailOn::Ub => {
                if any_undefined {
                    1
                } else if any_engine_failure {
                    2
                } else {
                    0
                }
            }
        }
    }
}

/// Per-file checking knobs (everything except rendering).
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Which phases run.
    pub phase: Phase,
    /// Which execution engine runs the program.
    pub engine: Engine,
    /// Collect execution telemetry.
    pub profile: bool,
}

impl CheckOptions {
    /// The options fingerprint for cache keying: every knob that can
    /// change a [`FileResult`] (or its telemetry side channel) for the
    /// same source bytes must land in here.
    pub fn fingerprint(&self) -> u64 {
        let phase = match self.phase {
            Phase::Translation => 0u64,
            Phase::Execution => 1,
            Phase::All => 2,
        };
        let engine = match self.engine {
            Engine::Tree => 0u64,
            Engine::Bytecode => 1,
        };
        phase | (engine << 2) | ((self.profile as u64) << 3)
    }
}

/// Wall-clock spans around each pipeline phase of one file's check
/// (zero for phases that did not run).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Reading the file from disk.
    pub read: Duration,
    /// Lexing.
    pub lex: Duration,
    /// Parsing.
    pub parse: Duration,
    /// Name resolution.
    pub resolve: Duration,
    /// Translation-phase analysis.
    pub analyze: Duration,
    /// Bytecode lowering.
    pub compile: Duration,
    /// Execution.
    pub execute: Duration,
}

impl PhaseStats {
    /// Sum of all phase spans.
    pub fn total(&self) -> Duration {
        self.read
            + self.lex
            + self.parse
            + self.resolve
            + self.analyze
            + self.compile
            + self.execute
    }

    /// Accumulate another file's spans into this aggregate.
    pub fn add(&mut self, other: &PhaseStats) {
        self.read += other.read;
        self.lex += other.lex;
        self.parse += other.parse;
        self.resolve += other.resolve;
        self.analyze += other.analyze;
        self.compile += other.compile;
        self.execute += other.execute;
    }

    /// The human `--stats` line.
    pub fn render_human(&self, label: &str) -> String {
        format!(
            "{label}: stats: read {:?}, lex {:?}, parse {:?}, resolve {:?}, analyze {:?}, \
             compile {:?}, execute {:?}, total {:?}",
            self.read,
            self.lex,
            self.parse,
            self.resolve,
            self.analyze,
            self.compile,
            self.execute,
            self.total()
        )
    }

    /// One JSON object (`"file": null` marks the per-run aggregate).
    pub fn render_json(&self, file: Option<&str>, files: usize) -> String {
        let mut out = String::from("{\"type\": \"stats\", \"file\": ");
        match file {
            Some(f) => out.push_str(&cundef_ub::json::escaped(f)),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ", \"files\": {files}, \"read_ns\": {}, \"lex_ns\": {}, \"parse_ns\": {}, \
             \"resolve_ns\": {}, \"analyze_ns\": {}, \"compile_ns\": {}, \"execute_ns\": {}, \
             \"total_ns\": {}}}",
            self.read.as_nanos(),
            self.lex.as_nanos(),
            self.parse.as_nanos(),
            self.resolve.as_nanos(),
            self.analyze.as_nanos(),
            self.compile.as_nanos(),
            self.execute.as_nanos(),
            self.total().as_nanos(),
        );
        out
    }
}

/// Everything one file's check produced: the structured result for the
/// renderer, phase times for `--stats`, telemetry for `--profile`.
///
/// `Clone` exists so batch-mode duplicate paths and serve cache hits
/// can replay a result without re-checking.
#[derive(Debug, Clone)]
pub struct Checked {
    /// The structured verdict + findings for the render seam.
    pub result: FileResult,
    /// Per-phase wall times.
    pub stats: PhaseStats,
    /// Execution telemetry, when profiling was on.
    pub profile: Option<ExecProfile>,
}

impl Checked {
    /// An engine-failure result (unreadable file, parse error, …).
    pub fn failed(path: &str, stats: PhaseStats, error: String) -> Checked {
        Checked {
            result: FileResult {
                path: path.to_string(),
                verdict: Verdict::EngineFailure,
                findings: Vec::new(),
                notes: Vec::new(),
                success: None,
                exit: None,
                errors: vec![error],
            },
            stats,
            profile: None,
        }
    }
}

/// Check one file from disk: read, then [`check_source`].
pub fn check_file(path: &str, opts: &CheckOptions) -> Checked {
    let mut stats = PhaseStats::default();
    let t = Instant::now();
    let source = match std::fs::read_to_string(path) {
        Err(e) => {
            stats.read = t.elapsed();
            return Checked::failed(path, stats, format!("cannot read file: {e}"));
        }
        Ok(source) => source,
    };
    stats.read = t.elapsed();
    check_source(path, &source, stats, opts)
}

/// Check already-loaded source text: lex/parse/resolve, then
/// [`check_parsed`]. `path` is the label used in every diagnostic.
pub fn check_source(
    path: &str,
    source: &str,
    mut stats: PhaseStats,
    opts: &CheckOptions,
) -> Checked {
    let unit = match parser::parse_timed(source) {
        Err(parse_err) => {
            return Checked::failed(path, stats, parse_err.to_string());
        }
        Ok((unit, timing)) => {
            stats.lex = timing.lex;
            stats.parse = timing.parse;
            stats.resolve = timing.resolve;
            unit
        }
    };
    check_parsed(path, &unit, stats, opts)
}

/// Check an already-parsed translation unit: translation-phase
/// analysis, then (when selected) execution. This is the warm-cache
/// entry point — a serve request whose source bytes are known but
/// whose options fingerprint is new starts here.
pub fn check_parsed(
    path: &str,
    unit: &TranslationUnit,
    mut stats: PhaseStats,
    opts: &CheckOptions,
) -> Checked {
    let mut result = FileResult {
        path: path.to_string(),
        verdict: Verdict::Defined,
        findings: Vec::new(),
        notes: Vec::new(),
        success: None,
        exit: None,
        errors: Vec::new(),
    };

    // Translation phase: static checks over the resolved AST. A file
    // that fails here is statically doomed — running it would duplicate
    // (or shadow) the report, so execution is skipped.
    if opts.phase != Phase::Execution {
        let t = Instant::now();
        let findings = analyze(unit);
        stats.analyze = t.elapsed();
        if !findings.is_empty() {
            result.verdict = Verdict::Undefined;
            result.findings = findings.iter().map(|f| f.to_diagnostic()).collect();
            return Checked {
                result,
                stats,
                profile: None,
            };
        }
        if opts.phase == Phase::Translation {
            result.success = Some("translation phase found no undefined behavior".to_string());
            return Checked {
                result,
                stats,
                profile: None,
            };
        }
    }

    // Execution phase. A unit with no `main` has nothing to execute —
    // that is a note, not an error, so translation-only inputs (headers,
    // libraries) pass through the default pipeline cleanly.
    if unit.function(kw::MAIN).is_none() {
        let note = if opts.phase == Phase::All {
            "nothing to execute (no `main`); translation phase found no undefined behavior"
        } else {
            "nothing to execute (translation unit defines no `main`)"
        };
        result.success = Some(note.to_string());
        return Checked {
            result,
            stats,
            profile: None,
        };
    }
    let mut interp = Interp::with_engine(unit, Limits::default(), opts.engine);
    if opts.profile {
        interp.enable_profiling();
    }
    let outcome = if opts.engine == Engine::Bytecode {
        let t = Instant::now();
        let compiled = compile_unit(unit);
        stats.compile = t.elapsed();
        let t = Instant::now();
        let outcome = interp.run_main_compiled(&compiled);
        stats.execute = t.elapsed();
        outcome
    } else {
        let t = Instant::now();
        let outcome = interp.run_main();
        stats.execute = t.elapsed();
        outcome
    };
    // Implementation-defined conversion notes (§6.3.1.3:3 — narrowing
    // conversions this implementation resolves by two's-complement wrap)
    // print before the verdict: they describe defined behavior the
    // program relied on, whatever the verdict turns out to be.
    result.notes = interp.notes().to_vec();
    match outcome {
        Outcome::Completed(exit) => {
            result.success = Some(format!(
                "no undefined behavior detected (program returned {exit})"
            ));
            result.exit = Some(exit);
        }
        Outcome::Undefined(report) => {
            result.verdict = Verdict::Undefined;
            result.findings = vec![report.to_diagnostic()];
        }
        Outcome::Unsupported { message, loc } => {
            result.verdict = Verdict::EngineFailure;
            result
                .errors
                .push(format!("checker limitation at {loc}: {message}"));
        }
    }
    Checked {
        result,
        stats,
        profile: interp.profile(),
    }
}

/// Render one file's `--profile` telemetry (stderr, human-oriented but
/// stable enough to grep).
pub fn render_profile(path: &str, p: &ExecProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: profile: steps {}, ops {}, superinstruction hits {}",
        p.steps,
        p.ops_executed,
        p.superinstruction_hits()
    );
    let _ = writeln!(
        out,
        "{path}: profile: word fast-path {} hit / {} fallback{}",
        p.word_fast_hits,
        p.word_fast_fallbacks,
        match p.word_fast_hit_rate() {
            Some(r) => format!(" ({:.1}% hit)", r * 100.0),
            None => String::new(),
        }
    );
    let _ = writeln!(
        out,
        "{path}: profile: footprint elision {} elided / {} tree-fallback{}",
        p.elided_boundaries(),
        p.tree_fallback_ops(),
        match p.footprint_elision_rate() {
            Some(r) => format!(" ({:.1}% elided)", r * 100.0),
            None => String::new(),
        }
    );
    let _ = writeln!(
        out,
        "{path}: profile: objects {}, peak live bytes {}, heap allocs {} / frees {} / bytes {}",
        p.objects_allocated, p.peak_live_bytes, p.heap_allocs, p.heap_frees, p.heap_bytes_allocated
    );
    let _ = writeln!(
        out,
        "{path}: profile: arena {} recycled / {} grown{}, frame pool {} hit / {} miss{}",
        p.arena_recycles,
        p.arena_misses,
        match p.arena_recycle_rate() {
            Some(r) => format!(" ({:.1}% recycled)", r * 100.0),
            None => String::new(),
        },
        p.frame_pool_hits,
        p.frame_pool_misses,
        match p.frame_pool_hit_rate() {
            Some(r) => format!(" ({:.1}% hit)", r * 100.0),
            None => String::new(),
        }
    );
    if p.sweep_hits + p.sweep_fallbacks > 0 {
        let _ = writeln!(
            out,
            "{path}: profile: byte sweeps {} fused / {} fallback{}",
            p.sweep_hits,
            p.sweep_fallbacks,
            match p.sweep_hit_rate() {
                Some(r) => format!(" ({:.1}% fused)", r * 100.0),
                None => String::new(),
            }
        );
    }
    let mut ops: Vec<(&str, u64)> = p.op_counts.iter().map(|(m, n)| (*m, *n)).collect();
    ops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !ops.is_empty() {
        let top: Vec<String> = ops
            .iter()
            .take(8)
            .map(|(m, n)| format!("{m}×{n}"))
            .collect();
        let _ = writeln!(out, "{path}: profile: top ops: {}", top.join(" "));
    }
    out
}
