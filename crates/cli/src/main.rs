//! `cundef` — a kcc-style undefined-behavior checker.
//!
//! Runs `.c` snippets (in the supported subset) through a two-phase
//! pipeline mirroring the paper's split between the *semantics of
//! translation* and the *semantics of execution*:
//!
//! 1. **translation phase** — `cundef-analysis` checks the resolved AST
//!    for statically detectable undefinedness (declaration/scope rules,
//!    the type system, label/switch constraints, undefined constant
//!    expressions). Files with no `main` — headers, libraries, code you
//!    cannot run — are fully checkable here.
//! 2. **execution phase** — the `cundef-semantics` evaluator runs the
//!    program and gets stuck on dynamic undefinedness.
//!
//! `--phase translation|execution|all` selects the phases (default
//! `all`). A file whose translation phase already found undefinedness is
//! *not* executed: it is statically doomed, and running it would only
//! duplicate or shadow the report.
//!
//! With `--batch`, many files are checked in parallel across worker
//! threads. Each worker owns its own parser, analyzer, and evaluator
//! (translation units share nothing — each carries its own interner and
//! arenas), so the files partition cleanly and verdicts and output are
//! identical to a sequential run, in input order.

use cundef_analysis::analyze;
use cundef_semantics::eval::{Engine, Interp, Limits, Outcome};
use cundef_semantics::intern::kw;
use cundef_semantics::parser;
use cundef_ub::{catalog, catalog_counts, Detectability};
use std::fmt::Write as _;
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Print to stdout, ignoring broken pipes (`cundef … | head` must not
/// panic; the exit code still reflects the analysis).
macro_rules! say {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($t)*);
    };
}

/// Print to stderr, ignoring broken pipes.
macro_rules! complain {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stderr(), $($t)*);
    };
}

const USAGE: &str = "\
cundef — undefined-behavior checker for C snippets
(reproduction of `kcc` from \"Defining the Undefinedness of C\", PLDI 2015)

USAGE:
    cundef [OPTIONS] <FILE>...
    cundef fuzz [FUZZ OPTIONS]      (see `cundef fuzz --help`)

OPTIONS:
    --phase PHASE Which phase(s) to run: `translation` (static checks
                  only — works on files with no `main`), `execution`
                  (run the program), or `all` (default: translation
                  first; a statically doomed file is not executed)
    --engine E    Execution engine: `bytecode` (default — compile to a
                  flat instruction stream and dispatch) or `tree` (the
                  reference tree-walking evaluator); verdicts and
                  reports are byte-identical between the two
    --catalog     Print the paper's §5.2.1 catalog summary and exit
    --batch       Check the files in parallel across worker threads;
                  verdicts and output order are identical to a
                  sequential run
    --jobs N      Worker threads for --batch (default: the machine's
                  available parallelism)
    -q, --quiet   Only print reports, no per-file success lines
    -h, --help    Print this help
    --version     Print version

EXIT STATUS:
    0  every file checked clean in the selected phases
    1  undefined behavior was detected in at least one file
    2  usage error, unreadable file, or input outside the subset";

/// Which checking phases to run on each file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Static analysis only; nothing is executed.
    Translation,
    /// Execution only (the pre-analysis behavior).
    Execution,
    /// Translation first; execution only for files that pass it.
    All,
}

const FUZZ_USAGE: &str = "\
cundef fuzz — deterministic differential fuzzing sweep

Generates programs from a seed and cross-checks four oracles:
consteval-vs-eval on constant expressions, translation-phase verdicts
vs execution outcomes on statically doomed programs, exit codes of
UB-free programs (optionally against a native compiler), and
tree-walker-vs-bytecode engine parity on every generated program.
Output is byte-for-byte reproducible for a given seed/count,
independent of --jobs and shard layout.

USAGE:
    cundef fuzz [OPTIONS]

OPTIONS:
    --seed N         Sweep seed (default 42)
    --count N        Case indices to sweep (default 500)
    --shard I/M      Run only indices with index % M == I (machine-level
                     sharding; every shard sees every oracle)
    --jobs N         Worker threads (default: available parallelism)
    --cross-check    Also compile eligible defined cases with gcc/clang
                     from PATH and compare exit codes
    --trophy-dir D   Write minimized .c + .expected pairs for every
                     divergence into D
    --exits          Also print the `case I exit E` golden-snapshot log
                     for passing defined cases
    -h, --help       Print this help

EXIT STATUS:
    0  no divergence          1  at least one divergence    2  usage error";

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("fuzz") {
        raw.next();
        return fuzz_main(raw.collect());
    }
    drop(raw);
    let mut files = Vec::new();
    let mut quiet = false;
    let mut batch = false;
    let mut jobs: Option<usize> = None;
    let mut phase = Phase::All;
    let mut engine = Engine::default();
    let mut no_more_options = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if no_more_options {
            files.push(arg);
            continue;
        }
        match arg.as_str() {
            "--" => no_more_options = true,
            "--phase" => match args.next().as_deref() {
                Some("translation") => phase = Phase::Translation,
                Some("execution") => phase = Phase::Execution,
                Some("all") => phase = Phase::All,
                _ => {
                    complain!(
                        "error: `--phase` needs `translation`, `execution`, or `all`\n\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--engine" => match args.next().as_deref() {
                Some("tree") => engine = Engine::Tree,
                Some("bytecode") => engine = Engine::Bytecode,
                _ => {
                    complain!("error: `--engine` needs `tree` or `bytecode`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                say!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--version" => {
                say!("cundef {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--catalog" => {
                print_catalog_summary();
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "--batch" => batch = true,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                complain!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        complain!("error: no input files\n\n{USAGE}");
        return ExitCode::from(2);
    }
    if jobs.is_some() && !batch {
        complain!("error: `--jobs` only applies to `--batch` runs\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut any_undefined = false;
    let mut any_engine_failure = false;
    let mut emit = |r: &FileReport| {
        let _ = std::io::stdout().write_all(r.stdout.as_bytes());
        let _ = std::io::stderr().write_all(r.stderr.as_bytes());
        match r.verdict {
            Verdict::Defined => {}
            Verdict::Undefined => any_undefined = true,
            Verdict::EngineFailure => any_engine_failure = true,
        }
    };
    if batch {
        for r in &check_batch(&files, quiet, jobs, phase, engine) {
            emit(r);
        }
    } else {
        // Sequential mode streams: each verdict prints as its file
        // finishes, and nothing accumulates across files.
        for f in &files {
            emit(&check_file(f, quiet, phase, engine));
        }
    }
    if any_undefined {
        ExitCode::from(1)
    } else if any_engine_failure {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Defined,
    Undefined,
    EngineFailure,
}

/// The outcome of checking one file, with its rendered output buffered
/// so parallel workers never interleave and ordering matches the input.
struct FileReport {
    verdict: Verdict,
    stdout: String,
    stderr: String,
}

fn check_file(path: &str, quiet: bool, phase: Phase, engine: Engine) -> FileReport {
    let mut out = String::new();
    let mut err = String::new();
    let source = match std::fs::read_to_string(path) {
        Err(e) => {
            let _ = writeln!(err, "{path}: cannot read file: {e}");
            return FileReport {
                verdict: Verdict::EngineFailure,
                stdout: out,
                stderr: err,
            };
        }
        Ok(source) => source,
    };
    let unit = match parser::parse(&source) {
        Err(parse_err) => {
            let _ = writeln!(err, "{path}: {parse_err}");
            return FileReport {
                verdict: Verdict::EngineFailure,
                stdout: out,
                stderr: err,
            };
        }
        Ok(unit) => unit,
    };

    // Translation phase: static checks over the resolved AST. A file
    // that fails here is statically doomed — running it would duplicate
    // (or shadow) the report, so execution is skipped.
    if phase != Phase::Execution {
        let findings = analyze(&unit);
        if !findings.is_empty() {
            let _ = writeln!(out, "{path}:");
            for finding in &findings {
                let _ = write!(out, "{}", finding.to_diagnostic());
            }
            return FileReport {
                verdict: Verdict::Undefined,
                stdout: out,
                stderr: err,
            };
        }
        if phase == Phase::Translation {
            if !quiet {
                let _ = writeln!(out, "{path}: translation phase found no undefined behavior");
            }
            return FileReport {
                verdict: Verdict::Defined,
                stdout: out,
                stderr: err,
            };
        }
    }

    // Execution phase. A unit with no `main` has nothing to execute —
    // that is a note, not an error, so translation-only inputs (headers,
    // libraries) pass through the default pipeline cleanly.
    if unit.function(kw::MAIN).is_none() {
        if !quiet {
            let note = if phase == Phase::All {
                "nothing to execute (no `main`); translation phase found no undefined behavior"
            } else {
                "nothing to execute (translation unit defines no `main`)"
            };
            let _ = writeln!(out, "{path}: {note}");
        }
        return FileReport {
            verdict: Verdict::Defined,
            stdout: out,
            stderr: err,
        };
    }
    let mut interp = Interp::with_engine(&unit, Limits::default(), engine);
    let outcome = interp.run_main();
    // Implementation-defined conversion notes (§6.3.1.3:3 — narrowing
    // conversions this implementation resolves by two's-complement wrap)
    // print before the verdict: they describe defined behavior the
    // program relied on, whatever the verdict turns out to be.
    for (loc, msg) in interp.notes() {
        let _ = writeln!(out, "{path}:{loc}: note: {msg}");
    }
    let verdict = match outcome {
        Outcome::Completed(exit) => {
            if !quiet {
                let _ = writeln!(
                    out,
                    "{path}: no undefined behavior detected (program returned {exit})"
                );
            }
            Verdict::Defined
        }
        Outcome::Undefined(report) => {
            let _ = writeln!(out, "{path}:");
            let _ = write!(out, "{}", report.to_diagnostic());
            Verdict::Undefined
        }
        Outcome::Unsupported { message, loc } => {
            let _ = writeln!(err, "{path}: checker limitation at {loc}: {message}");
            Verdict::EngineFailure
        }
    };
    FileReport {
        verdict,
        stdout: out,
        stderr: err,
    }
}

/// Check `files` across worker threads. Work is handed out by an atomic
/// cursor; every worker runs its own parser + analyzer + evaluator, so
/// nothing is shared but the results vector. Reports come back in input
/// order.
fn check_batch(
    files: &[String],
    quiet: bool,
    jobs: Option<usize>,
    phase: Phase,
    engine: Engine,
) -> Vec<FileReport> {
    let workers = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(files.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<FileReport>>> = files.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= files.len() {
                    break;
                }
                let report = check_file(&files[i], quiet, phase, engine);
                *slots[i].lock().expect("result slot poisoned") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every file checked")
        })
        .collect()
}

/// The `cundef fuzz` subcommand: run one deterministic sweep.
fn fuzz_main(args: Vec<String>) -> ExitCode {
    let mut cfg = cundef_fuzz::SweepConfig::new(42, 500);
    cfg.jobs = 0; // available parallelism
    let mut print_exits = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                say!("{FUZZ_USAGE}");
                return ExitCode::SUCCESS;
            }
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => cfg.seed = n,
                None => {
                    complain!("error: `--seed` needs an integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--count" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => cfg.count = n,
                _ => {
                    complain!("error: `--count` needs a positive integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--shard" => {
                let parsed = it.next().and_then(|v| {
                    let (i, m) = v.split_once('/')?;
                    Some((i.parse::<u64>().ok()?, m.parse::<u64>().ok()?))
                });
                match parsed {
                    Some((i, m)) if m > 0 && i < m => cfg.shard = Some((i, m)),
                    _ => {
                        complain!("error: `--shard` needs I/M with I < M\n\n{FUZZ_USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.jobs = n,
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--cross-check" => cfg.cross_check = true,
            "--trophy-dir" => match it.next() {
                Some(d) => cfg.trophy_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    complain!("error: `--trophy-dir` needs a directory\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--exits" => print_exits = true,
            other => {
                complain!("error: unknown fuzz option `{other}`\n\n{FUZZ_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = cundef_fuzz::run_sweep(&cfg);
    let _ = std::io::stdout().write_all(report.render().as_bytes());
    if print_exits {
        let _ = std::io::stdout().write_all(report.render_exits().as_bytes());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_catalog_summary() {
    let counts = catalog_counts();
    say!(
        "C11 undefined behaviors (per \"Defining the Undefinedness of C\", §5.2.1): {}",
        counts.total
    );
    say!(
        "  statically detectable:   {}",
        counts.statically_detectable
    );
    say!(
        "  dynamically detectable:  {}",
        counts.dynamically_detectable
    );
    let covered: Vec<_> = catalog()
        .iter()
        .filter(|e| e.detected_by.is_some())
        .collect();
    say!(
        "  covered by a detector:   {} ({} dynamic, {} static)",
        covered.len(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Dynamic)
            .count(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Static)
            .count(),
    );
}
