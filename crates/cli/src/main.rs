//! `cundef` — a kcc-style undefined-behavior checker.
//!
//! Runs `.c` snippets (in the supported subset) through a two-phase
//! pipeline mirroring the paper's split between the *semantics of
//! translation* and the *semantics of execution*:
//!
//! 1. **translation phase** — `cundef-analysis` checks the resolved AST
//!    for statically detectable undefinedness (declaration/scope rules,
//!    the type system, label/switch constraints, undefined constant
//!    expressions). Files with no `main` — headers, libraries, code you
//!    cannot run — are fully checkable here.
//! 2. **execution phase** — the `cundef-semantics` evaluator runs the
//!    program and gets stuck on dynamic undefinedness.
//!
//! `--phase translation|execution|all` selects the phases (default
//! `all`). A file whose translation phase already found undefinedness is
//! *not* executed: it is statically doomed, and running it would only
//! duplicate or shadow the report.
//!
//! Checking and rendering are split: each file reduces to a
//! [`FileResult`] (the structured verdict + findings + notes), and a
//! pluggable [`Renderer`] — selected by `--format human|json|sarif` —
//! turns results into bytes. `--stats[=json]` reports per-phase wall
//! times and `--profile` the engines' execution telemetry, both on
//! stderr so every stdout format stays clean.
//!
//! With `--batch`, many files are checked in parallel across worker
//! threads. Each worker owns its own parser, analyzer, and evaluator
//! (translation units share nothing — each carries its own interner and
//! arenas); rendering happens on the main thread in input order, so
//! verdicts and output are byte-identical to a sequential run.

use cundef_analysis::analyze;
use cundef_semantics::eval::{Engine, Interp, Limits, Outcome};
use cundef_semantics::intern::kw;
use cundef_semantics::{compile_unit, parser, ExecProfile};
use cundef_ub::render::{
    FileResult, HumanRenderer, JsonRenderer, Rendered, Renderer, SarifRenderer, Verdict,
};
use cundef_ub::{catalog, catalog_counts, Detectability};
use std::fmt::Write as _;
use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Print to stdout, ignoring broken pipes (`cundef … | head` must not
/// panic; the exit code still reflects the analysis).
macro_rules! say {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($t)*);
    };
}

/// Print to stderr, ignoring broken pipes.
macro_rules! complain {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stderr(), $($t)*);
    };
}

const USAGE: &str = "\
cundef — undefined-behavior checker for C snippets
(reproduction of `kcc` from \"Defining the Undefinedness of C\", PLDI 2015)

USAGE:
    cundef [OPTIONS] <FILE>...
    cundef fuzz [FUZZ OPTIONS]      (see `cundef fuzz --help`)

OPTIONS:
    --phase PHASE Which phase(s) to run: `translation` (static checks
                  only — works on files with no `main`), `execution`
                  (run the program), or `all` (default: translation
                  first; a statically doomed file is not executed)
    --engine E    Execution engine: `bytecode` (default — compile to a
                  flat instruction stream and dispatch) or `tree` (the
                  reference tree-walking evaluator); verdicts and
                  reports are byte-identical between the two
    --format F    Output format: `human` (default, kcc-style reports),
                  `json` (JSON Lines: one event object per line), or
                  `sarif` (one SARIF 2.1.0 document on stdout, rule
                  metadata from the §5.2.1 catalog)
    --stats[=json] Report per-phase wall times (read, lex, parse,
                  resolve, analyze, compile, execute) per file and
                  aggregated, on stderr; `=json` for machine readers
    --profile     Collect and report execution telemetry on stderr:
                  opcode histogram, superinstruction and word fast-path
                  hit rates, footprint-elision rate, steps, memory
                  counters (off by default and costs nothing when off)
    --catalog     Print the paper's §5.2.1 catalog summary and exit
    --batch       Check the files in parallel across worker threads;
                  verdicts and output order are identical to a
                  sequential run
    --jobs N      Worker threads for --batch (default: the machine's
                  available parallelism)
    -q, --quiet   Only print reports, no per-file success lines
    -h, --help    Print this help
    --version     Print version

EXIT STATUS:
    0  every file checked clean in the selected phases
    1  undefined behavior was detected in at least one file
    2  usage error, unreadable file, or input outside the subset";

/// Which checking phases to run on each file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Static analysis only; nothing is executed.
    Translation,
    /// Execution only (the pre-analysis behavior).
    Execution,
    /// Translation first; execution only for files that pass it.
    All,
}

/// Output format behind `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// `--stats` reporting mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Human,
    Json,
}

const FUZZ_USAGE: &str = "\
cundef fuzz — deterministic differential fuzzing sweep

Generates programs from a seed and cross-checks five oracles:
consteval-vs-eval on constant expressions, translation-phase verdicts
vs execution outcomes on statically doomed programs, exit codes of
UB-free programs (optionally against a native compiler),
tree-walker-vs-bytecode engine parity on every generated program, and
JSON-renderer round-trips against the human verdict.
Output is byte-for-byte reproducible for a given seed/count,
independent of --jobs and shard layout.

USAGE:
    cundef fuzz [OPTIONS]

OPTIONS:
    --seed N         Sweep seed (default 42)
    --count N        Case indices to sweep (default 500)
    --shard I/M      Run only indices with index % M == I (machine-level
                     sharding; every shard sees every oracle)
    --jobs N         Worker threads (default: available parallelism)
    --cross-check    Also compile eligible defined cases with gcc/clang
                     from PATH and compare exit codes
    --trophy-dir D   Write minimized .c + .expected pairs for every
                     divergence into D
    --exits          Also print the `case I exit E` golden-snapshot log
                     for passing defined cases
    -h, --help       Print this help

EXIT STATUS:
    0  no divergence          1  at least one divergence    2  usage error";

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("fuzz") {
        raw.next();
        return fuzz_main(raw.collect());
    }
    drop(raw);
    let mut files = Vec::new();
    let mut quiet = false;
    let mut batch = false;
    let mut jobs: Option<usize> = None;
    let mut phase = Phase::All;
    let mut engine = Engine::default();
    let mut format = Format::Human;
    let mut stats = StatsMode::Off;
    let mut profile = false;
    let mut no_more_options = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if no_more_options {
            files.push(arg);
            continue;
        }
        match arg.as_str() {
            "--" => no_more_options = true,
            "--phase" => match args.next().as_deref() {
                Some("translation") => phase = Phase::Translation,
                Some("execution") => phase = Phase::Execution,
                Some("all") => phase = Phase::All,
                _ => {
                    complain!(
                        "error: `--phase` needs `translation`, `execution`, or `all`\n\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--engine" => match args.next().as_deref() {
                Some("tree") => engine = Engine::Tree,
                Some("bytecode") => engine = Engine::Bytecode,
                _ => {
                    complain!("error: `--engine` needs `tree` or `bytecode`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => {
                    complain!("error: `--format` needs `human`, `json`, or `sarif`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--stats" => stats = StatsMode::Human,
            "--stats=json" => stats = StatsMode::Json,
            "--profile" => profile = true,
            "-h" | "--help" => {
                say!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--version" => {
                say!("cundef {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--catalog" => {
                print_catalog_summary();
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "--batch" => batch = true,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                complain!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        complain!("error: no input files\n\n{USAGE}");
        return ExitCode::from(2);
    }
    if jobs.is_some() && !batch {
        complain!("error: `--jobs` only applies to `--batch` runs\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let opts = CheckOptions {
        phase,
        engine,
        profile,
    };
    let mut renderer: Box<dyn Renderer> = match format {
        Format::Human => Box::new(HumanRenderer::new(quiet)),
        Format::Json => Box::new(JsonRenderer::new()),
        Format::Sarif => Box::new(SarifRenderer::new(env!("CARGO_PKG_VERSION"))),
    };
    let mut any_undefined = false;
    let mut any_engine_failure = false;
    let mut agg = PhaseStats::default();
    let mut emit = |checked: &Checked| {
        let Rendered { stdout, stderr } = renderer.render_file(&checked.result);
        let _ = std::io::stdout().write_all(stdout.as_bytes());
        let _ = std::io::stderr().write_all(stderr.as_bytes());
        match stats {
            StatsMode::Off => {}
            StatsMode::Human => {
                complain!("{}", checked.stats.render_human(&checked.result.path));
            }
            StatsMode::Json => {
                complain!(
                    "{}",
                    checked.stats.render_json(Some(&checked.result.path), 1)
                );
            }
        }
        agg.add(&checked.stats);
        if let Some(p) = &checked.profile {
            let _ = std::io::stderr().write_all(render_profile(&checked.result.path, p).as_bytes());
        }
        match checked.result.verdict {
            Verdict::Defined => {}
            Verdict::Undefined => any_undefined = true,
            Verdict::EngineFailure => any_engine_failure = true,
        }
    };
    if batch {
        for checked in &check_batch(&files, jobs, &opts) {
            emit(checked);
        }
    } else {
        // Sequential mode streams: each verdict prints as its file
        // finishes, and nothing accumulates across files (the SARIF
        // renderer buffers internally by design — one document per run).
        for f in &files {
            emit(&check_file(f, &opts));
        }
    }
    let tail = renderer.finish();
    let _ = std::io::stdout().write_all(tail.as_bytes());
    if stats != StatsMode::Off && files.len() > 1 {
        match stats {
            StatsMode::Human => {
                complain!(
                    "{}",
                    agg.render_human(&format!("total ({} files)", files.len()))
                );
            }
            StatsMode::Json => {
                complain!("{}", agg.render_json(None, files.len()));
            }
            StatsMode::Off => unreachable!(),
        }
    }
    if any_undefined {
        ExitCode::from(1)
    } else if any_engine_failure {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Per-file checking knobs (everything except rendering).
#[derive(Debug, Clone, Copy)]
struct CheckOptions {
    phase: Phase,
    engine: Engine,
    profile: bool,
}

/// Wall-clock spans around each pipeline phase of one file's check
/// (zero for phases that did not run).
#[derive(Debug, Clone, Copy, Default)]
struct PhaseStats {
    read: Duration,
    lex: Duration,
    parse: Duration,
    resolve: Duration,
    analyze: Duration,
    compile: Duration,
    execute: Duration,
}

impl PhaseStats {
    fn total(&self) -> Duration {
        self.read
            + self.lex
            + self.parse
            + self.resolve
            + self.analyze
            + self.compile
            + self.execute
    }

    fn add(&mut self, other: &PhaseStats) {
        self.read += other.read;
        self.lex += other.lex;
        self.parse += other.parse;
        self.resolve += other.resolve;
        self.analyze += other.analyze;
        self.compile += other.compile;
        self.execute += other.execute;
    }

    fn render_human(&self, label: &str) -> String {
        format!(
            "{label}: stats: read {:?}, lex {:?}, parse {:?}, resolve {:?}, analyze {:?}, \
             compile {:?}, execute {:?}, total {:?}",
            self.read,
            self.lex,
            self.parse,
            self.resolve,
            self.analyze,
            self.compile,
            self.execute,
            self.total()
        )
    }

    /// One JSON object (`"file": null` marks the per-run aggregate).
    fn render_json(&self, file: Option<&str>, files: usize) -> String {
        let mut out = String::from("{\"type\": \"stats\", \"file\": ");
        match file {
            Some(f) => out.push_str(&cundef_ub::json::escaped(f)),
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ", \"files\": {files}, \"read_ns\": {}, \"lex_ns\": {}, \"parse_ns\": {}, \
             \"resolve_ns\": {}, \"analyze_ns\": {}, \"compile_ns\": {}, \"execute_ns\": {}, \
             \"total_ns\": {}}}",
            self.read.as_nanos(),
            self.lex.as_nanos(),
            self.parse.as_nanos(),
            self.resolve.as_nanos(),
            self.analyze.as_nanos(),
            self.compile.as_nanos(),
            self.execute.as_nanos(),
            self.total().as_nanos(),
        );
        out
    }
}

/// Everything one file's check produced: the structured result for the
/// renderer, phase times for `--stats`, telemetry for `--profile`.
struct Checked {
    result: FileResult,
    stats: PhaseStats,
    profile: Option<ExecProfile>,
}

impl Checked {
    fn failed(path: &str, stats: PhaseStats, error: String) -> Checked {
        Checked {
            result: FileResult {
                path: path.to_string(),
                verdict: Verdict::EngineFailure,
                findings: Vec::new(),
                notes: Vec::new(),
                success: None,
                exit: None,
                errors: vec![error],
            },
            stats,
            profile: None,
        }
    }
}

fn check_file(path: &str, opts: &CheckOptions) -> Checked {
    let mut stats = PhaseStats::default();
    let t = Instant::now();
    let source = match std::fs::read_to_string(path) {
        Err(e) => {
            stats.read = t.elapsed();
            return Checked::failed(path, stats, format!("cannot read file: {e}"));
        }
        Ok(source) => source,
    };
    stats.read = t.elapsed();
    let unit = match parser::parse_timed(&source) {
        Err(parse_err) => {
            return Checked::failed(path, stats, parse_err.to_string());
        }
        Ok((unit, timing)) => {
            stats.lex = timing.lex;
            stats.parse = timing.parse;
            stats.resolve = timing.resolve;
            unit
        }
    };
    let mut result = FileResult {
        path: path.to_string(),
        verdict: Verdict::Defined,
        findings: Vec::new(),
        notes: Vec::new(),
        success: None,
        exit: None,
        errors: Vec::new(),
    };

    // Translation phase: static checks over the resolved AST. A file
    // that fails here is statically doomed — running it would duplicate
    // (or shadow) the report, so execution is skipped.
    if opts.phase != Phase::Execution {
        let t = Instant::now();
        let findings = analyze(&unit);
        stats.analyze = t.elapsed();
        if !findings.is_empty() {
            result.verdict = Verdict::Undefined;
            result.findings = findings.iter().map(|f| f.to_diagnostic()).collect();
            return Checked {
                result,
                stats,
                profile: None,
            };
        }
        if opts.phase == Phase::Translation {
            result.success = Some("translation phase found no undefined behavior".to_string());
            return Checked {
                result,
                stats,
                profile: None,
            };
        }
    }

    // Execution phase. A unit with no `main` has nothing to execute —
    // that is a note, not an error, so translation-only inputs (headers,
    // libraries) pass through the default pipeline cleanly.
    if unit.function(kw::MAIN).is_none() {
        let note = if opts.phase == Phase::All {
            "nothing to execute (no `main`); translation phase found no undefined behavior"
        } else {
            "nothing to execute (translation unit defines no `main`)"
        };
        result.success = Some(note.to_string());
        return Checked {
            result,
            stats,
            profile: None,
        };
    }
    let mut interp = Interp::with_engine(&unit, Limits::default(), opts.engine);
    if opts.profile {
        interp.enable_profiling();
    }
    let outcome = if opts.engine == Engine::Bytecode {
        let t = Instant::now();
        let compiled = compile_unit(&unit);
        stats.compile = t.elapsed();
        let t = Instant::now();
        let outcome = interp.run_main_compiled(&compiled);
        stats.execute = t.elapsed();
        outcome
    } else {
        let t = Instant::now();
        let outcome = interp.run_main();
        stats.execute = t.elapsed();
        outcome
    };
    // Implementation-defined conversion notes (§6.3.1.3:3 — narrowing
    // conversions this implementation resolves by two's-complement wrap)
    // print before the verdict: they describe defined behavior the
    // program relied on, whatever the verdict turns out to be.
    result.notes = interp.notes().to_vec();
    match outcome {
        Outcome::Completed(exit) => {
            result.success = Some(format!(
                "no undefined behavior detected (program returned {exit})"
            ));
            result.exit = Some(exit);
        }
        Outcome::Undefined(report) => {
            result.verdict = Verdict::Undefined;
            result.findings = vec![report.to_diagnostic()];
        }
        Outcome::Unsupported { message, loc } => {
            result.verdict = Verdict::EngineFailure;
            result
                .errors
                .push(format!("checker limitation at {loc}: {message}"));
        }
    }
    Checked {
        result,
        stats,
        profile: interp.profile(),
    }
}

/// Render one file's `--profile` telemetry (stderr, human-oriented but
/// stable enough to grep).
fn render_profile(path: &str, p: &ExecProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: profile: steps {}, ops {}, superinstruction hits {}",
        p.steps,
        p.ops_executed,
        p.superinstruction_hits()
    );
    let _ = writeln!(
        out,
        "{path}: profile: word fast-path {} hit / {} fallback{}",
        p.word_fast_hits,
        p.word_fast_fallbacks,
        match p.word_fast_hit_rate() {
            Some(r) => format!(" ({:.1}% hit)", r * 100.0),
            None => String::new(),
        }
    );
    let _ = writeln!(
        out,
        "{path}: profile: footprint elision {} elided / {} tree-fallback{}",
        p.elided_boundaries(),
        p.tree_fallback_ops(),
        match p.footprint_elision_rate() {
            Some(r) => format!(" ({:.1}% elided)", r * 100.0),
            None => String::new(),
        }
    );
    let _ = writeln!(
        out,
        "{path}: profile: objects {}, peak live bytes {}, heap allocs {} / frees {} / bytes {}",
        p.objects_allocated, p.peak_live_bytes, p.heap_allocs, p.heap_frees, p.heap_bytes_allocated
    );
    let _ = writeln!(
        out,
        "{path}: profile: arena {} recycled / {} grown{}, frame pool {} hit / {} miss{}",
        p.arena_recycles,
        p.arena_misses,
        match p.arena_recycle_rate() {
            Some(r) => format!(" ({:.1}% recycled)", r * 100.0),
            None => String::new(),
        },
        p.frame_pool_hits,
        p.frame_pool_misses,
        match p.frame_pool_hit_rate() {
            Some(r) => format!(" ({:.1}% hit)", r * 100.0),
            None => String::new(),
        }
    );
    if p.sweep_hits + p.sweep_fallbacks > 0 {
        let _ = writeln!(
            out,
            "{path}: profile: byte sweeps {} fused / {} fallback{}",
            p.sweep_hits,
            p.sweep_fallbacks,
            match p.sweep_hit_rate() {
                Some(r) => format!(" ({:.1}% fused)", r * 100.0),
                None => String::new(),
            }
        );
    }
    let mut ops: Vec<(&str, u64)> = p.op_counts.iter().map(|(m, n)| (*m, *n)).collect();
    ops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !ops.is_empty() {
        let top: Vec<String> = ops
            .iter()
            .take(8)
            .map(|(m, n)| format!("{m}×{n}"))
            .collect();
        let _ = writeln!(out, "{path}: profile: top ops: {}", top.join(" "));
    }
    out
}

/// Check `files` across worker threads. Work is handed out by an atomic
/// cursor; every worker runs its own parser + analyzer + evaluator, so
/// nothing is shared but the results vector. Results come back in input
/// order and are rendered on the main thread, keeping every format's
/// output byte-identical to a sequential run.
fn check_batch(files: &[String], jobs: Option<usize>, opts: &CheckOptions) -> Vec<Checked> {
    let workers = jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(files.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Checked>>> = files.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= files.len() {
                    break;
                }
                let checked = check_file(&files[i], opts);
                *slots[i].lock().expect("result slot poisoned") = Some(checked);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every file checked")
        })
        .collect()
}

/// The `cundef fuzz` subcommand: run one deterministic sweep.
fn fuzz_main(args: Vec<String>) -> ExitCode {
    let mut cfg = cundef_fuzz::SweepConfig::new(42, 500);
    cfg.jobs = 0; // available parallelism
    let mut print_exits = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                say!("{FUZZ_USAGE}");
                return ExitCode::SUCCESS;
            }
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => cfg.seed = n,
                None => {
                    complain!("error: `--seed` needs an integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--count" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => cfg.count = n,
                _ => {
                    complain!("error: `--count` needs a positive integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--shard" => {
                let parsed = it.next().and_then(|v| {
                    let (i, m) = v.split_once('/')?;
                    Some((i.parse::<u64>().ok()?, m.parse::<u64>().ok()?))
                });
                match parsed {
                    Some((i, m)) if m > 0 && i < m => cfg.shard = Some((i, m)),
                    _ => {
                        complain!("error: `--shard` needs I/M with I < M\n\n{FUZZ_USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.jobs = n,
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--cross-check" => cfg.cross_check = true,
            "--trophy-dir" => match it.next() {
                Some(d) => cfg.trophy_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    complain!("error: `--trophy-dir` needs a directory\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--exits" => print_exits = true,
            other => {
                complain!("error: unknown fuzz option `{other}`\n\n{FUZZ_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = cundef_fuzz::run_sweep(&cfg);
    let _ = std::io::stdout().write_all(report.render().as_bytes());
    if print_exits {
        let _ = std::io::stdout().write_all(report.render_exits().as_bytes());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_catalog_summary() {
    let counts = catalog_counts();
    say!(
        "C11 undefined behaviors (per \"Defining the Undefinedness of C\", §5.2.1): {}",
        counts.total
    );
    say!(
        "  statically detectable:   {}",
        counts.statically_detectable
    );
    say!(
        "  dynamically detectable:  {}",
        counts.dynamically_detectable
    );
    let covered: Vec<_> = catalog()
        .iter()
        .filter(|e| e.detected_by.is_some())
        .collect();
    say!(
        "  covered by a detector:   {} ({} dynamic, {} static)",
        covered.len(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Dynamic)
            .count(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Static)
            .count(),
    );
}
