//! `cundef` — a kcc-style dynamic undefined-behavior checker.
//!
//! Runs `.c` snippets (in the supported subset) through the
//! `cundef-semantics` pipeline and renders any undefined behavior as a
//! kcc-style report carrying the catalog code and C11 section reference.

use cundef_semantics::{check_translation_unit, Outcome};
use cundef_ub::{catalog, catalog_counts, Detectability};
use std::io::Write;
use std::process::ExitCode;

/// Print to stdout, ignoring broken pipes (`cundef … | head` must not
/// panic; the exit code still reflects the analysis).
macro_rules! say {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($t)*);
    };
}

/// Like [`say!`] without the trailing newline.
macro_rules! say_raw {
    ($($t:tt)*) => {
        let _ = write!(std::io::stdout(), $($t)*);
    };
}

/// Print to stderr, ignoring broken pipes.
macro_rules! complain {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stderr(), $($t)*);
    };
}

const USAGE: &str = "\
cundef — dynamic undefined-behavior checker for C snippets
(reproduction of `kcc` from \"Defining the Undefinedness of C\", PLDI 2015)

USAGE:
    cundef [OPTIONS] <FILE>...

OPTIONS:
    --catalog     Print the paper's §5.2.1 catalog summary and exit
    -q, --quiet   Only print reports, no per-file success lines
    -h, --help    Print this help
    --version     Print version

EXIT STATUS:
    0  every file ran to completion with no undefined behavior
    1  undefined behavior was detected in at least one file
    2  usage error, unreadable file, or input outside the subset";

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut quiet = false;
    let mut no_more_options = false;
    for arg in std::env::args().skip(1) {
        if no_more_options {
            files.push(arg);
            continue;
        }
        match arg.as_str() {
            "--" => no_more_options = true,
            "-h" | "--help" => {
                say!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--version" => {
                say!("cundef {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--catalog" => {
                print_catalog_summary();
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            other if other.starts_with('-') => {
                complain!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        complain!("error: no input files\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let mut any_undefined = false;
    let mut any_engine_failure = false;
    for file in &files {
        match check_file(file, quiet) {
            FileResult::Defined => {}
            FileResult::Undefined => any_undefined = true,
            FileResult::EngineFailure => any_engine_failure = true,
        }
    }
    if any_undefined {
        ExitCode::from(1)
    } else if any_engine_failure {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

enum FileResult {
    Defined,
    Undefined,
    EngineFailure,
}

fn check_file(path: &str, quiet: bool) -> FileResult {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            complain!("{path}: cannot read file: {e}");
            return FileResult::EngineFailure;
        }
    };
    match check_translation_unit(&source) {
        Err(parse_err) => {
            complain!("{path}: {parse_err}");
            FileResult::EngineFailure
        }
        Ok(Outcome::Completed(exit)) => {
            if !quiet {
                say!("{path}: no undefined behavior detected (program returned {exit})");
            }
            FileResult::Defined
        }
        Ok(Outcome::Undefined(err)) => {
            say!("{path}:");
            say_raw!("{}", err.to_diagnostic());
            FileResult::Undefined
        }
        Ok(Outcome::Unsupported { message, loc }) => {
            complain!("{path}: checker limitation at {loc}: {message}");
            FileResult::EngineFailure
        }
    }
}

fn print_catalog_summary() {
    let counts = catalog_counts();
    say!(
        "C11 undefined behaviors (per \"Defining the Undefinedness of C\", §5.2.1): {}",
        counts.total
    );
    say!(
        "  statically detectable:   {}",
        counts.statically_detectable
    );
    say!(
        "  dynamically detectable:  {}",
        counts.dynamically_detectable
    );
    let covered: Vec<_> = catalog()
        .iter()
        .filter(|e| e.detected_by.is_some())
        .collect();
    say!(
        "  covered by a detector:   {} ({} dynamic, {} static)",
        covered.len(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Dynamic)
            .count(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Static)
            .count(),
    );
}
