//! `cundef` — a kcc-style undefined-behavior checker.
//!
//! Runs `.c` snippets (in the supported subset) through a two-phase
//! pipeline mirroring the paper's split between the *semantics of
//! translation* and the *semantics of execution*:
//!
//! 1. **translation phase** — `cundef-analysis` checks the resolved AST
//!    for statically detectable undefinedness (declaration/scope rules,
//!    the type system, label/switch constraints, undefined constant
//!    expressions). Files with no `main` — headers, libraries, code you
//!    cannot run — are fully checkable here.
//! 2. **execution phase** — the `cundef-semantics` evaluator runs the
//!    program and gets stuck on dynamic undefinedness.
//!
//! `--phase translation|execution|all` selects the phases (default
//! `all`). A file whose translation phase already found undefinedness is
//! *not* executed: it is statically doomed, and running it would only
//! duplicate or shadow the report.
//!
//! Checking and rendering are split: each file reduces to a
//! [`FileResult`](cundef_ub::render::FileResult) (the structured
//! verdict + findings + notes), and a pluggable
//! [`Renderer`] — selected by `--format human|json|sarif` —
//! turns results into bytes. `--stats[=json]` reports per-phase wall
//! times and `--profile` the engines' execution telemetry, both on
//! stderr so every stdout format stays clean. `--fail-on error|ub|never`
//! moves the exit-code threshold for CI gating without changing any
//! report.
//!
//! With `--batch`, many files are checked in parallel across a worker
//! pool (see [`pool`]); duplicate paths are checked once and replayed.
//! `cundef serve` keeps that pool alive as a daemon behind a
//! content-hash incremental cache (see [`serve`]).

mod check;
mod pool;
mod serve;

use check::{check_file, render_profile, CheckOptions, Checked, FailOn, Format, Phase, PhaseStats};
use cundef_semantics::eval::Engine;
use cundef_ub::render::{HumanRenderer, JsonRenderer, Rendered, Renderer, SarifRenderer, Verdict};
use cundef_ub::{catalog, catalog_counts, Detectability};
use pool::check_batch;
use serve::parse_engine;
use std::io::Write;
use std::process::ExitCode;

/// Print to stdout, ignoring broken pipes (`cundef … | head` must not
/// panic; the exit code still reflects the analysis).
macro_rules! say {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($t)*);
    };
}

/// Print to stderr, ignoring broken pipes.
macro_rules! complain {
    ($($t:tt)*) => {
        let _ = writeln!(std::io::stderr(), $($t)*);
    };
}

const USAGE: &str = "\
cundef — undefined-behavior checker for C snippets
(reproduction of `kcc` from \"Defining the Undefinedness of C\", PLDI 2015)

USAGE:
    cundef [OPTIONS] <FILE>...
    cundef serve [SERVE OPTIONS]    (see `cundef serve --help`)
    cundef fuzz [FUZZ OPTIONS]      (see `cundef fuzz --help`)

OPTIONS:
    --phase PHASE Which phase(s) to run: `translation` (static checks
                  only — works on files with no `main`), `execution`
                  (run the program), or `all` (default: translation
                  first; a statically doomed file is not executed)
    --engine E    Execution engine: `bytecode` (default — compile to a
                  flat instruction stream and dispatch) or `tree` (the
                  reference tree-walking evaluator); verdicts and
                  reports are byte-identical between the two
    --format F    Output format: `human` (default, kcc-style reports),
                  `json` (JSON Lines: one event object per line), or
                  `sarif` (one SARIF 2.1.0 document on stdout, rule
                  metadata from the §5.2.1 catalog)
    --fail-on T   Exit-code threshold: `ub` (default — exit 1 on any
                  undefined file, 2 on engine failure), `error` (reports
                  still print, but only engine failures exit nonzero),
                  or `never` (always exit 0 once the run completes);
                  verdicts and reports are unaffected
    --stats[=json] Report per-phase wall times (read, lex, parse,
                  resolve, analyze, compile, execute) per file and
                  aggregated, on stderr; `=json` for machine readers
    --profile     Collect and report execution telemetry on stderr:
                  opcode histogram, superinstruction and word fast-path
                  hit rates, footprint-elision rate, steps, memory
                  counters (off by default and costs nothing when off)
    --catalog     Print the paper's §5.2.1 catalog summary and exit
    --batch       Check the files in parallel across worker threads;
                  verdicts and output order are identical to a
                  sequential run, and duplicate paths are checked once
    --jobs N      Worker threads for --batch (default: the machine's
                  available parallelism)
    -q, --quiet   Only print reports, no per-file success lines
    -h, --help    Print this help
    --version     Print version

EXIT STATUS:
    0  every file checked clean in the selected phases (or the
       `--fail-on` threshold demoted the failures)
    1  undefined behavior was detected in at least one file
    2  usage error, unreadable file, or input outside the subset";

/// `--stats` reporting mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Human,
    Json,
}

const SERVE_USAGE: &str = "\
cundef serve — long-running checking service with an incremental cache

Accepts translation units as JSONL requests on stdin and/or over a
local HTTP endpoint, shards them across a persistent worker pool, and
memoizes results in a content-hash cache so repeat traffic is nearly
free. Responses are byte-identical to one-shot `cundef` output for the
same file and options, in every format.

USAGE:
    cundef serve [OPTIONS]

REQUEST (one JSON object per stdin line, or POST /check body):
    {\"path\": \"examples/defined.c\"}            check a file on disk
    {\"source\": \"int main(void){return 0;}\"}   check inline source
    optional per-request fields: \"id\" (echoed), \"path\" (label for
    inline source), \"phase\", \"engine\", \"format\", \"quiet\",
    \"fail_on\", \"profile\"
    commands: {\"cmd\": \"stats\"}  {\"cmd\": \"shutdown\"}

HTTP (with --listen): POST /check (request object as body; rendered
    report as response body, verdict/exit/cache in X-Cundef-* headers),
    GET /stats, GET /health, POST /shutdown.

OPTIONS:
    --listen ADDR      Serve HTTP on ADDR (e.g. 127.0.0.1:8123; port 0
                       picks a free port; the bound address is printed
                       on stderr)
    --stdin            Service stdin-JSONL requests (the default when
                       --listen is not given; EOF shuts the daemon down)
    --jobs N           Worker threads (default: available parallelism)
    --cache-capacity N Entries per cache level (default 4096)
    --phase PHASE      Default phase for requests (as in `cundef`)
    --engine E         Default engine for requests
    --format F         Default format for requests
    --fail-on T        Default exit-code threshold for responses
    -q, --quiet        Default quiet flag for human-format responses
    -h, --help         Print this help

EXIT STATUS:
    0  clean shutdown          2  usage error or bind failure";

const FUZZ_USAGE: &str = "\
cundef fuzz — deterministic differential fuzzing sweep

Generates programs from a seed and cross-checks five oracles:
consteval-vs-eval on constant expressions, translation-phase verdicts
vs execution outcomes on statically doomed programs, exit codes of
UB-free programs (optionally against a native compiler),
tree-walker-vs-bytecode engine parity on every generated program, and
JSON-renderer round-trips against the human verdict.
Output is byte-for-byte reproducible for a given seed/count,
independent of --jobs and shard layout.

USAGE:
    cundef fuzz [OPTIONS]

OPTIONS:
    --seed N         Sweep seed (default 42)
    --count N        Case indices to sweep (default 500)
    --shard I/M      Run only indices with index % M == I (machine-level
                     sharding; every shard sees every oracle)
    --jobs N         Worker threads (default: available parallelism)
    --cross-check    Also compile eligible defined cases with gcc/clang
                     from PATH and compare exit codes
    --trophy-dir D   Write minimized .c + .expected pairs for every
                     divergence into D
    --exits          Also print the `case I exit E` golden-snapshot log
                     for passing defined cases
    --serve-replay   Replay the generated corpus through the serve
                     pipeline (cold + warm) and assert every response is
                     byte-identical to one-shot output (a sixth,
                     service-path oracle; skips the sweep)
    -h, --help       Print this help

EXIT STATUS:
    0  no divergence          1  at least one divergence    2  usage error";

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1).peekable();
    match raw.peek().map(String::as_str) {
        Some("fuzz") => {
            raw.next();
            return fuzz_main(raw.collect());
        }
        Some("serve") => {
            raw.next();
            return serve_main(raw.collect());
        }
        _ => {}
    }
    drop(raw);
    let mut files = Vec::new();
    let mut quiet = false;
    let mut batch = false;
    let mut jobs: Option<usize> = None;
    let mut phase = Phase::All;
    let mut engine = Engine::default();
    let mut format = Format::Human;
    let mut fail_on = FailOn::Ub;
    let mut stats = StatsMode::Off;
    let mut profile = false;
    let mut no_more_options = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if no_more_options {
            files.push(arg);
            continue;
        }
        match arg.as_str() {
            "--" => no_more_options = true,
            "--phase" => match args.next().as_deref().and_then(Phase::parse) {
                Some(p) => phase = p,
                None => {
                    complain!(
                        "error: `--phase` needs `translation`, `execution`, or `all`\n\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--engine" => match args.next().as_deref().and_then(parse_engine) {
                Some(e) => engine = e,
                None => {
                    complain!("error: `--engine` needs `tree` or `bytecode`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref().and_then(Format::parse) {
                Some(f) => format = f,
                None => {
                    complain!("error: `--format` needs `human`, `json`, or `sarif`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fail-on" => match args.next().as_deref().and_then(FailOn::parse) {
                Some(f) => fail_on = f,
                None => {
                    complain!("error: `--fail-on` needs `error`, `ub`, or `never`\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--stats" => stats = StatsMode::Human,
            "--stats=json" => stats = StatsMode::Json,
            "--profile" => profile = true,
            "-h" | "--help" => {
                say!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--version" => {
                say!("cundef {}", env!("CARGO_PKG_VERSION"));
                return ExitCode::SUCCESS;
            }
            "--catalog" => {
                print_catalog_summary();
                return ExitCode::SUCCESS;
            }
            "-q" | "--quiet" => quiet = true,
            "--batch" => batch = true,
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                complain!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        complain!("error: no input files\n\n{USAGE}");
        return ExitCode::from(2);
    }
    if jobs.is_some() && !batch {
        complain!("error: `--jobs` only applies to `--batch` runs\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let opts = CheckOptions {
        phase,
        engine,
        profile,
    };
    let mut renderer: Box<dyn Renderer> = match format {
        Format::Human => Box::new(HumanRenderer::new(quiet)),
        Format::Json => Box::new(JsonRenderer::new()),
        Format::Sarif => Box::new(SarifRenderer::new(env!("CARGO_PKG_VERSION"))),
    };
    let mut any_undefined = false;
    let mut any_engine_failure = false;
    let mut agg = PhaseStats::default();
    let mut emit = |checked: &Checked| {
        let Rendered { stdout, stderr } = renderer.render_file(&checked.result);
        let _ = std::io::stdout().write_all(stdout.as_bytes());
        let _ = std::io::stderr().write_all(stderr.as_bytes());
        match stats {
            StatsMode::Off => {}
            StatsMode::Human => {
                complain!("{}", checked.stats.render_human(&checked.result.path));
            }
            StatsMode::Json => {
                complain!(
                    "{}",
                    checked.stats.render_json(Some(&checked.result.path), 1)
                );
            }
        }
        agg.add(&checked.stats);
        if let Some(p) = &checked.profile {
            let _ = std::io::stderr().write_all(render_profile(&checked.result.path, p).as_bytes());
        }
        match checked.result.verdict {
            Verdict::Defined => {}
            Verdict::Undefined => any_undefined = true,
            Verdict::EngineFailure => any_engine_failure = true,
        }
    };
    if batch {
        for checked in &check_batch(&files, jobs, &opts) {
            emit(checked);
        }
    } else {
        // Sequential mode streams: each verdict prints as its file
        // finishes, and nothing accumulates across files (the SARIF
        // renderer buffers internally by design — one document per run).
        for f in &files {
            emit(&check_file(f, &opts));
        }
    }
    let tail = renderer.finish();
    let _ = std::io::stdout().write_all(tail.as_bytes());
    if stats != StatsMode::Off && files.len() > 1 {
        match stats {
            StatsMode::Human => {
                complain!(
                    "{}",
                    agg.render_human(&format!("total ({} files)", files.len()))
                );
            }
            StatsMode::Json => {
                complain!("{}", agg.render_json(None, files.len()));
            }
            StatsMode::Off => unreachable!(),
        }
    }
    ExitCode::from(fail_on.exit_code(any_undefined, any_engine_failure))
}

/// The `cundef serve` subcommand: parse flags and run the daemon.
fn serve_main(args: Vec<String>) -> ExitCode {
    let mut cfg = serve::ServeConfig {
        opts: CheckOptions {
            phase: Phase::All,
            engine: Engine::default(),
            profile: false,
        },
        format: Format::Human,
        quiet: false,
        fail_on: FailOn::Ub,
        jobs: 0,
        cache_capacity: serve::DEFAULT_CACHE_CAPACITY,
        listen: None,
        stdin: false,
    };
    let mut stdin_explicit = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                say!("{SERVE_USAGE}");
                return ExitCode::SUCCESS;
            }
            "--listen" => match it.next() {
                Some(addr) => cfg.listen = Some(addr),
                None => {
                    complain!("error: `--listen` needs an address\n\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--stdin" => stdin_explicit = true,
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.jobs = n,
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--cache-capacity" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.cache_capacity = n,
                _ => {
                    complain!(
                        "error: `--cache-capacity` needs a positive integer\n\n{SERVE_USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--phase" => match it.next().as_deref().and_then(Phase::parse) {
                Some(p) => cfg.opts.phase = p,
                None => {
                    complain!(
                        "error: `--phase` needs `translation`, `execution`, or `all`\n\n{SERVE_USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--engine" => match it.next().as_deref().and_then(parse_engine) {
                Some(e) => cfg.opts.engine = e,
                None => {
                    complain!("error: `--engine` needs `tree` or `bytecode`\n\n{SERVE_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().as_deref().and_then(Format::parse) {
                Some(f) => cfg.format = f,
                None => {
                    complain!(
                        "error: `--format` needs `human`, `json`, or `sarif`\n\n{SERVE_USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--fail-on" => match it.next().as_deref().and_then(FailOn::parse) {
                Some(f) => cfg.fail_on = f,
                None => {
                    complain!(
                        "error: `--fail-on` needs `error`, `ub`, or `never`\n\n{SERVE_USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "-q" | "--quiet" => cfg.quiet = true,
            other => {
                complain!("error: unknown serve option `{other}`\n\n{SERVE_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    cfg.stdin = stdin_explicit || cfg.listen.is_none();
    ExitCode::from(serve::run_serve(cfg))
}

/// The `cundef fuzz` subcommand: run one deterministic sweep.
fn fuzz_main(args: Vec<String>) -> ExitCode {
    let mut cfg = cundef_fuzz::SweepConfig::new(42, 500);
    cfg.jobs = 0; // available parallelism
    let mut print_exits = false;
    let mut serve_replay = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                say!("{FUZZ_USAGE}");
                return ExitCode::SUCCESS;
            }
            "--seed" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => cfg.seed = n,
                None => {
                    complain!("error: `--seed` needs an integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--count" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => cfg.count = n,
                _ => {
                    complain!("error: `--count` needs a positive integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--shard" => {
                let parsed = it.next().and_then(|v| {
                    let (i, m) = v.split_once('/')?;
                    Some((i.parse::<u64>().ok()?, m.parse::<u64>().ok()?))
                });
                match parsed {
                    Some((i, m)) if m > 0 && i < m => cfg.shard = Some((i, m)),
                    _ => {
                        complain!("error: `--shard` needs I/M with I < M\n\n{FUZZ_USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.jobs = n,
                _ => {
                    complain!("error: `--jobs` needs a positive integer\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--cross-check" => cfg.cross_check = true,
            "--trophy-dir" => match it.next() {
                Some(d) => cfg.trophy_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    complain!("error: `--trophy-dir` needs a directory\n\n{FUZZ_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--exits" => print_exits = true,
            "--serve-replay" => serve_replay = true,
            other => {
                complain!("error: unknown fuzz option `{other}`\n\n{FUZZ_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if serve_replay {
        return if serve::serve_replay(cfg.seed, cfg.count) {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    let report = cundef_fuzz::run_sweep(&cfg);
    let _ = std::io::stdout().write_all(report.render().as_bytes());
    if print_exits {
        let _ = std::io::stdout().write_all(report.render_exits().as_bytes());
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn print_catalog_summary() {
    let counts = catalog_counts();
    say!(
        "C11 undefined behaviors (per \"Defining the Undefinedness of C\", §5.2.1): {}",
        counts.total
    );
    say!(
        "  statically detectable:   {}",
        counts.statically_detectable
    );
    say!(
        "  dynamically detectable:  {}",
        counts.dynamically_detectable
    );
    let covered: Vec<_> = catalog()
        .iter()
        .filter(|e| e.detected_by.is_some())
        .collect();
    say!(
        "  covered by a detector:   {} ({} dynamic, {} static)",
        covered.len(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Dynamic)
            .count(),
        covered
            .iter()
            .filter(|e| e.detect == Detectability::Static)
            .count(),
    );
}
