//! A persistent worker pool — the `--batch`/`--jobs` machinery,
//! generalized so one scheduler serves both the one-shot batch driver
//! and the long-running `cundef serve` daemon.
//!
//! The pool is a shared FIFO of boxed jobs drained by `workers` OS
//! threads. Submission is lock + push + notify; workers park on a
//! condvar when the queue is dry. There is no per-job allocation
//! beyond the closure box, and no result plumbing — jobs communicate
//! through whatever channel or slot their submitter chose, which keeps
//! the pool reusable for batch slots (index-addressed `Mutex<Option>`)
//! and serve responses (per-request `mpsc` channels) alike.

use crate::check::{check_file, CheckOptions, Checked};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between submitters and workers.
struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// No further jobs will be submitted; workers drain and exit.
    closed: bool,
}

/// A fixed-size pool of worker threads draining a shared job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads (minimum 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock().expect("pool queue poisoned");
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break job;
                            }
                            if q.closed {
                                return;
                            }
                            q = shared.available.wait(q).expect("pool queue poisoned");
                        }
                    };
                    job();
                })
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// The machine's available parallelism (the `--jobs` default).
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Enqueue a job. Panics if called after [`WorkerPool::join`].
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().expect("pool queue poisoned");
        assert!(!q.closed, "submit to a closed pool");
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.available.notify_one();
    }

    /// Close the queue, run every remaining job, and join the workers.
    pub fn join(mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue poisoned");
            q.closed = true;
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // A dropped (not joined) pool still shuts its workers down.
        {
            if let Ok(mut q) = self.shared.queue.lock() {
                q.closed = true;
            }
        }
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Check `files` across the pool's workers. Every worker runs its own
/// parser + analyzer + evaluator (translation units share nothing), so
/// nothing is shared but the result slots. Results come back in input
/// order for the main thread to render, keeping every format's output
/// byte-identical to a sequential run.
///
/// Duplicate paths are checked **once**: each repeated occurrence
/// replays a clone of the first occurrence's result. Checking is
/// deterministic for fixed bytes + options, so the replay is
/// byte-identical to what a redundant re-check would have printed —
/// the run is just `O(unique)` instead of `O(inputs)`.
pub fn check_batch(files: &[String], jobs: Option<usize>, opts: &CheckOptions) -> Vec<Checked> {
    // Unique paths in first-occurrence order; map every input index to
    // its unique slot.
    let mut slot_of_path: HashMap<&str, usize> = HashMap::with_capacity(files.len());
    let mut unique: Vec<&String> = Vec::with_capacity(files.len());
    let slot_of_input: Vec<usize> = files
        .iter()
        .map(|f| {
            *slot_of_path.entry(f.as_str()).or_insert_with(|| {
                unique.push(f);
                unique.len() - 1
            })
        })
        .collect();

    let workers = jobs
        .unwrap_or_else(WorkerPool::default_workers)
        .min(unique.len().max(1));
    let slots: Arc<Vec<Mutex<Option<Checked>>>> =
        Arc::new(unique.iter().map(|_| Mutex::new(None)).collect());
    let pool = WorkerPool::new(workers);
    for (i, path) in unique.iter().enumerate() {
        let slots = Arc::clone(&slots);
        let path = (*path).clone();
        let opts = *opts;
        pool.submit(move || {
            let checked = check_file(&path, &opts);
            *slots[i].lock().expect("result slot poisoned") = Some(checked);
        });
    }
    pool.join();
    let results: Vec<Checked> = slots
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("result slot poisoned")
                .clone()
                .expect("every file checked")
        })
        .collect();
    slot_of_input
        .into_iter()
        .map(|i| results[i].clone())
        .collect()
}
