//! Criterion-style benchmark suite over the generated corpus.
//!
//! Run with `cargo bench -p cundef-semantics`. Each corpus program is
//! measured twice: `parse/…` (lexer + parser + resolver only) and
//! `check/…` (the full pipeline including evaluation); the
//! analyzer-facing corpus is measured as `analyze/…` (the translation
//! phase over a pre-parsed unit, the hot path of
//! `cundef --phase translation` over a codebase). Results are written
//! to `BENCH_eval.json` at the workspace root, together with the
//! recorded pre-refactor baseline (`benches/baseline.json`) and the
//! per-benchmark speedup, so the performance trajectory is tracked in
//! the repository itself.
//!
//! Flags: `--test` (CI smoke mode: run once, no timing, no JSON),
//! `--samples N`, `--record-baseline` (rewrite `benches/baseline.json`
//! instead of `BENCH_eval.json`).

use cundef_bench::{black_box, corpus, measurements_json, parse_measurements, Criterion};
use cundef_semantics::eval::Engine;
use cundef_semantics::{check_translation_unit, compile_unit, parser, Interp, Limits};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/semantics -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("crates dir")
        .parent()
        .expect("workspace root")
        .to_path_buf()
}

fn main() {
    let mut c = Criterion::from_args();
    let record_baseline = std::env::args().any(|a| a == "--record-baseline");
    // `--min-check-geomean X` (used by CI): after a real run, fail unless
    // the geomean speedup of the `check/*` group vs the recorded baseline
    // is at least X. Guards against a refactor regressing the evaluator
    // by whole factors while tolerating runner-to-runner variance.
    let min_check_geomean = {
        let mut args = std::env::args();
        let mut found = None;
        while let Some(a) = args.next() {
            if a == "--min-check-geomean" {
                found = args.next().and_then(|v| v.parse::<f64>().ok());
            }
        }
        found
    };
    let programs = corpus::standard();
    let typed = corpus::typed();
    let mem = corpus::mem();
    let calls = corpus::calls();

    // The corpus exercises the *defined* fast path: a program that
    // aborts with UB mid-measurement would benchmark much less work, so
    // `checked` fails loudly — inside the timed closure, naming the
    // program — rather than letting a miscompiled fast path masquerade
    // as a speedup. (The assert costs one branch against a millisecond-
    // scale body.)
    fn checked(name: &str, source: &str) -> i64 {
        let outcome = check_translation_unit(source)
            .unwrap_or_else(|e| panic!("{name}: corpus program failed to parse: {e}"));
        outcome.exit_code().unwrap_or_else(|| {
            panic!("{name}: corpus program must run to completion, got {outcome:?}")
        })
    }

    for p in &programs {
        c.bench_function(&format!("parse/{}", p.name), |b| {
            b.iter(|| parser::parse(black_box(&p.source)).expect("corpus parses"))
        });
        c.bench_function(&format!("check/{}", p.name), |b| {
            b.iter(|| checked(&p.name, black_box(&p.source)))
        });
    }
    // The typed-scalar group: promotion-heavy and mixed-width programs
    // through the full pipeline, so the lattice's cost is tracked
    // separately from the historic all-`int` corpus.
    for p in &typed {
        c.bench_function(&format!("types/{}", p.name), |b| {
            b.iter(|| checked(&p.name, black_box(&p.source)))
        });
    }

    // The byte-model group: char sweeps, byte-sized heap churn, and
    // mixed-width access over the byte-addressable memory core.
    for p in &mem {
        c.bench_function(&format!("mem/{}", p.name), |b| {
            b.iter(|| checked(&p.name, black_box(&p.source)))
        });
    }

    // The call-machinery group: deep recursion through the full
    // pipeline, so frame construction/teardown cost is tracked apart
    // from the shallow-call program in `check/*`.
    for p in &calls {
        c.bench_function(&format!("calls/{}", p.name), |b| {
            b.iter(|| checked(&p.name, black_box(&p.source)))
        });
    }

    // The engine seam, measured apart: `exec/compile/*` is the cost of
    // lowering to bytecode (paid once per unit), `exec/run/*` is pure
    // bytecode execution over a pre-compiled unit, and `exec/tree/*` is
    // the reference tree-walker over the same unit — so compile overhead
    // is visible instead of smeared into `check/*`, and the engines'
    // gap is measured in one run under identical conditions.
    for p in programs.iter().chain(&typed).chain(&mem).chain(&calls) {
        let unit = parser::parse(&p.source).expect("corpus parses");
        c.bench_function(&format!("exec/compile/{}", p.name), |b| {
            b.iter(|| compile_unit(black_box(&unit)))
        });
        let compiled = compile_unit(&unit);
        c.bench_function(&format!("exec/run/{}", p.name), |b| {
            b.iter(|| {
                let out =
                    Interp::new(black_box(&unit), Limits::default()).run_main_compiled(&compiled);
                out.exit_code()
                    .unwrap_or_else(|| panic!("{}: UB mid-measurement: {out:?}", p.name))
            })
        });
        c.bench_function(&format!("exec/tree/{}", p.name), |b| {
            b.iter(|| {
                let out = Interp::with_engine(black_box(&unit), Limits::default(), Engine::Tree)
                    .run_main();
                out.exit_code()
                    .unwrap_or_else(|| panic!("{}: UB mid-measurement: {out:?}", p.name))
            })
        });
    }

    // Translation-phase throughput: the analyzer over pre-parsed units —
    // the hot path of `cundef --phase translation` across a codebase.
    // The standard corpus must stay analysis-clean (it is executed
    // above); the analysis corpus includes statically-violating programs
    // so reporting is measured too.
    for p in programs.iter().chain(&typed).chain(&mem).chain(&calls) {
        let unit = parser::parse(&p.source).expect("corpus parses");
        assert!(
            cundef_analysis::analyze(&unit).is_empty(),
            "{}: evaluator corpus must be analysis-clean",
            p.name
        );
    }
    for p in &corpus::analysis() {
        let unit = parser::parse(&p.source)
            .unwrap_or_else(|e| panic!("{}: analysis corpus failed to parse: {e}", p.name));
        c.bench_function(&format!("analyze/{}", p.name), |b| {
            b.iter(|| cundef_analysis::analyze(black_box(&unit)))
        });
    }

    if c.test_mode {
        return;
    }

    let baseline_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("benches/baseline.json");
    if record_baseline {
        // Note: describes how the file was produced, not which engine it
        // measured — anyone re-recording on their machine measures the
        // evaluator as of their checkout.
        let json = format!(
            "{{\n  \"note\": \"baseline recorded by `cargo bench -p cundef-semantics -- \
             --record-baseline`; BENCH_eval.json speedups are relative to this file, so \
             re-record it before comparing across machines or commits\",\n  \
             \"benchmarks\": {}\n}}\n",
            c.summary_json()
        );
        std::fs::write(&baseline_path, json).expect("write baseline.json");
        eprintln!("recorded baseline to {}", baseline_path.display());
        return;
    }

    let mut out = String::from("{\n  \"suite\": \"eval\",\n");
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo bench -p cundef-semantics\","
    );
    let _ = writeln!(out, "  \"benchmarks\": {},", c.summary_json());

    let baseline_json = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = parse_measurements(&baseline_json);
    if baseline.is_empty() {
        out.push_str("  \"baseline\": null\n");
    } else {
        // Carry the baseline file's own provenance note through, so the
        // comparison is labeled by whatever was actually recorded.
        let note = baseline_json
            .split("\"note\":")
            .nth(1)
            .and_then(|rest| rest.split('"').nth(1))
            .unwrap_or("benches/baseline.json");
        let _ = writeln!(
            out,
            "  \"baseline\": {{\n    \"source\": \"{note}\",\n    \"benchmarks\": {}\n  }},",
            measurements_json(&baseline)
        );
        out.push_str("  \"speedup_vs_baseline\": {");
        let mut ratios = Vec::new();
        let mut first = true;
        for b in &baseline {
            let Some(cur) = c.results().iter().find(|m| m.name == b.name) else {
                continue;
            };
            let ratio = b.median_ns / cur.median_ns;
            ratios.push(ratio);
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {:.2}", b.name, ratio);
        }
        if !ratios.is_empty() {
            let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            let _ = write!(out, ",\n    \"geomean\": {geomean:.2}");
        }
        out.push_str("\n  }\n");
    }
    out.push_str("}\n");

    let out_path = workspace_root().join("BENCH_eval.json");
    std::fs::write(&out_path, out).expect("write BENCH_eval.json");
    eprintln!("wrote {}", out_path.display());

    if let Some(min) = min_check_geomean {
        let mut ratios = Vec::new();
        for b in baseline.iter().filter(|b| b.name.starts_with("check/")) {
            if let Some(cur) = c.results().iter().find(|m| m.name == b.name) {
                ratios.push(b.median_ns / cur.median_ns);
            }
        }
        assert!(
            !ratios.is_empty(),
            "--min-check-geomean requires check/* entries in benches/baseline.json"
        );
        let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        eprintln!("check/* geomean speedup vs recorded baseline: {geomean:.2} (floor {min})");
        if geomean < min {
            eprintln!(
                "FAIL: the evaluator's check/* geomean fell below the floor — \
                 the refactor regressed the hot path"
            );
            std::process::exit(1);
        }
    }
}
