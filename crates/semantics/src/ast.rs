//! Abstract syntax for the supported C subset, arena-allocated.
//!
//! The AST is deliberately close to the grammar of C11 §6.5–§6.8 for the
//! constructs it covers; every expression node carries the [`SourceLoc`]
//! of its principal operator so diagnostics can point at the exact
//! undefined operation.
//!
//! Nodes live in two flat arenas owned by the [`TranslationUnit`]
//! (`exprs: Vec<Expr>`, `stmts: Vec<Stmt>`) and refer to each other by
//! index ([`ExprId`], [`StmtId`]) instead of `Box` pointers, and
//! identifiers are interned [`Symbol`]s instead of `String`s. Parsing a
//! unit therefore performs O(1) large allocations instead of one per
//! node, and walking the tree touches contiguous memory.

use crate::ctype::{CInt, IntTy};
use crate::intern::{Interner, Symbol};
use cundef_ub::SourceLoc;

/// Index of an [`Expr`] in its unit's expression arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(pub(crate) u32);

/// Index of a [`Stmt`] in its unit's statement arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StmtId(pub(crate) u32);

/// A type in the subset: an integer type of the LP64 lattice, `void`, or
/// finitely-nested pointers.
///
/// Arrays are not first-class types here; they exist only in declarations
/// (see [`Decl::array_size`]) and decay to pointers everywhere else,
/// mirroring C's usage. `void` is an incomplete type: it is legal behind a
/// pointer (`void *p`) and as a return/parameter-list marker, and the
/// translation-phase analyzer rejects objects declared with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// An integer type of the [`IntTy`] lattice (`_Bool`, `char`,
    /// signed/unsigned `short`/`int`/`long`/`long long`).
    Int(IntTy),
    /// The incomplete `void` type.
    Void,
    /// A pointer to another type in the subset.
    Ptr(Box<Ty>),
}

impl Ty {
    /// The plain `int` type, the subset's historic default.
    pub const INT: Ty = Ty::Int(IntTy::Int);

    /// Pointer depth: 0 for `int`/`void`, 1 for `int *`, 2 for `int **`, …
    pub fn ptr_depth(&self) -> u8 {
        match self {
            Ty::Int(_) | Ty::Void => 0,
            Ty::Ptr(inner) => 1 + inner.ptr_depth(),
        }
    }

    /// The non-pointer type at the bottom of the pointer chain.
    pub fn base(&self) -> &Ty {
        match self {
            Ty::Ptr(inner) => inner.base(),
            other => other,
        }
    }

    /// The scalar type at the bottom of the pointer chain, if it is an
    /// integer type (`None` for a `void` base).
    pub fn base_scalar(&self) -> Option<IntTy> {
        match self.base() {
            Ty::Int(it) => Some(*it),
            _ => None,
        }
    }
}

/// Type qualifiers attached to a declaration (C11 §6.7.3).
///
/// The evaluator is dynamically typed and ignores `volatile`; `const`
/// participates in both the static checker (assignment to a
/// `const`-qualified object) and the evaluator (writes through any lvalue
/// to an object *defined* const, §6.7.3:6), and `restrict` is only
/// meaningful on pointer types (§6.7.3:2 — the analyzer rejects the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quals {
    /// `const` appeared among the qualifiers.
    pub is_const: bool,
    /// `volatile` appeared among the qualifiers.
    pub is_volatile: bool,
    /// `restrict` appeared among the qualifiers.
    pub is_restrict: bool,
}

impl Quals {
    /// Whether any qualifier is present.
    pub fn any(self) -> bool {
        self.is_const || self.is_volatile || self.is_restrict
    }

    /// Union of two qualifier sets.
    pub fn merge(self, other: Quals) -> Quals {
        Quals {
            is_const: self.is_const || other.is_const,
            is_volatile: self.is_volatile || other.is_volatile,
            is_restrict: self.is_restrict || other.is_restrict,
        }
    }
}

/// A unary operator (C11 §6.5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

/// A binary arithmetic, shift, relational, or bitwise operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
}

/// An expression together with the source position of its operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Position of the principal token, for diagnostics.
    pub loc: SourceLoc,
}

/// The shape of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer or character constant, typed by the lexer (§6.4.4.1).
    IntLit(CInt),
    /// Identifier reference that the resolution pass could not bind to a
    /// declaration. Evaluating it reports an undeclared identifier — at
    /// runtime, so unreached dead code stays unreported, exactly as
    /// before slot resolution.
    Ident(Symbol),
    /// Identifier reference bound to a frame-relative slot by the
    /// resolution pass. The [`Symbol`] keeps the original spelling for
    /// diagnostics.
    Slot(SlotId, Symbol),
    /// Unary operator application.
    Unary(UnaryOp, ExprId),
    /// Binary operator application; both operands are unsequenced (§6.5:2).
    Binary(BinOp, ExprId, ExprId),
    /// Short-circuit `&&` with its sequence point (§6.5.13:4).
    LogicalAnd(ExprId, ExprId),
    /// Short-circuit `||` with its sequence point (§6.5.14:4).
    LogicalOr(ExprId, ExprId),
    /// `c ? t : f` with a sequence point after `c` (§6.5.15:4).
    Conditional(ExprId, ExprId, ExprId),
    /// Simple (`None`) or compound (`Some(op)`) assignment.
    Assign(ExprId, Option<BinOp>, ExprId),
    /// Prefix `++`/`--`; the `i64` is +1 or -1.
    PreIncDec(ExprId, i64),
    /// Postfix `++`/`--`; the `i64` is +1 or -1.
    PostIncDec(ExprId, i64),
    /// Pointer dereference `*e`.
    Deref(ExprId),
    /// Address-of `&e`.
    AddrOf(ExprId),
    /// Array subscript `a[i]`, identical to `*(a + i)` (§6.5.2.1:2).
    Index(ExprId, ExprId),
    /// Function call; argument evaluations are unsequenced (§6.5.2.2:10).
    Call(Symbol, Vec<ExprId>),
    /// Comma operator with its sequence point (§6.5.17:2).
    Comma(ExprId, ExprId),
    /// `sizeof ( type-name )` (§6.5.3.4) — a constant of type `size_t`
    /// (`unsigned long` on LP64).
    SizeofType(Ty),
    /// `sizeof unary-expression` (§6.5.3.4). The operand is *not*
    /// evaluated (the subset has no VLA-typed expressions to except);
    /// only its type is computed.
    SizeofExpr(ExprId),
    /// A cast `( type-name ) expr` (§6.5.4): conversion to an integer
    /// type, reinterpretation of a pointer's pointee type (the
    /// byte-addressable memory model's entry point for §6.5:7 effective
    /// types and §6.3.2.3:7 alignment), or a value-discarding `(void)`.
    Cast(Ty, ExprId),
}

/// A frame-relative variable slot assigned by the resolution pass.
///
/// At runtime each call frame owns a dense array of objects indexed by
/// slot, so a variable reference is a single array load instead of a
/// scan of scope name lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(pub(crate) u32);

impl SlotId {
    /// The slot index within its function's frame.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a slot id from a frame index. Parameters occupy slots
    /// `0..n_params` in declaration order; external passes (like the
    /// static analyzer) use this to mirror the resolver's layout.
    pub fn from_index(i: usize) -> SlotId {
        SlotId(u32::try_from(i).expect("fewer than 2^32 slots"))
    }
}

/// One declaration: `int x;`, `int x = e;`, `int a[N];`, `int *p;`, …
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Declared identifier.
    pub name: Symbol,
    /// Element (or scalar) type.
    pub ty: Ty,
    /// For arrays, the size expression (possibly a VLA size).
    pub array_size: Option<ExprId>,
    /// Scalar initializer, if any.
    pub init: Option<ExprId>,
    /// Brace-enclosed array initializer, if any.
    pub array_init: Option<Vec<ExprId>>,
    /// Qualifiers on the declared object's (outermost) type: the last
    /// `*`'s qualifiers for a pointer declarator, the base specifier's
    /// otherwise. `int * const p` has a const *pointer*; `const int x`
    /// has a const `int`.
    pub quals: Quals,
    /// `restrict` appeared qualifying the non-pointer base type of a
    /// pointer declarator (`restrict int *p`) — always a violation of
    /// §6.7.3:2, which only admits restrict on pointer-to-object types.
    pub base_restrict: bool,
    /// Position of the declared identifier.
    pub loc: SourceLoc,
    /// Frame slot assigned by the resolution pass.
    pub slot: SlotId,
    /// Whether the size expression is an integer constant expression
    /// (§6.6:6), precomputed by the resolver: selects the static
    /// (`ArraySizeNotPositive`) vs. VLA (`VlaSizeNotPositive`) form of
    /// the non-positive-size defect without re-walking the tree.
    pub const_size: bool,
    /// Set by the resolver when this declaration redeclares a name
    /// already declared in the same scope; executing it is reported as a
    /// checker limitation (the subset has no linkage rules to make
    /// redeclaration meaningful).
    pub redeclaration: bool,
}

/// A statement in the subset of C11 §6.8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration.
    Decl(Decl),
    /// Expression statement; its end is a full-expression boundary.
    Expr(ExprId),
    /// `if`/`else`.
    If(ExprId, StmtId, Option<StmtId>),
    /// `while` loop.
    While(ExprId, StmtId),
    /// `for` loop; all three header slots are optional.
    For(Option<StmtId>, Option<ExprId>, Option<ExprId>, StmtId),
    /// `return` with optional value; the location is the keyword's.
    Return(Option<ExprId>, SourceLoc),
    /// `break;`
    Break(SourceLoc),
    /// `continue;`
    Continue(SourceLoc),
    /// Compound statement; entering opens a scope, leaving ends the
    /// lifetimes of the objects declared inside (§6.2.4:6). The location
    /// is the opening brace's.
    Block(Vec<StmtId>, SourceLoc),
    /// `switch` statement (§6.8.4.2); the location is the keyword's.
    Switch(ExprId, StmtId, SourceLoc),
    /// `case e: stmt` label inside a `switch`; the expression must be an
    /// integer constant expression (§6.8.4.2:3). The location is the
    /// keyword's.
    Case(ExprId, StmtId, SourceLoc),
    /// `default: stmt` label inside a `switch`; the location is the
    /// keyword's.
    Default(StmtId, SourceLoc),
    /// `name: stmt` — an ordinary label (§6.8.1); the location is the
    /// label identifier's.
    Label(Symbol, StmtId, SourceLoc),
    /// `goto name;` (§6.8.6.1). Parsed and statically checked (label
    /// existence, duplicate labels, jumps into variably-modified scope);
    /// *executing* one is outside the modeled semantics.
    Goto(Symbol, SourceLoc),
    /// The empty statement `;`; the location is the semicolon's.
    Empty(SourceLoc),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: Symbol,
    /// Parameter type.
    pub ty: Ty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: Symbol,
    /// Parameters in declaration order (empty for `(void)`).
    pub params: Vec<Param>,
    /// Whether the return type is `void`.
    pub returns_void: bool,
    /// Pointer depth of the return type (`int *f(void)` has 1). Zero for
    /// plain `int` and for `void`.
    pub ret_ptr: u8,
    /// Scalar base of the return type (`long f(void)` has [`IntTy::Long`];
    /// also the pointee base for pointer returns). [`IntTy::Int`] for
    /// `void` functions, where it is meaningless.
    pub ret_scalar: IntTy,
    /// Whether the definition carries the `static` storage-class
    /// specifier (internal linkage, §6.2.2:3).
    pub is_static: bool,
    /// Qualifiers written *after* the parameter list (`int f(void)
    /// const`). C's grammar has no place for them; accepting them lets
    /// the analyzer diagnose the qualified function type (§6.7.3:9)
    /// instead of bailing with a parse error.
    pub fn_quals: Quals,
    /// Body statements.
    pub body: Vec<StmtId>,
    /// Position of the function name in its definition.
    pub loc: SourceLoc,
    /// Total number of frame slots (parameters + declarations), filled
    /// by the resolution pass.
    pub n_slots: u32,
    /// Labels defined in the body (`name: …`), in source order, collected
    /// by the resolution pass for the translation-phase analyzer.
    pub labels: Vec<(Symbol, SourceLoc)>,
    /// `goto` targets appearing in the body, in source order, collected
    /// by the resolution pass for the translation-phase analyzer.
    pub gotos: Vec<(Symbol, SourceLoc)>,
}

/// A parsed translation unit: a sequence of function definitions plus
/// the arenas and symbol table all of its nodes live in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TranslationUnit {
    /// The functions, in source order.
    pub functions: Vec<Function>,
    /// Expression arena; [`ExprId`]s index into it.
    pub exprs: Vec<Expr>,
    /// Statement arena; [`StmtId`]s index into it.
    pub stmts: Vec<Stmt>,
    /// Identifier table for the whole unit.
    pub interner: Interner,
    /// `symbol index -> function index`, built by the resolution pass;
    /// makes call-target lookup O(1) instead of a name scan per call.
    pub func_by_symbol: Vec<Option<u32>>,
}

impl TranslationUnit {
    /// The expression behind an id.
    #[inline]
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// The statement behind an id.
    #[inline]
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.0 as usize]
    }

    /// Append an expression to the arena.
    pub fn push_expr(&mut self, e: Expr) -> ExprId {
        let id = u32::try_from(self.exprs.len()).expect("fewer than 2^32 expressions");
        self.exprs.push(e);
        ExprId(id)
    }

    /// Append a statement to the arena.
    pub fn push_stmt(&mut self, s: Stmt) -> StmtId {
        let id = u32::try_from(self.stmts.len()).expect("fewer than 2^32 statements");
        self.stmts.push(s);
        StmtId(id)
    }

    /// Look up a function by interned name.
    pub fn function(&self, name: Symbol) -> Option<&Function> {
        self.func_by_symbol
            .get(name.index())
            .copied()
            .flatten()
            .map(|i| &self.functions[i as usize])
    }

    /// Look up a function by spelling (convenience for tests and tools).
    pub fn function_named(&self, name: &str) -> Option<&Function> {
        self.functions
            .iter()
            .find(|f| self.interner.resolve(f.name) == name)
    }

    /// The spelling of a function's name.
    pub fn name_of(&self, f: &Function) -> &str {
        self.interner.resolve(f.name)
    }
}
