//! Abstract syntax for the supported C subset.
//!
//! The AST is deliberately close to the grammar of C11 §6.5–§6.8 for the
//! constructs it covers; every expression node carries the [`SourceLoc`]
//! of its principal operator so diagnostics can point at the exact
//! undefined operation.

use cundef_ub::SourceLoc;

/// A type in the subset: `int`, or finitely-nested pointers to `int`.
///
/// Arrays are not first-class types here; they exist only in declarations
/// (see [`Decl::array_size`]) and decay to pointers everywhere else,
/// mirroring C's usage. `void` appears only as a parameter-list marker and
/// as a return type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// The 32-bit signed `int` type.
    Int,
    /// A pointer to another type in the subset.
    Ptr(Box<Ty>),
}

/// A unary operator (C11 §6.5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

/// A binary arithmetic, shift, relational, or bitwise operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
}

/// An expression together with the source position of its operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Position of the principal token, for diagnostics.
    pub loc: SourceLoc,
}

/// The shape of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer constant.
    IntLit(i64),
    /// Identifier reference.
    Ident(String),
    /// Unary operator application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operator application; both operands are unsequenced (§6.5:2).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&` with its sequence point (§6.5.13:4).
    LogicalAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit `||` with its sequence point (§6.5.14:4).
    LogicalOr(Box<Expr>, Box<Expr>),
    /// `c ? t : f` with a sequence point after `c` (§6.5.15:4).
    Conditional(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Simple (`None`) or compound (`Some(op)`) assignment.
    Assign(Box<Expr>, Option<BinOp>, Box<Expr>),
    /// Prefix `++`/`--`; the `i64` is +1 or -1.
    PreIncDec(Box<Expr>, i64),
    /// Postfix `++`/`--`; the `i64` is +1 or -1.
    PostIncDec(Box<Expr>, i64),
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// Array subscript `a[i]`, identical to `*(a + i)` (§6.5.2.1:2).
    Index(Box<Expr>, Box<Expr>),
    /// Function call; argument evaluations are unsequenced (§6.5.2.2:10).
    Call(String, Vec<Expr>),
    /// Comma operator with its sequence point (§6.5.17:2).
    Comma(Box<Expr>, Box<Expr>),
}

/// One declaration: `int x;`, `int x = e;`, `int a[N];`, `int *p;`, …
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Declared identifier.
    pub name: String,
    /// Element (or scalar) type.
    pub ty: Ty,
    /// For arrays, the size expression (possibly a VLA size).
    pub array_size: Option<Expr>,
    /// Scalar initializer, if any.
    pub init: Option<Expr>,
    /// Brace-enclosed array initializer, if any.
    pub array_init: Option<Vec<Expr>>,
    /// Position of the declared identifier.
    pub loc: SourceLoc,
}

/// A statement in the subset of C11 §6.8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration.
    Decl(Decl),
    /// Expression statement; its end is a full-expression boundary.
    Expr(Expr),
    /// `if`/`else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while` loop.
    While(Expr, Box<Stmt>),
    /// `for` loop; all three header slots are optional.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return` with optional value; the location is the keyword's.
    Return(Option<Expr>, SourceLoc),
    /// `break;`
    Break(SourceLoc),
    /// `continue;`
    Continue(SourceLoc),
    /// Compound statement; entering opens a scope, leaving ends the
    /// lifetimes of the objects declared inside (§6.2.4:6). The location
    /// is the opening brace's.
    Block(Vec<Stmt>, SourceLoc),
    /// The empty statement `;`; the location is the semicolon's.
    Empty(SourceLoc),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in declaration order (empty for `(void)`).
    pub params: Vec<Param>,
    /// Whether the return type is `void`.
    pub returns_void: bool,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Position of the function name in its definition.
    pub loc: SourceLoc,
}

/// A parsed translation unit: a sequence of function definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TranslationUnit {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

impl TranslationUnit {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}
