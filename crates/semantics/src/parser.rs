//! Recursive-descent parser for the supported C subset.
//!
//! The grammar follows C11's expression precedence exactly (§6.5.1–§6.5.17)
//! so that the sequencing structure the evaluator relies on — which
//! operands are siblings of which operators — matches the standard's.
//! Anything outside the subset is a [`ParseError`], never a silent
//! reinterpretation.

use crate::ast::{
    BinOp, Decl, Expr, ExprKind, Function, Param, Stmt, TranslationUnit, Ty, UnaryOp,
};
use crate::lexer::{lex, LexError, Tok, Token};
use cundef_ub::SourceLoc;
use std::fmt;

/// Why a source file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation, in terms of the supported subset.
    pub message: String,
    /// Where the parse failed.
    pub loc: SourceLoc,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            loc: e.loc,
        }
    }
}

const KEYWORDS: &[&str] = &[
    "int", "void", "if", "else", "while", "for", "return", "break", "continue", "goto",
];

/// Parse a whole translation unit (a sequence of function definitions).
///
/// # Examples
///
/// ```
/// use cundef_semantics::parser::parse;
///
/// let unit = parse("int main(void) { return 0; }").unwrap();
/// assert_eq!(unit.functions[0].name, "main");
///
/// let err = parse("int main(void) { goto l; }").unwrap_err();
/// assert!(err.message.contains("goto"));
/// ```
pub fn parse(source: &str) -> Result<TranslationUnit, ParseError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut unit = TranslationUnit::default();
    while !p.at_end() {
        unit.functions.push(p.function()?);
    }
    Ok(unit)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn loc(&self) -> SourceLoc {
        self.peek()
            .map(|t| t.loc)
            .unwrap_or_else(|| self.toks.last().map(|t| t.loc).unwrap_or_default())
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            loc: self.loc(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Punct(q), .. }) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<SourceLoc, ParseError> {
        let loc = self.loc();
        if self.eat_punct(p) {
            Ok(loc)
        } else {
            self.err(format!("expected `{p}`"))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw)
    }

    fn ident(&mut self) -> Result<(String, SourceLoc), ParseError> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Ident(s),
                loc,
            }) => {
                if KEYWORDS.contains(&s.as_str()) {
                    return self.err(format!("unexpected keyword `{s}`"));
                }
                self.pos += 1;
                Ok((s, loc))
            }
            _ => self.err("expected identifier"),
        }
    }

    // ----- declarations and functions -----

    fn pointer_suffix(&mut self, base: Ty) -> Ty {
        let mut ty = base;
        while self.eat_punct("*") {
            ty = Ty::Ptr(Box::new(ty));
        }
        ty
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let returns_void = if self.eat_keyword("void") {
            true
        } else if self.eat_keyword("int") {
            false
        } else {
            // `goto` and other unsupported statements surface here with a
            // tailored message; anything else gets the generic one.
            if self.peek_keyword("goto") {
                return self.err("`goto` is outside the supported subset");
            }
            return self.err("expected `int` or `void` at start of function definition");
        };
        // Pointer return types parse but are not tracked: values are
        // dynamically typed in the evaluator.
        while self.eat_punct("*") {}
        let (name, loc) = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.eat_keyword("void") {
                self.expect_punct(")")?;
            } else {
                loop {
                    if !self.eat_keyword("int") {
                        return self.err("expected `int` parameter type");
                    }
                    let ty = self.pointer_suffix(Ty::Int);
                    let (pname, _) = self.ident()?;
                    params.push(Param { name: pname, ty });
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
        }
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return self.err("unterminated function body");
            }
            body.push(self.stmt()?);
        }
        Ok(Function {
            name,
            params,
            returns_void,
            body,
            loc,
        })
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        // `int` already consumed by the caller.
        let ty = self.pointer_suffix(Ty::Int);
        let (name, loc) = self.ident()?;
        let mut array_size = None;
        if self.eat_punct("[") {
            if !matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Punct("]"),
                    ..
                })
            ) {
                array_size = Some(self.expr()?);
            } else {
                return self.err("array declarations need an explicit size");
            }
            self.expect_punct("]")?;
        }
        let mut init = None;
        let mut array_init = None;
        if self.eat_punct("=") {
            if self.eat_punct("{") {
                let mut items = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        items.push(self.assignment()?);
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                array_init = Some(items);
            } else {
                init = Some(self.assignment()?);
            }
        }
        self.expect_punct(";")?;
        if array_size.is_none() && array_init.is_some() {
            return self.err("brace initializers require an array declarator");
        }
        if array_size.is_some() && init.is_some() {
            // `int a[3] = 5;` violates §6.7.9:11; refuse it rather than
            // silently initializing element 0.
            return self.err("array initializers must be brace-enclosed");
        }
        Ok(Decl {
            name,
            ty,
            array_size,
            init,
            array_init,
            loc,
        })
    }

    // ----- statements -----

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.loc();
        if self.eat_punct(";") {
            return Ok(Stmt::Empty(loc));
        }
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                if self.at_end() {
                    return self.err("unterminated block");
                }
                body.push(self.stmt()?);
            }
            return Ok(Stmt::Block(body, loc));
        }
        if self.eat_keyword("int") {
            return Ok(Stmt::Decl(self.decl()?));
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_keyword("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Stmt::While(cond, Box::new(self.stmt()?)));
        }
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.eat_keyword("int") {
                Some(Box::new(Stmt::Decl(self.decl()?)))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Some(e)
            };
            return Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)));
        }
        if self.eat_keyword("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None, loc));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e), loc));
        }
        if self.eat_keyword("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(loc));
        }
        if self.eat_keyword("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(loc));
        }
        if self.peek_keyword("goto") {
            return self.err("`goto` is outside the supported subset");
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    // ----- expressions, by C11 precedence -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.assignment()?;
        while matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Punct(","),
                ..
            })
        ) {
            let loc = self.loc();
            self.pos += 1;
            let rhs = self.assignment()?;
            e = Expr {
                kind: ExprKind::Comma(Box::new(e), Box::new(rhs)),
                loc,
            };
        }
        Ok(e)
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Some(Token {
                tok: Tok::Punct(p), ..
            }) => match *p {
                "=" => Some(None),
                "+=" => Some(Some(BinOp::Add)),
                "-=" => Some(Some(BinOp::Sub)),
                "*=" => Some(Some(BinOp::Mul)),
                "/=" => Some(Some(BinOp::Div)),
                "%=" => Some(Some(BinOp::Rem)),
                "<<=" => Some(Some(BinOp::Shl)),
                ">>=" => Some(Some(BinOp::Shr)),
                "&=" => Some(Some(BinOp::BitAnd)),
                "^=" => Some(Some(BinOp::BitXor)),
                "|=" => Some(Some(BinOp::BitOr)),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            let loc = self.loc();
            self.pos += 1;
            let rhs = self.assignment()?;
            return Ok(Expr {
                kind: ExprKind::Assign(Box::new(lhs), op, Box::new(rhs)),
                loc,
            });
        }
        Ok(lhs)
    }

    fn conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Punct("?"),
                ..
            })
        ) {
            let loc = self.loc();
            self.pos += 1;
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.conditional()?;
            return Ok(Expr {
                kind: ExprKind::Conditional(Box::new(cond), Box::new(then), Box::new(els)),
                loc,
            });
        }
        Ok(cond)
    }

    /// Binary operators by precedence level, lowest first.
    fn binary(&mut self, level: usize) -> Result<Expr, ParseError> {
        const LEVELS: &[&[(&str, Option<BinOp>)]] = &[
            &[("||", None)],
            &[("&&", None)],
            &[("|", Some(BinOp::BitOr))],
            &[("^", Some(BinOp::BitXor))],
            &[("&", Some(BinOp::BitAnd))],
            &[("==", Some(BinOp::Eq)), ("!=", Some(BinOp::Ne))],
            &[
                ("<=", Some(BinOp::Le)),
                (">=", Some(BinOp::Ge)),
                ("<", Some(BinOp::Lt)),
                (">", Some(BinOp::Gt)),
            ],
            &[("<<", Some(BinOp::Shl)), (">>", Some(BinOp::Shr))],
            &[("+", Some(BinOp::Add)), ("-", Some(BinOp::Sub))],
            &[
                ("*", Some(BinOp::Mul)),
                ("/", Some(BinOp::Div)),
                ("%", Some(BinOp::Rem)),
            ],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        'scan: loop {
            for (p, op) in LEVELS[level] {
                if matches!(self.peek(), Some(Token { tok: Tok::Punct(q), .. }) if q == p) {
                    let loc = self.loc();
                    self.pos += 1;
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr {
                        kind: match op {
                            Some(op) => ExprKind::Binary(*op, Box::new(lhs), Box::new(rhs)),
                            None if *p == "&&" => {
                                ExprKind::LogicalAnd(Box::new(lhs), Box::new(rhs))
                            }
                            None => ExprKind::LogicalOr(Box::new(lhs), Box::new(rhs)),
                        },
                        loc,
                    };
                    continue 'scan;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        if self.eat_punct("++") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::PreIncDec(Box::new(e), 1),
                loc,
            });
        }
        if self.eat_punct("--") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::PreIncDec(Box::new(e), -1),
                loc,
            });
        }
        for (p, mk) in [
            ("-", Some(UnaryOp::Neg)),
            ("!", Some(UnaryOp::Not)),
            ("~", Some(UnaryOp::BitNot)),
            ("+", None),
        ] {
            if self.eat_punct(p) {
                let e = self.unary()?;
                return Ok(match mk {
                    Some(op) => Expr {
                        kind: ExprKind::Unary(op, Box::new(e)),
                        loc,
                    },
                    None => e, // unary plus only performs promotion
                });
            }
        }
        if self.eat_punct("*") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Deref(Box::new(e)),
                loc,
            });
        }
        if self.eat_punct("&") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::AddrOf(Box::new(e)),
                loc,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let loc = self.loc();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    loc,
                };
            } else if self.eat_punct("++") {
                e = Expr {
                    kind: ExprKind::PostIncDec(Box::new(e), 1),
                    loc,
                };
            } else if self.eat_punct("--") {
                e = Expr {
                    kind: ExprKind::PostIncDec(Box::new(e), -1),
                    loc,
                };
            } else if matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Punct("("),
                    ..
                })
            ) {
                let name = match &e.kind {
                    ExprKind::Ident(name) => name.clone(),
                    _ => return self.err("only direct calls of named functions are supported"),
                };
                self.pos += 1;
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assignment()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr {
                    kind: ExprKind::Call(name, args),
                    loc: e.loc,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Int(v), ..
            }) => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    loc,
                })
            }
            Some(Token {
                tok: Tok::Ident(s), ..
            }) if !KEYWORDS.contains(&s.as_str()) => {
                self.pos += 1;
                Ok(Expr {
                    kind: ExprKind::Ident(s),
                    loc,
                })
            }
            Some(Token {
                tok: Tok::Punct("("),
                ..
            }) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Token {
                tok: Tok::Ident(ref s),
                ..
            }) if s == "goto" => self.err("`goto` is outside the supported subset"),
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ExprKind as E;

    fn expr_of(src: &str) -> Expr {
        let unit = parse(&format!("int main(void) {{ {src}; }}")).unwrap();
        match &unit.functions[0].body[0] {
            Stmt::Expr(e) => e.clone(),
            s => panic!("expected expr stmt, got {s:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = expr_of("1 + 2 * 3");
        match e.kind {
            E::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, E::Binary(BinOp::Mul, _, _)));
            }
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = expr_of("a = b = 1");
        match e.kind {
            E::Assign(_, None, rhs) => assert!(matches!(rhs.kind, E::Assign(_, None, _))),
            k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn postfix_binds_tighter_than_prefix() {
        let e = expr_of("*p++");
        assert!(matches!(e.kind, E::Deref(ref inner) if matches!(inner.kind, E::PostIncDec(_, 1))));
    }

    #[test]
    fn array_and_pointer_declarations() {
        let unit = parse("int main(void) { int a[3]; int *p; int **q; }").unwrap();
        assert_eq!(unit.functions[0].body.len(), 3);
    }

    #[test]
    fn functions_with_parameters() {
        let unit =
            parse("int add(int a, int b) { return a + b; } int main(void) { return add(1, 2); }")
                .unwrap();
        assert_eq!(unit.functions.len(), 2);
        assert_eq!(unit.functions[0].params.len(), 2);
    }

    #[test]
    fn goto_is_rejected_with_a_clear_message() {
        let err = parse("int main(void) { goto out; }").unwrap_err();
        assert!(err.message.contains("goto"), "{}", err.message);
    }

    #[test]
    fn scalar_initializer_on_array_declarator_is_rejected() {
        let err = parse("int main(void) { int a[3] = 5; return 0; }").unwrap_err();
        assert!(err.message.contains("brace"), "{}", err.message);
    }

    #[test]
    fn goto_cannot_be_used_as_an_identifier() {
        assert!(parse("int main(void) { int goto = 1; return 0; }").is_err());
    }

    #[test]
    fn comma_operator_parses_at_expression_level() {
        let e = expr_of("(a = 1, a + 1)");
        assert!(matches!(e.kind, E::Comma(_, _)));
    }
}
