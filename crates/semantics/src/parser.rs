//! Recursive-descent parser for the supported C subset.
//!
//! The grammar follows C11's expression precedence exactly (§6.5.1–§6.5.17)
//! so that the sequencing structure the evaluator relies on — which
//! operands are siblings of which operators — matches the standard's.
//! Anything outside the subset is a [`ParseError`], never a silent
//! reinterpretation.
//!
//! The parser builds directly into the [`TranslationUnit`]'s arenas:
//! every node push is an append to a flat `Vec`, identifiers are interned
//! [`Symbol`]s, and keyword tests are integer compares against the
//! pre-interned [`kw`] symbols. [`parse`] finishes by running the
//! [`crate::resolve`] pass, so the unit it returns is always
//! slot-resolved and ready to execute.

use crate::ast::{
    BinOp, Decl, Expr, ExprId, ExprKind, Function, Param, Quals, SlotId, Stmt, StmtId,
    TranslationUnit, Ty, UnaryOp,
};
use crate::ctype::IntTy;
use crate::intern::{kw, Symbol};
use crate::lexer::{lex, LexError, Tok, Token};
use cundef_ub::SourceLoc;
use std::fmt;

/// Why a source file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation, in terms of the supported subset.
    pub message: String,
    /// Where the parse failed.
    pub loc: SourceLoc,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            loc: e.loc,
        }
    }
}

/// Parse a whole translation unit (a sequence of function definitions)
/// and resolve every variable reference to a frame slot.
///
/// # Examples
///
/// ```
/// use cundef_semantics::parser::parse;
///
/// let unit = parse("int main(void) { return 0; }").unwrap();
/// assert_eq!(unit.name_of(&unit.functions[0]), "main");
///
/// let err = parse("int main(void) { return 0 }").unwrap_err();
/// assert!(err.message.contains("expected `;`"));
/// ```
pub fn parse(source: &str) -> Result<TranslationUnit, ParseError> {
    parse_timed(source).map(|(unit, _)| unit)
}

/// Wall-clock durations of the three frontend stages, as measured by
/// [`parse_timed`] (and surfaced by `cundef --stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendTiming {
    /// Tokenization ([`crate::lexer`]).
    pub lex: std::time::Duration,
    /// Parsing proper: token stream to AST arenas.
    pub parse: std::time::Duration,
    /// Slot resolution ([`crate::resolve`]).
    pub resolve: std::time::Duration,
}

/// [`parse`], but also reporting how long each frontend stage took.
///
/// # Examples
///
/// ```
/// use cundef_semantics::parser::parse_timed;
///
/// let (unit, timing) = parse_timed("int main(void) { return 0; }").unwrap();
/// assert_eq!(unit.functions.len(), 1);
/// assert!(timing.lex + timing.parse + timing.resolve > std::time::Duration::ZERO);
/// ```
pub fn parse_timed(source: &str) -> Result<(TranslationUnit, FrontendTiming), ParseError> {
    let mut timing = FrontendTiming::default();
    let mut unit = TranslationUnit::default();
    let t0 = std::time::Instant::now();
    let toks = lex(source, &mut unit.interner)?;
    timing.lex = t0.elapsed();
    let mut p = Parser {
        toks,
        pos: 0,
        unit,
        switch_depth: 0,
    };
    let t1 = std::time::Instant::now();
    while !p.at_end() {
        let f = p.function()?;
        p.unit.functions.push(f);
    }
    timing.parse = t1.elapsed();
    let mut unit = p.unit;
    let t2 = std::time::Instant::now();
    crate::resolve::resolve(&mut unit);
    timing.resolve = t2.elapsed();
    Ok((unit, timing))
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    unit: TranslationUnit,
    /// Nesting depth of `switch` bodies, so `case`/`default` labels
    /// outside any `switch` are parse errors (they could belong to no
    /// statement, §6.8.1:2).
    switch_depth: u32,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<Token> {
        self.toks.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<Token> {
        self.toks.get(self.pos + 1).copied()
    }

    fn loc(&self) -> SourceLoc {
        self.peek()
            .map(|t| t.loc)
            .unwrap_or_else(|| self.toks.last().map(|t| t.loc).unwrap_or_default())
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            loc: self.loc(),
        })
    }

    fn mk(&mut self, kind: ExprKind, loc: SourceLoc) -> ExprId {
        self.unit.push_expr(Expr { kind, loc })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Punct(q), .. }) if q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<SourceLoc, ParseError> {
        let loc = self.loc();
        if self.eat_punct(p) {
            Ok(loc)
        } else {
            self.err(format!("expected `{p}`"))
        }
    }

    fn eat_keyword(&mut self, kw: Symbol) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_keyword(&self, kw: Symbol) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw)
    }

    fn ident(&mut self) -> Result<(Symbol, SourceLoc), ParseError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s),
                loc,
            }) => {
                if s.is_keyword() {
                    return self.err(format!(
                        "unexpected keyword `{}`",
                        self.unit.interner.resolve(s)
                    ));
                }
                self.pos += 1;
                Ok((s, loc))
            }
            _ => self.err("expected identifier"),
        }
    }

    // ----- declarations and functions -----

    /// Consume a (possibly empty) run of type qualifiers.
    fn qual_list(&mut self) -> Quals {
        let mut q = Quals::default();
        loop {
            if self.eat_keyword(kw::CONST) {
                q.is_const = true;
            } else if self.eat_keyword(kw::VOLATILE) {
                q.is_volatile = true;
            } else if self.eat_keyword(kw::RESTRICT) {
                q.is_restrict = true;
            } else {
                return q;
            }
        }
    }

    /// `('*' qual*)*` — pointer declarator suffix. Returns the derived
    /// type and the qualifiers of the outermost `*` group (empty when no
    /// pointer declarator was present).
    fn pointer_suffix(&mut self, base: Ty) -> (Ty, Quals) {
        let mut ty = base;
        let mut outer = Quals::default();
        while self.eat_punct("*") {
            ty = Ty::Ptr(Box::new(ty));
            outer = self.qual_list();
        }
        (ty, outer)
    }

    /// The type-specifier and qualifier keywords that can begin a
    /// declaration (or a `sizeof` type-name).
    const DECL_START: &'static [Symbol] = &[
        kw::INT,
        kw::VOID,
        kw::CHAR,
        kw::SHORT,
        kw::LONG,
        kw::SIGNED,
        kw::UNSIGNED,
        kw::BOOL,
        kw::CONST,
        kw::VOLATILE,
        kw::RESTRICT,
    ];

    /// Whether the next token can begin a declaration.
    fn at_decl_start(&self) -> bool {
        Self::DECL_START.iter().any(|&k| self.peek_keyword(k))
    }

    /// Whether `t` is a token that can begin a type-name (for the
    /// `sizeof ( type-name )` vs `sizeof ( expression )` split).
    fn starts_type(t: Option<Token>) -> bool {
        matches!(t, Some(Token { tok: Tok::Ident(s), .. })
            if Self::DECL_START.contains(&s))
    }

    /// Parse a run of declaration specifiers (C11 §6.7): type-specifier
    /// keywords and qualifiers in any order, combined into one base type
    /// of the LP64 lattice. Multi-keyword spellings (`unsigned long long
    /// int`, `long unsigned`) are validated the way §6.7.2:2 enumerates
    /// them; contradictions (`signed unsigned`, `short long`, `void
    /// unsigned`) are parse errors, never reinterpreted.
    fn declaration_specifiers(&mut self) -> Result<(Ty, Quals), ParseError> {
        let mut quals = Quals::default();
        let mut saw_void = false;
        let mut saw_char = false;
        let mut saw_int = false;
        let mut saw_bool = false;
        let mut shorts: u8 = 0;
        let mut longs: u8 = 0;
        let mut signed = false;
        let mut unsigned = false;
        let mut any = false;
        loop {
            if self.eat_keyword(kw::CONST) {
                quals.is_const = true;
            } else if self.eat_keyword(kw::VOLATILE) {
                quals.is_volatile = true;
            } else if self.eat_keyword(kw::RESTRICT) {
                quals.is_restrict = true;
            } else if self.eat_keyword(kw::VOID) {
                saw_void = true;
                any = true;
            } else if self.eat_keyword(kw::CHAR) {
                saw_char = true;
                any = true;
            } else if self.eat_keyword(kw::INT) {
                saw_int = true;
                any = true;
            } else if self.eat_keyword(kw::BOOL) {
                saw_bool = true;
                any = true;
            } else if self.eat_keyword(kw::SHORT) {
                shorts += 1;
                any = true;
            } else if self.eat_keyword(kw::LONG) {
                longs += 1;
                any = true;
            } else if self.eat_keyword(kw::SIGNED) {
                signed = true;
                any = true;
            } else if self.eat_keyword(kw::UNSIGNED) {
                unsigned = true;
                any = true;
            } else {
                break;
            }
        }
        if !any {
            return self.err("expected a type specifier");
        }
        if signed && unsigned {
            return self.err("both `signed` and `unsigned` in declaration specifiers");
        }
        if saw_void {
            if saw_char || saw_int || saw_bool || shorts > 0 || longs > 0 || signed || unsigned {
                return self.err("`void` combined with other type specifiers");
            }
            return Ok((Ty::Void, quals));
        }
        if saw_bool {
            if saw_char || saw_int || shorts > 0 || longs > 0 || signed || unsigned {
                return self.err("`_Bool` combined with other type specifiers");
            }
            return Ok((Ty::Int(IntTy::Bool), quals));
        }
        if saw_char {
            if saw_int || shorts > 0 || longs > 0 {
                return self.err("invalid combination of type specifiers with `char`");
            }
            let it = if unsigned { IntTy::UChar } else { IntTy::Char };
            return Ok((Ty::Int(it), quals));
        }
        if shorts > 1 || longs > 2 || (shorts > 0 && longs > 0) {
            return self.err("invalid combination of `short`/`long` specifiers");
        }
        let it = match (shorts, longs, unsigned) {
            (1, _, false) => IntTy::Short,
            (1, _, true) => IntTy::UShort,
            (_, 0, false) => IntTy::Int,
            (_, 0, true) => IntTy::UInt,
            (_, 1, false) => IntTy::Long,
            (_, 1, true) => IntTy::ULong,
            (_, _, false) => IntTy::LongLong,
            (_, _, true) => IntTy::ULongLong,
        };
        Ok((Ty::Int(it), quals))
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let is_static = self.eat_keyword(kw::STATIC);
        // Qualifiers on the return type are legal and (like the return
        // type's pointer qualifiers) meaningless to the caller (§6.7.6.3);
        // the specifier scan swallows them.
        let (base, _) = self.declaration_specifiers()?;
        let returns_void = base == Ty::Void;
        let ret_scalar = base.base_scalar().unwrap_or(IntTy::Int);
        // Pointer return types are tracked by depth only: runtime values
        // are dynamically typed, but the analyzer's type checker wants
        // the declared shape.
        let mut ret_ptr: u8 = 0;
        while self.eat_punct("*") {
            ret_ptr = ret_ptr.saturating_add(1);
            self.qual_list();
        }
        let (name, loc) = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.peek_keyword(kw::VOID)
                && matches!(
                    self.peek2(),
                    Some(Token {
                        tok: Tok::Punct(")"),
                        ..
                    })
                )
            {
                // The empty `(void)` parameter list (§6.7.6.3:10).
                self.pos += 2;
            } else {
                loop {
                    let (base, _) = self.declaration_specifiers()?;
                    let (ty, _) = self.pointer_suffix(base);
                    if ty == Ty::Void {
                        return self.err("parameter declared with incomplete type `void`");
                    }
                    let (pname, _) = self.ident()?;
                    params.push(Param { name: pname, ty });
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
        }
        // C's grammar has no qualifiers after the parameter list; accept
        // them anyway so the analyzer can report the qualified *function
        // type* (§6.7.3:9) instead of a parse failure.
        let fn_quals = self.qual_list();
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_end() {
                return self.err("unterminated function body");
            }
            let s = self.block_item()?;
            body.push(s);
        }
        Ok(Function {
            name,
            params,
            returns_void,
            ret_ptr,
            ret_scalar,
            is_static,
            fn_quals,
            body,
            loc,
            n_slots: 0, // filled by the resolver
            labels: Vec::new(),
            gotos: Vec::new(),
        })
    }

    fn decl(&mut self) -> Result<Decl, ParseError> {
        let (base, base_quals) = self.declaration_specifiers()?;
        let (ty, ptr_quals) = self.pointer_suffix(base);
        // The declared object's qualifiers are the outermost `*` group's
        // for a pointer declarator, the base specifier's otherwise; a
        // `restrict` stuck on the non-pointer base of a pointer
        // declarator is recorded for the analyzer (§6.7.3:2).
        let (quals, base_restrict) = if ty.ptr_depth() == 0 {
            (base_quals, false)
        } else {
            (ptr_quals, base_quals.is_restrict)
        };
        let (name, loc) = self.ident()?;
        let mut array_size = None;
        if self.eat_punct("[") {
            if !matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Punct("]"),
                    ..
                })
            ) {
                array_size = Some(self.expr()?);
            } else {
                return self.err("array declarations need an explicit size");
            }
            self.expect_punct("]")?;
        }
        let mut init = None;
        let mut array_init = None;
        if self.eat_punct("=") {
            if self.eat_punct("{") {
                let mut items = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        items.push(self.assignment()?);
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                array_init = Some(items);
            } else {
                init = Some(self.assignment()?);
            }
        }
        self.expect_punct(";")?;
        if array_size.is_none() && array_init.is_some() {
            return self.err("brace initializers require an array declarator");
        }
        if array_size.is_some() && init.is_some() {
            // `int a[3] = 5;` violates §6.7.9:11; refuse it rather than
            // silently initializing element 0.
            return self.err("array initializers must be brace-enclosed");
        }
        Ok(Decl {
            name,
            ty,
            array_size,
            init,
            array_init,
            quals,
            base_restrict,
            loc,
            slot: SlotId(u32::MAX),
            const_size: false,
            redeclaration: false,
        })
    }

    // ----- statements -----

    /// An item in block position (C11 §6.8.2): a declaration or a
    /// statement.
    fn block_item(&mut self) -> Result<StmtId, ParseError> {
        if self.at_decl_start() {
            let d = self.decl()?;
            return Ok(self.unit.push_stmt(Stmt::Decl(d)));
        }
        self.stmt()
    }

    fn stmt(&mut self) -> Result<StmtId, ParseError> {
        let loc = self.loc();
        if self.eat_punct(";") {
            return Ok(self.unit.push_stmt(Stmt::Empty(loc)));
        }
        if self.eat_punct("{") {
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                if self.at_end() {
                    return self.err("unterminated block");
                }
                let s = self.block_item()?;
                body.push(s);
            }
            return Ok(self.unit.push_stmt(Stmt::Block(body, loc)));
        }
        if self.at_decl_start() {
            // In C11's grammar a declaration is not a statement: it can
            // appear in a block (§6.8.2) or a `for` init clause (§6.8.5),
            // but not as the lone body of `if`/`while`/`for`/`else`, nor
            // directly under a label (labels prefix statements, §6.8.1).
            return self.err("a declaration needs a surrounding block here");
        }
        if self.eat_keyword(kw::IF) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.stmt()?;
            let els = if self.eat_keyword(kw::ELSE) {
                Some(self.stmt()?)
            } else {
                None
            };
            return Ok(self.unit.push_stmt(Stmt::If(cond, then, els)));
        }
        if self.eat_keyword(kw::WHILE) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.stmt()?;
            return Ok(self.unit.push_stmt(Stmt::While(cond, body)));
        }
        if self.eat_keyword(kw::FOR) {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_decl_start() {
                let d = self.decl()?;
                Some(self.unit.push_stmt(Stmt::Decl(d)))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(self.unit.push_stmt(Stmt::Expr(e)))
            };
            let cond = if self.eat_punct(";") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(e)
            };
            let step = if self.eat_punct(")") {
                None
            } else {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Some(e)
            };
            let body = self.stmt()?;
            return Ok(self.unit.push_stmt(Stmt::For(init, cond, step, body)));
        }
        if self.eat_keyword(kw::RETURN) {
            if self.eat_punct(";") {
                return Ok(self.unit.push_stmt(Stmt::Return(None, loc)));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(self.unit.push_stmt(Stmt::Return(Some(e), loc)));
        }
        if self.eat_keyword(kw::BREAK) {
            self.expect_punct(";")?;
            return Ok(self.unit.push_stmt(Stmt::Break(loc)));
        }
        if self.eat_keyword(kw::CONTINUE) {
            self.expect_punct(";")?;
            return Ok(self.unit.push_stmt(Stmt::Continue(loc)));
        }
        if self.eat_keyword(kw::SWITCH) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.switch_depth += 1;
            let body = self.stmt();
            self.switch_depth -= 1;
            return Ok(self.unit.push_stmt(Stmt::Switch(cond, body?, loc)));
        }
        if self.peek_keyword(kw::CASE) {
            if self.switch_depth == 0 {
                return self.err("`case` label outside of a switch statement");
            }
            self.pos += 1;
            // A case expression is a constant expression, i.e. a
            // conditional expression in the grammar (§6.6:1) — its `:`
            // belongs to `?:`, the label's own `:` follows it.
            let e = self.conditional()?;
            self.expect_punct(":")?;
            let inner = self.stmt()?;
            return Ok(self.unit.push_stmt(Stmt::Case(e, inner, loc)));
        }
        if self.peek_keyword(kw::DEFAULT) {
            if self.switch_depth == 0 {
                return self.err("`default` label outside of a switch statement");
            }
            self.pos += 1;
            self.expect_punct(":")?;
            let inner = self.stmt()?;
            return Ok(self.unit.push_stmt(Stmt::Default(inner, loc)));
        }
        if self.eat_keyword(kw::GOTO) {
            let (target, _) = self.ident()?;
            self.expect_punct(";")?;
            return Ok(self.unit.push_stmt(Stmt::Goto(target, loc)));
        }
        // An ordinary label: `name: statement` (§6.8.1).
        if let (
            Some(Token {
                tok: Tok::Ident(s), ..
            }),
            Some(Token {
                tok: Tok::Punct(":"),
                ..
            }),
        ) = (self.peek(), self.peek2())
        {
            if !s.is_keyword() {
                self.pos += 2;
                let inner = self.stmt()?;
                return Ok(self.unit.push_stmt(Stmt::Label(s, inner, loc)));
            }
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(self.unit.push_stmt(Stmt::Expr(e)))
    }

    // ----- expressions, by C11 precedence -----

    fn expr(&mut self) -> Result<ExprId, ParseError> {
        let mut e = self.assignment()?;
        while matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Punct(","),
                ..
            })
        ) {
            let loc = self.loc();
            self.pos += 1;
            let rhs = self.assignment()?;
            e = self.mk(ExprKind::Comma(e, rhs), loc);
        }
        Ok(e)
    }

    fn assignment(&mut self) -> Result<ExprId, ParseError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Some(Token {
                tok: Tok::Punct(p), ..
            }) => match p {
                "=" => Some(None),
                "+=" => Some(Some(BinOp::Add)),
                "-=" => Some(Some(BinOp::Sub)),
                "*=" => Some(Some(BinOp::Mul)),
                "/=" => Some(Some(BinOp::Div)),
                "%=" => Some(Some(BinOp::Rem)),
                "<<=" => Some(Some(BinOp::Shl)),
                ">>=" => Some(Some(BinOp::Shr)),
                "&=" => Some(Some(BinOp::BitAnd)),
                "^=" => Some(Some(BinOp::BitXor)),
                "|=" => Some(Some(BinOp::BitOr)),
                _ => None,
            },
            _ => None,
        };
        if let Some(op) = op {
            let loc = self.loc();
            self.pos += 1;
            let rhs = self.assignment()?;
            return Ok(self.mk(ExprKind::Assign(lhs, op, rhs), loc));
        }
        Ok(lhs)
    }

    fn conditional(&mut self) -> Result<ExprId, ParseError> {
        let cond = self.binary(0)?;
        if matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Punct("?"),
                ..
            })
        ) {
            let loc = self.loc();
            self.pos += 1;
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.conditional()?;
            return Ok(self.mk(ExprKind::Conditional(cond, then, els), loc));
        }
        Ok(cond)
    }

    /// Binary operators by precedence level, lowest first.
    fn binary(&mut self, level: usize) -> Result<ExprId, ParseError> {
        const LEVELS: &[&[(&str, Option<BinOp>)]] = &[
            &[("||", None)],
            &[("&&", None)],
            &[("|", Some(BinOp::BitOr))],
            &[("^", Some(BinOp::BitXor))],
            &[("&", Some(BinOp::BitAnd))],
            &[("==", Some(BinOp::Eq)), ("!=", Some(BinOp::Ne))],
            &[
                ("<=", Some(BinOp::Le)),
                (">=", Some(BinOp::Ge)),
                ("<", Some(BinOp::Lt)),
                (">", Some(BinOp::Gt)),
            ],
            &[("<<", Some(BinOp::Shl)), (">>", Some(BinOp::Shr))],
            &[("+", Some(BinOp::Add)), ("-", Some(BinOp::Sub))],
            &[
                ("*", Some(BinOp::Mul)),
                ("/", Some(BinOp::Div)),
                ("%", Some(BinOp::Rem)),
            ],
        ];
        if level == LEVELS.len() {
            return self.cast();
        }
        let mut lhs = self.binary(level + 1)?;
        'scan: loop {
            for (p, op) in LEVELS[level] {
                if matches!(self.peek(), Some(Token { tok: Tok::Punct(q), .. }) if q == *p) {
                    let loc = self.loc();
                    self.pos += 1;
                    let rhs = self.binary(level + 1)?;
                    let kind = match op {
                        Some(op) => ExprKind::Binary(*op, lhs, rhs),
                        None if *p == "&&" => ExprKind::LogicalAnd(lhs, rhs),
                        None => ExprKind::LogicalOr(lhs, rhs),
                    };
                    lhs = self.mk(kind, loc);
                    continue 'scan;
                }
            }
            return Ok(lhs);
        }
    }

    /// A cast-expression (§6.5.4): `( type-name ) cast-expression` or a
    /// unary-expression. The parenthesis is a cast exactly when a
    /// type-specifier keyword follows it — the same disambiguation
    /// `sizeof ( … )` uses.
    fn cast(&mut self) -> Result<ExprId, ParseError> {
        let loc = self.loc();
        if matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Punct("("),
                ..
            })
        ) && Self::starts_type(self.peek2())
        {
            self.pos += 1;
            let (base, _) = self.declaration_specifiers()?;
            let (ty, _) = self.pointer_suffix(base);
            self.expect_punct(")")?;
            let e = self.cast()?;
            return Ok(self.mk(ExprKind::Cast(ty, e), loc));
        }
        self.unary()
    }

    fn unary(&mut self) -> Result<ExprId, ParseError> {
        let loc = self.loc();
        if self.eat_keyword(kw::SIZEOF) {
            // `sizeof ( type-name )` when a type keyword follows the
            // parenthesis; otherwise `sizeof unary-expression` (which may
            // itself be parenthesized).
            if matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Punct("("),
                    ..
                })
            ) && Self::starts_type(self.peek2())
            {
                self.pos += 1;
                let (base, _) = self.declaration_specifiers()?;
                let (ty, _) = self.pointer_suffix(base);
                self.expect_punct(")")?;
                return Ok(self.mk(ExprKind::SizeofType(ty), loc));
            }
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::SizeofExpr(e), loc));
        }
        if self.eat_punct("++") {
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::PreIncDec(e, 1), loc));
        }
        if self.eat_punct("--") {
            let e = self.unary()?;
            return Ok(self.mk(ExprKind::PreIncDec(e, -1), loc));
        }
        // The operand of `-`/`!`/`~`/`+`/`*`/`&` is a cast-expression
        // (§6.5.3:1), so `*(int *)p` and `-(long)x` parse as written.
        for (p, mk) in [
            ("-", Some(UnaryOp::Neg)),
            ("!", Some(UnaryOp::Not)),
            ("~", Some(UnaryOp::BitNot)),
            ("+", None),
        ] {
            if self.eat_punct(p) {
                let e = self.cast()?;
                return Ok(match mk {
                    Some(op) => self.mk(ExprKind::Unary(op, e), loc),
                    None => e, // unary plus only performs promotion
                });
            }
        }
        if self.eat_punct("*") {
            let e = self.cast()?;
            return Ok(self.mk(ExprKind::Deref(e), loc));
        }
        if self.eat_punct("&") {
            let e = self.cast()?;
            return Ok(self.mk(ExprKind::AddrOf(e), loc));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<ExprId, ParseError> {
        let mut e = self.primary()?;
        loop {
            let loc = self.loc();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = self.mk(ExprKind::Index(e, idx), loc);
            } else if self.eat_punct("++") {
                e = self.mk(ExprKind::PostIncDec(e, 1), loc);
            } else if self.eat_punct("--") {
                e = self.mk(ExprKind::PostIncDec(e, -1), loc);
            } else if matches!(
                self.peek(),
                Some(Token {
                    tok: Tok::Punct("("),
                    ..
                })
            ) {
                let callee = self.unit.expr(e);
                let (name, name_loc) = match callee.kind {
                    ExprKind::Ident(name) => (name, callee.loc),
                    _ => return self.err("only direct calls of named functions are supported"),
                };
                // The Call node carries the symbol itself; reclaim the
                // callee's Ident node (it is the most recent push — no
                // postfix operator intervened, or `e` wouldn't be an
                // Ident) instead of leaking a dead arena slot per call.
                if e.0 as usize == self.unit.exprs.len() - 1 {
                    self.unit.exprs.pop();
                }
                self.pos += 1;
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.assignment()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = self.mk(ExprKind::Call(name, args), name_loc);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<ExprId, ParseError> {
        let loc = self.loc();
        match self.peek() {
            Some(Token {
                tok: Tok::Int(v), ..
            }) => {
                self.pos += 1;
                Ok(self.mk(ExprKind::IntLit(v), loc))
            }
            Some(Token {
                tok: Tok::Ident(s), ..
            }) if !s.is_keyword() => {
                self.pos += 1;
                Ok(self.mk(ExprKind::Ident(s), loc))
            }
            Some(Token {
                tok: Tok::Punct("("),
                ..
            }) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ExprKind as E;

    /// The top-level expression of `int main(void) {{ {src}; }}`.
    fn unit_and_expr(src: &str) -> (TranslationUnit, ExprId) {
        let unit = parse(&format!("int main(void) {{ {src}; }}")).unwrap();
        let main = unit.function_named("main").unwrap();
        match unit.stmt(main.body[0]) {
            Stmt::Expr(e) => {
                let e = *e;
                (unit, e)
            }
            s => panic!("expected expr stmt, got {s:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let (unit, e) = unit_and_expr("1 + 2 * 3");
        match unit.expr(e).kind {
            E::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(unit.expr(rhs).kind, E::Binary(BinOp::Mul, _, _)));
            }
            ref k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let (unit, e) = unit_and_expr("a = b = 1");
        match unit.expr(e).kind {
            E::Assign(_, None, rhs) => {
                assert!(matches!(unit.expr(rhs).kind, E::Assign(_, None, _)));
            }
            ref k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn postfix_binds_tighter_than_prefix() {
        let (unit, e) = unit_and_expr("*p++");
        match unit.expr(e).kind {
            E::Deref(inner) => {
                assert!(matches!(unit.expr(inner).kind, E::PostIncDec(_, 1)));
            }
            ref k => panic!("unexpected {k:?}"),
        }
    }

    #[test]
    fn array_and_pointer_declarations() {
        let unit = parse("int main(void) { int a[3]; int *p; int **q; }").unwrap();
        assert_eq!(unit.functions[0].body.len(), 3);
    }

    #[test]
    fn functions_with_parameters() {
        let unit =
            parse("int add(int a, int b) { return a + b; } int main(void) { return add(1, 2); }")
                .unwrap();
        assert_eq!(unit.functions.len(), 2);
        assert_eq!(unit.functions[0].params.len(), 2);
        assert_eq!(unit.name_of(&unit.functions[0]), "add");
    }

    #[test]
    fn goto_and_labels_parse() {
        let unit = parse("int main(void) { goto out; out: return 0; }").unwrap();
        let main = unit.function_named("main").unwrap();
        assert!(matches!(unit.stmt(main.body[0]), Stmt::Goto(_, _)));
        match unit.stmt(main.body[1]) {
            Stmt::Label(sym, _, _) => assert_eq!(unit.interner.resolve(*sym), "out"),
            s => panic!("expected label, got {s:?}"),
        }
    }

    #[test]
    fn switch_with_case_and_default_parses() {
        let unit = parse(
            "int main(void) { int x = 1; switch (x) { case 1: x = 2; break; default: x = 3; } return x; }",
        )
        .unwrap();
        let main = unit.function_named("main").unwrap();
        let Stmt::Switch(_, body, _) = unit.stmt(main.body[1]) else {
            panic!("expected switch");
        };
        let Stmt::Block(items, _) = unit.stmt(*body) else {
            panic!("expected block body");
        };
        assert!(matches!(unit.stmt(items[0]), Stmt::Case(_, _, _)));
        assert!(matches!(unit.stmt(items[2]), Stmt::Default(_, _)));
    }

    #[test]
    fn case_labels_outside_a_switch_are_rejected() {
        for src in [
            "int main(void) { case 1: return 0; }",
            "int main(void) { default: return 0; }",
        ] {
            let err = parse(src).unwrap_err();
            assert!(err.message.contains("switch"), "{src}: {}", err.message);
        }
    }

    #[test]
    fn qualifiers_and_void_objects_parse() {
        let unit = parse(
            "int main(void) { const int x = 1; int * restrict p; restrict int q; void v; void *w; return x; }",
        )
        .unwrap();
        let decls: Vec<&Decl> = unit
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Decl(d) => Some(d),
                _ => None,
            })
            .collect();
        assert!(decls[0].quals.is_const && decls[0].ty == Ty::INT);
        assert!(decls[1].quals.is_restrict && decls[1].ty.ptr_depth() == 1);
        assert!(decls[2].quals.is_restrict && decls[2].ty.ptr_depth() == 0);
        assert_eq!(decls[3].ty, Ty::Void);
        assert_eq!(decls[4].ty, Ty::Ptr(Box::new(Ty::Void)));
    }

    #[test]
    fn multi_keyword_specifiers_combine() {
        let unit = parse(
            "int main(void) { unsigned long long x = 1; long unsigned y = 2; \
             short int s = 3; unsigned char c = 4; _Bool b = 1; signed q = -1; \
             long int l = 5; return 0; }",
        )
        .unwrap();
        let tys: Vec<&Ty> = unit
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Decl(d) => Some(&d.ty),
                _ => None,
            })
            .collect();
        assert_eq!(*tys[0], Ty::Int(IntTy::ULongLong));
        assert_eq!(*tys[1], Ty::Int(IntTy::ULong));
        assert_eq!(*tys[2], Ty::Int(IntTy::Short));
        assert_eq!(*tys[3], Ty::Int(IntTy::UChar));
        assert_eq!(*tys[4], Ty::Int(IntTy::Bool));
        assert_eq!(*tys[5], Ty::Int(IntTy::Int));
        assert_eq!(*tys[6], Ty::Int(IntTy::Long));
    }

    #[test]
    fn contradictory_specifiers_are_rejected() {
        for src in [
            "int main(void) { signed unsigned x; return 0; }",
            "int main(void) { short long x; return 0; }",
            "int main(void) { long long long x; return 0; }",
            "int main(void) { _Bool int x; return 0; }",
            "int main(void) { void unsigned x; return 0; }",
            "int main(void) { char short x; return 0; }",
        ] {
            assert!(parse(src).is_err(), "{src} should not parse");
        }
    }

    #[test]
    fn sizeof_forms_parse() {
        // Type form.
        let (unit, e) = unit_and_expr("sizeof(unsigned long)");
        assert_eq!(unit.expr(e).kind, E::SizeofType(Ty::Int(IntTy::ULong)));
        let (unit, e) = unit_and_expr("sizeof(int *)");
        assert!(matches!(unit.expr(e).kind, E::SizeofType(Ty::Ptr(_))));
        // Expression forms: parenthesized and bare, binding tighter than
        // binary operators.
        let unit = parse(
            "int main(void) { int x = 1; int y = sizeof x + 1; int z = sizeof(x); return 0; }",
        )
        .unwrap();
        let sizeofs = unit
            .exprs
            .iter()
            .filter(|ex| matches!(ex.kind, E::SizeofExpr(_)))
            .count();
        assert_eq!(sizeofs, 2);
        let adds = unit
            .exprs
            .iter()
            .find(|ex| matches!(ex.kind, E::Binary(BinOp::Add, _, _)))
            .expect("sizeof x + 1 parses as (sizeof x) + 1");
        let E::Binary(_, lhs, _) = adds.kind else {
            unreachable!()
        };
        assert!(matches!(unit.expr(lhs).kind, E::SizeofExpr(_)));
    }

    #[test]
    fn casts_parse_at_cast_precedence() {
        // (long)1 + 2 is ((long)1) + 2 — the cast binds tighter than
        // binary operators.
        let (unit, e) = unit_and_expr("(long)1 + 2");
        match unit.expr(e).kind {
            E::Binary(BinOp::Add, lhs, _) => {
                assert!(matches!(
                    unit.expr(lhs).kind,
                    E::Cast(Ty::Int(IntTy::Long), _)
                ));
            }
            ref k => panic!("unexpected {k:?}"),
        }
        // The operand of `*` is a cast-expression: *(int *)p.
        let (unit, e) = unit_and_expr("*(int *)p");
        match unit.expr(e).kind {
            E::Deref(inner) => {
                assert!(matches!(unit.expr(inner).kind, E::Cast(Ty::Ptr(_), _)))
            }
            ref k => panic!("unexpected {k:?}"),
        }
        // Casts nest rightward: (char)(int)x.
        let (unit, e) = unit_and_expr("(char)(int)x");
        match &unit.expr(e).kind {
            E::Cast(Ty::Int(IntTy::Char), inner) => {
                assert!(matches!(
                    unit.expr(*inner).kind,
                    E::Cast(Ty::Int(IntTy::Int), _)
                ))
            }
            k => panic!("unexpected {k:?}"),
        }
        // A parenthesized expression is not a cast.
        let (unit, e) = unit_and_expr("(x) + 1");
        assert!(matches!(unit.expr(e).kind, E::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn typed_parameters_and_returns() {
        let unit = parse(
            "long widen(unsigned int u, char c) { return u + c; } \
             int main(void) { return 0; }",
        )
        .unwrap();
        let f = &unit.functions[0];
        assert_eq!(f.ret_scalar, IntTy::Long);
        assert_eq!(f.params[0].ty, Ty::Int(IntTy::UInt));
        assert_eq!(f.params[1].ty, Ty::Int(IntTy::Char));
        // A bare `void` parameter among others is rejected.
        assert!(parse("int f(void v) { return 0; } int main(void) { return 0; }").is_err());
    }

    #[test]
    fn static_functions_and_return_pointer_depth() {
        let unit = parse(
            "static int helper(void) { return 1; } int **deep(void) { return 0; } \
             int main(void) { return helper(); }",
        )
        .unwrap();
        assert!(unit.functions[0].is_static);
        assert_eq!(unit.functions[0].ret_ptr, 0);
        assert_eq!(unit.functions[1].ret_ptr, 2);
        assert!(!unit.functions[2].is_static);
    }

    #[test]
    fn trailing_function_qualifiers_parse_for_the_analyzer() {
        let unit = parse("int f(void) const { return 1; } int main(void) { return f(); }").unwrap();
        assert!(unit.functions[0].fn_quals.is_const);
        assert!(!unit.functions[1].fn_quals.any());
    }

    #[test]
    fn scalar_initializer_on_array_declarator_is_rejected() {
        let err = parse("int main(void) { int a[3] = 5; return 0; }").unwrap_err();
        assert!(err.message.contains("brace"), "{}", err.message);
    }

    #[test]
    fn goto_cannot_be_used_as_an_identifier() {
        assert!(parse("int main(void) { int goto = 1; return 0; }").is_err());
    }

    #[test]
    fn comma_operator_parses_at_expression_level() {
        let (unit, e) = unit_and_expr("(a = 1, a + 1)");
        assert!(matches!(unit.expr(e).kind, E::Comma(_, _)));
    }

    #[test]
    fn declarations_are_block_items_not_statements() {
        // C11 §6.8.2/§6.8.5: a declaration may appear in a block or a
        // `for` init clause, but not as the lone body of a control
        // statement.
        assert!(parse("int main(void) { for (int i = 0; i < 1; i++) { } return 0; }").is_ok());
        for src in [
            "int main(void) { if (1) int x = 1; return 0; }",
            "int main(void) { while (0) int x = 1; return 0; }",
            "int main(void) { for (;;) int x = 1; return 0; }",
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                err.message.contains("declaration"),
                "{src}: {}",
                err.message
            );
        }
    }

    #[test]
    fn call_nodes_intern_the_callee_name() {
        let (unit, e) = unit_and_expr("f(1, 2)");
        match &unit.expr(e).kind {
            E::Call(name, args) => {
                assert_eq!(unit.interner.resolve(*name), "f");
                assert_eq!(args.len(), 2);
            }
            k => panic!("unexpected {k:?}"),
        }
    }
}
