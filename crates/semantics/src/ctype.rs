//! The C integer type lattice, promotions, and usual arithmetic
//! conversions (C11 §6.2.5, §6.3.1) against an explicit LP64 target.
//!
//! Everything width-dependent in the workspace flows through this module:
//! the lexer types integer constants with it (§6.4.4.1), the shared
//! arithmetic core in [`crate::consteval`] promotes and converts with it
//! (so `eval` and `consteval` cannot disagree), and the translation-phase
//! analyzer's type system is built over the same [`IntTy`].
//!
//! # The target: LP64
//!
//! C verdicts are meaningless without the implementation's type widths
//! pinned down, so this checker documents one: the LP64 data model used
//! by every mainstream 64-bit Unix.
//!
//! | type                 | width (bits) | `sizeof` | range                |
//! |----------------------|--------------|----------|----------------------|
//! | `_Bool`              | 1            | 1        | 0 ..= 1              |
//! | `char` (signed)      | 8            | 1        | -128 ..= 127         |
//! | `unsigned char`      | 8            | 1        | 0 ..= 255            |
//! | `short`              | 16           | 2        | -2^15 ..= 2^15 - 1   |
//! | `unsigned short`     | 16           | 2        | 0 ..= 2^16 - 1       |
//! | `int`                | 32           | 4        | -2^31 ..= 2^31 - 1   |
//! | `unsigned int`       | 32           | 4        | 0 ..= 2^32 - 1       |
//! | `long`               | 64           | 8        | -2^63 ..= 2^63 - 1   |
//! | `unsigned long`      | 64           | 8        | 0 ..= 2^64 - 1       |
//! | `long long`          | 64           | 8        | -2^63 ..= 2^63 - 1   |
//! | `unsigned long long` | 64           | 8        | 0 ..= 2^64 - 1       |
//!
//! Pointers are 8 bytes; `size_t` is `unsigned long` (the type of
//! `sizeof`); plain `char` is signed, as on every LP64 Unix ABI.
//!
//! # The semantics encoded here
//!
//! - **Integer promotions** (§6.3.1.1:2): every type of rank below `int`
//!   promotes to `int` (all of its values are representable at width 32).
//! - **Usual arithmetic conversions** (§6.3.1.8): same-signedness picks
//!   the higher rank; otherwise the unsigned type wins at equal-or-higher
//!   rank, the signed type wins if it can represent every value of the
//!   unsigned one (`long` vs `unsigned int` on LP64), and the signed
//!   type's unsigned counterpart is the fallback.
//! - **Conversions** (§6.3.1.3): to `_Bool`, nonzero becomes 1 (defined);
//!   to any unsigned type, values wrap modulo 2^width (defined); to a
//!   signed type that cannot represent the value, the result is
//!   *implementation-defined* — this implementation wraps two's
//!   complement and reports a note, never a UB verdict.

use std::fmt;

/// An integer type of the LP64 target, ordered by conversion rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IntTy {
    /// `_Bool` (§6.2.5:2): holds 0 or 1.
    Bool,
    /// Plain `char`, signed on this target (§6.2.5:15).
    Char,
    /// `unsigned char`.
    UChar,
    /// `short int`.
    Short,
    /// `unsigned short int`.
    UShort,
    /// `int` — the promoted workhorse type.
    Int,
    /// `unsigned int`.
    UInt,
    /// `long int` — 64 bits under LP64.
    Long,
    /// `unsigned long int` — also the target's `size_t`.
    ULong,
    /// `long long int`.
    LongLong,
    /// `unsigned long long int`.
    ULongLong,
}

impl IntTy {
    /// Width in bits of the value representation (the `_Bool` value bit
    /// counts as width 1, §6.2.6.1 fn. 53; everything else is padding).
    pub fn width(self) -> u32 {
        match self {
            IntTy::Bool => 1,
            IntTy::Char | IntTy::UChar => 8,
            IntTy::Short | IntTy::UShort => 16,
            IntTy::Int | IntTy::UInt => 32,
            IntTy::Long | IntTy::ULong | IntTy::LongLong | IntTy::ULongLong => 64,
        }
    }

    /// Storage size in bytes — what `sizeof` yields on this target.
    pub fn size_bytes(self) -> u64 {
        match self {
            IntTy::Bool | IntTy::Char | IntTy::UChar => 1,
            IntTy::Short | IntTy::UShort => 2,
            IntTy::Int | IntTy::UInt => 4,
            IntTy::Long | IntTy::ULong | IntTy::LongLong | IntTy::ULongLong => 8,
        }
    }

    /// Alignment requirement in bytes (`_Alignof`). On LP64 every integer
    /// type is naturally aligned: alignment equals size.
    pub fn align_of(self) -> u64 {
        self.size_bytes()
    }

    /// Whether the type is signed. Plain `char` is signed on LP64.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            IntTy::Char | IntTy::Short | IntTy::Int | IntTy::Long | IntTy::LongLong
        )
    }

    /// Conversion rank (§6.3.1.1:1); signed and unsigned flavors share a
    /// rank.
    pub fn rank(self) -> u8 {
        match self {
            IntTy::Bool => 0,
            IntTy::Char | IntTy::UChar => 1,
            IntTy::Short | IntTy::UShort => 2,
            IntTy::Int | IntTy::UInt => 3,
            IntTy::Long | IntTy::ULong => 4,
            IntTy::LongLong | IntTy::ULongLong => 5,
        }
    }

    /// The unsigned type of the same rank.
    pub fn to_unsigned(self) -> IntTy {
        match self {
            IntTy::Char => IntTy::UChar,
            IntTy::Short => IntTy::UShort,
            IntTy::Int => IntTy::UInt,
            IntTy::Long => IntTy::ULong,
            IntTy::LongLong => IntTy::ULongLong,
            other => other,
        }
    }

    /// The smallest representable value.
    pub fn min(self) -> i128 {
        if self.is_signed() {
            -(1i128 << (self.width() - 1))
        } else {
            0
        }
    }

    /// The largest representable value.
    pub fn max(self) -> i128 {
        if self.is_signed() {
            (1i128 << (self.width() - 1)) - 1
        } else if self == IntTy::Bool {
            1
        } else {
            (1i128 << self.width()) - 1
        }
    }

    /// Whether `v` is representable in this type.
    pub fn contains(self, v: i128) -> bool {
        (self.min()..=self.max()).contains(&v)
    }

    /// The integer promotions (§6.3.1.1:2): ranks below `int` promote to
    /// `int` — on LP64 every such type's values fit in 32 bits, so the
    /// unsigned-int fallback never applies.
    ///
    /// # Examples
    ///
    /// ```
    /// use cundef_semantics::ctype::IntTy;
    /// assert_eq!(IntTy::Char.promote(), IntTy::Int);
    /// assert_eq!(IntTy::UShort.promote(), IntTy::Int);
    /// assert_eq!(IntTy::UInt.promote(), IntTy::UInt);
    /// assert_eq!(IntTy::Long.promote(), IntTy::Long);
    /// ```
    pub fn promote(self) -> IntTy {
        if self.rank() < IntTy::Int.rank() {
            IntTy::Int
        } else {
            self
        }
    }

    /// The usual arithmetic conversions (§6.3.1.8:1) over two promoted
    /// operand types: the common type both operands convert to.
    ///
    /// # Examples
    ///
    /// ```
    /// use cundef_semantics::ctype::IntTy;
    /// // Unsigned wins at equal rank…
    /// assert_eq!(IntTy::usual_arith(IntTy::Int, IntTy::UInt), IntTy::UInt);
    /// // …a strictly wider signed type wins (LP64: long covers unsigned int)…
    /// assert_eq!(IntTy::usual_arith(IntTy::UInt, IntTy::Long), IntTy::Long);
    /// // …and same-width mixed signedness falls back to unsigned.
    /// assert_eq!(IntTy::usual_arith(IntTy::ULong, IntTy::LongLong), IntTy::ULongLong);
    /// ```
    pub fn usual_arith(a: IntTy, b: IntTy) -> IntTy {
        let a = a.promote();
        let b = b.promote();
        if a == b {
            return a;
        }
        if a.is_signed() == b.is_signed() {
            return if a.rank() >= b.rank() { a } else { b };
        }
        let (s, u) = if a.is_signed() { (a, b) } else { (b, a) };
        if u.rank() >= s.rank() {
            u
        } else if s.width() > u.width() {
            // The signed type can represent all values of the unsigned
            // one (e.g. `long` vs `unsigned int` on LP64).
            s
        } else {
            s.to_unsigned()
        }
    }

    /// The C spelling, for diagnostics (`"unsigned long"`, `"_Bool"`, …).
    pub fn name(self) -> &'static str {
        match self {
            IntTy::Bool => "_Bool",
            IntTy::Char => "char",
            IntTy::UChar => "unsigned char",
            IntTy::Short => "short",
            IntTy::UShort => "unsigned short",
            IntTy::Int => "int",
            IntTy::UInt => "unsigned int",
            IntTy::Long => "long",
            IntTy::ULong => "unsigned long",
            IntTy::LongLong => "long long",
            IntTy::ULongLong => "unsigned long long",
        }
    }
}

impl fmt::Display for IntTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The target's `size_t`: the type of `sizeof` (§6.5.3.4:5) under LP64.
pub const SIZE_T: IntTy = IntTy::ULong;

/// Pointer size in bytes on the LP64 target.
pub const PTR_BYTES: u64 = 8;

/// Pointer alignment in bytes on the LP64 target (naturally aligned).
pub const PTR_ALIGN: u64 = 8;

/// A typed integer value: the two's-complement bit pattern truncated to
/// the type's width, plus the type itself.
///
/// This is the scalar the whole engine computes with — lexer constants,
/// evaluator values, and translation-time constants are all `CInt`s, so
/// the phases agree bit-for-bit on every operation.
///
/// # Examples
///
/// ```
/// use cundef_semantics::ctype::{CInt, IntTy};
///
/// let x = CInt::new(-1, IntTy::Int);
/// assert_eq!(x.math(), -1);
/// // Conversion to unsigned wraps (defined, §6.3.1.3:2)…
/// let (u, note) = x.convert(IntTy::UInt);
/// assert_eq!(u.math(), 4294967295);
/// assert!(!note);
/// // …while a narrowing conversion to a signed type is
/// // implementation-defined (§6.3.1.3:3): wrapped, with a note.
/// let (c, note) = CInt::new(300, IntTy::Int).convert(IntTy::Char);
/// assert_eq!(c.math(), 44);
/// assert!(note);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CInt {
    /// Two's-complement representation, truncated to `ty`'s width (upper
    /// bits zero).
    bits: u64,
    /// The value's C type.
    pub ty: IntTy,
}

impl CInt {
    /// Build a value by wrapping `v` modulo 2^width (conversion to
    /// `_Bool` instead tests against zero, §6.3.1.2).
    #[inline]
    pub fn new(v: i128, ty: IntTy) -> CInt {
        let bits = if ty == IntTy::Bool {
            (v != 0) as u64
        } else {
            let mask = if ty.width() >= 64 {
                u64::MAX
            } else {
                (1u64 << ty.width()) - 1
            };
            (v as u64) & mask
        };
        CInt { bits, ty }
    }

    /// An `int`-typed value (the ubiquitous case, built without the
    /// general wrapping machinery).
    #[inline(always)]
    pub fn int(v: i64) -> CInt {
        CInt {
            bits: (v as u64) & 0xFFFF_FFFF,
            ty: IntTy::Int,
        }
    }

    /// The mathematical value of an `int`-typed constant, as an `i64` —
    /// the hot-path accessor the evaluator's all-`int` fast lane uses.
    #[inline(always)]
    pub(crate) fn math_i32(self) -> i64 {
        self.bits as u32 as i32 as i64
    }

    /// The object-representation bits (two's complement, zero-extended to
    /// 64): what the byte-addressable memory model stores little-endian.
    #[inline(always)]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Reassemble a value of type `ty` from object-representation bits
    /// read back out of memory (the inverse of [`CInt::bits`] after
    /// truncation to the type's width).
    #[inline]
    pub fn from_bits(bits: u64, ty: IntTy) -> CInt {
        let mask = if ty.width() >= 64 {
            u64::MAX
        } else {
            (1u64 << ty.width()) - 1
        };
        CInt {
            bits: bits & mask,
            ty,
        }
    }

    /// The mathematical value: sign-extended for signed types,
    /// zero-extended for unsigned ones.
    #[inline]
    pub fn math(self) -> i128 {
        if self.ty.is_signed() && self.ty.width() < 128 {
            let shift = 64 - self.ty.width().min(64);
            (((self.bits << shift) as i64) >> shift) as i128
        } else {
            self.bits as i128
        }
    }

    /// Whether the value is zero (e.g. the null pointer constant test).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Convert to `to` (§6.3.1.2, §6.3.1.3). Returns the converted value
    /// and whether the conversion was *implementation-defined* — i.e. the
    /// target is signed and could not represent the value, so the result
    /// is this implementation's two's-complement wrap. Conversions to
    /// `_Bool` and to unsigned types are always defined.
    #[inline]
    pub fn convert(self, to: IntTy) -> (CInt, bool) {
        if to == self.ty {
            // Identity conversion — the ubiquitous hot case.
            return (self, false);
        }
        let v = self.math();
        let out = CInt::new(v, to);
        let impl_defined = to != IntTy::Bool && to.is_signed() && !to.contains(v);
        (out, impl_defined)
    }

    /// The value converted to its promoted type (§6.3.1.1:2) — always
    /// value-preserving on this target.
    pub fn promoted(self) -> CInt {
        self.convert(self.ty.promote()).0
    }
}

impl fmt::Display for CInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.math())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_ranges_are_lp64() {
        assert_eq!(IntTy::Int.width(), 32);
        assert_eq!(IntTy::Long.width(), 64);
        assert_eq!(IntTy::Long.size_bytes(), 8);
        assert_eq!(IntTy::Int.max(), 2147483647);
        assert_eq!(IntTy::Int.min(), -2147483648);
        assert_eq!(IntTy::UInt.max(), 4294967295);
        assert_eq!(IntTy::ULongLong.max(), u64::MAX as i128);
        assert_eq!(IntTy::Bool.max(), 1);
        assert!(IntTy::Char.is_signed(), "plain char is signed on LP64");
    }

    #[test]
    fn promotions_reach_int() {
        for t in [
            IntTy::Bool,
            IntTy::Char,
            IntTy::UChar,
            IntTy::Short,
            IntTy::UShort,
        ] {
            assert_eq!(t.promote(), IntTy::Int, "{t}");
        }
        for t in [IntTy::Int, IntTy::UInt, IntTy::Long, IntTy::ULong] {
            assert_eq!(t.promote(), t, "{t}");
        }
    }

    #[test]
    fn usual_arithmetic_conversions() {
        use IntTy::*;
        // Promotions first: small types meet at int.
        assert_eq!(IntTy::usual_arith(Char, Short), Int);
        // Same signedness: higher rank.
        assert_eq!(IntTy::usual_arith(Int, Long), Long);
        assert_eq!(IntTy::usual_arith(UInt, ULongLong), ULongLong);
        // Unsigned wins at equal rank.
        assert_eq!(IntTy::usual_arith(Int, UInt), UInt);
        // Signed wins when strictly wider (LP64: long covers unsigned int).
        assert_eq!(IntTy::usual_arith(UInt, Long), Long);
        // Same width, mixed signedness at higher signed rank: the signed
        // type's unsigned counterpart.
        assert_eq!(IntTy::usual_arith(ULong, LongLong), ULongLong);
    }

    #[test]
    fn conversions_wrap_and_classify() {
        // To unsigned: modulo, defined.
        let (v, idb) = CInt::new(-1, IntTy::Int).convert(IntTy::ULong);
        assert_eq!(v.math(), u64::MAX as i128);
        assert!(!idb);
        // To signed, unrepresentable: wrapped, implementation-defined.
        let (v, idb) = CInt::new(70000, IntTy::Int).convert(IntTy::Short);
        assert_eq!(v.math(), 4464);
        assert!(idb);
        // To _Bool: nonzero becomes 1, defined.
        let (v, idb) = CInt::new(42, IntTy::Int).convert(IntTy::Bool);
        assert_eq!(v.math(), 1);
        assert!(!idb);
        // Value-preserving conversions are exact.
        let (v, idb) = CInt::new(-5, IntTy::Char).convert(IntTy::Long);
        assert_eq!(v.math(), -5);
        assert!(!idb);
    }

    #[test]
    fn math_round_trips_through_bits() {
        for (v, ty) in [
            (-1i128, IntTy::Char),
            (255, IntTy::UChar),
            (-32768, IntTy::Short),
            (i64::MIN as i128, IntTy::Long),
            (u64::MAX as i128, IntTy::ULongLong),
            (1, IntTy::Bool),
        ] {
            assert_eq!(CInt::new(v, ty).math(), v, "{ty}");
        }
    }
}
