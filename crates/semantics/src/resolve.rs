//! Name resolution: binds every variable reference to a frame slot.
//!
//! This pass runs once, between parsing and evaluation, and turns the
//! evaluator's name lookups into array indexing:
//!
//! - every parameter and declaration in a function is assigned a dense,
//!   frame-relative [`SlotId`] (shadowing declarations get distinct
//!   slots, so the same lexical name can refer to different slots at
//!   different program points);
//! - every [`ExprKind::Ident`] that is visible from a declaration is
//!   rewritten to [`ExprKind::Slot`], keeping the original [`Symbol`] so
//!   diagnostics still print the identifier as it was spelled;
//! - identifiers with *no* visible declaration are left as `Ident` — the
//!   evaluator reports them only if they are actually reached, exactly as
//!   the pre-resolution engine did for dead code;
//! - same-scope redeclarations are flagged on the [`Decl`] (reported
//!   when executed, preserving lazy semantics), and array-size
//!   constant-ness (§6.6:6) is precomputed for the static-vs-VLA
//!   classification of non-positive sizes;
//! - a `symbol -> function` table is built so call-target lookup is O(1).
//!
//! Scoping follows C11 §6.2.1: a declaration's scope begins at the end of
//! its declarator — after its array size, before its initializer — so
//! `int x = x;` binds the initializer's `x` to the *new* declaration, and
//! a use of a name textually before its declaration in the same block
//! binds to an outer declaration (or stays unresolved).

use crate::ast::{Decl, ExprId, ExprKind, SlotId, Stmt, StmtId, TranslationUnit};
use crate::intern::Symbol;
use cundef_ub::SourceLoc;

/// Resolve `unit` in place. Called by [`crate::parser::parse`]; a unit
/// that came out of `parse` is always resolved.
pub fn resolve(unit: &mut TranslationUnit) {
    let mut func_by_symbol = vec![None; unit.interner.len()];
    for (i, f) in unit.functions.iter().enumerate() {
        // First definition wins, matching lookup order before this table
        // existed.
        let entry = &mut func_by_symbol[f.name.index()];
        if entry.is_none() {
            *entry = Some(i as u32);
        }
    }
    unit.func_by_symbol = func_by_symbol;

    for i in 0..unit.functions.len() {
        let mut r = Resolver {
            scopes: Vec::with_capacity(8),
            next_slot: 0,
            vla_slot: Vec::new(),
            labels: Vec::new(),
            gotos: Vec::new(),
        };
        // Parameters share the function body's outermost block scope
        // (C11 §6.2.1:4, §6.9.1:9), so a top-level body declaration of a
        // parameter's name is a redeclaration, not a shadow.
        r.scopes.push(Vec::new());
        for p in &unit.functions[i].params {
            let slot = r.fresh_slot();
            r.scopes
                .last_mut()
                .expect("param scope")
                .push((p.name, slot));
        }
        let body = std::mem::take(&mut unit.functions[i].body);
        for &s in &body {
            r.resolve_stmt(unit, s);
        }
        unit.functions[i].body = body;
        unit.functions[i].n_slots = r.next_slot;
        unit.functions[i].labels = r.labels;
        unit.functions[i].gotos = r.gotos;
    }
}

struct Resolver {
    /// Innermost scope last; each scope maps names to slots.
    scopes: Vec<Vec<(Symbol, SlotId)>>,
    next_slot: u32,
    /// Per-slot flag: the slot was declared as a variable length array.
    /// `sizeof` of a VLA is not a constant expression (§6.5.3.4:2), so
    /// the constness predicate below needs this to classify
    /// `int a[sizeof x]` as an ordinary array without misreading
    /// `int b[sizeof vla]`.
    vla_slot: Vec<bool>,
    /// Labels defined in the function, in source order — exported on the
    /// [`crate::ast::Function`] for the translation-phase analyzer
    /// (duplicate labels, goto targets, jumps into VLA scope).
    labels: Vec<(Symbol, SourceLoc)>,
    /// `goto` targets appearing in the function, in source order.
    gotos: Vec<(Symbol, SourceLoc)>,
}

impl Resolver {
    fn fresh_slot(&mut self) -> SlotId {
        let slot = SlotId(self.next_slot);
        self.next_slot += 1;
        self.vla_slot.push(false);
        slot
    }

    fn lookup(&self, name: Symbol) -> Option<SlotId> {
        self.scopes.iter().rev().find_map(|scope| {
            scope
                .iter()
                .rev()
                .find(|(n, _)| *n == name)
                .map(|(_, slot)| *slot)
        })
    }

    fn in_current_scope(&self, name: Symbol) -> bool {
        self.scopes
            .last()
            .expect("active scope")
            .iter()
            .any(|(n, _)| *n == name)
    }

    fn resolve_stmt(&mut self, unit: &mut TranslationUnit, s: StmtId) {
        // Take the statement out of the arena so we can walk children
        // through `unit` without aliasing; every path below puts it back.
        let placeholder = Stmt::Empty(SourceLoc::default());
        let mut stmt = std::mem::replace(&mut unit.stmts[s.0 as usize], placeholder);
        match &mut stmt {
            Stmt::Decl(d) => self.resolve_decl(unit, d),
            Stmt::Expr(e) => self.resolve_expr(unit, *e),
            Stmt::If(cond, then, els) => {
                self.resolve_expr(unit, *cond);
                let (then, els) = (*then, *els);
                self.resolve_stmt(unit, then);
                if let Some(els) = els {
                    self.resolve_stmt(unit, els);
                }
            }
            Stmt::While(cond, body) => {
                self.resolve_expr(unit, *cond);
                let body = *body;
                self.resolve_stmt(unit, body);
            }
            Stmt::For(init, cond, step, body) => {
                // The init declaration's scope is the whole loop (§6.8.5:5).
                self.scopes.push(Vec::new());
                let (init, cond, step, body) = (*init, *cond, *step, *body);
                if let Some(init) = init {
                    self.resolve_stmt(unit, init);
                }
                if let Some(cond) = cond {
                    self.resolve_expr(unit, cond);
                }
                if let Some(step) = step {
                    self.resolve_expr(unit, step);
                }
                self.resolve_stmt(unit, body);
                self.scopes.pop();
            }
            Stmt::Return(e, _) => {
                if let Some(e) = *e {
                    self.resolve_expr(unit, e);
                }
            }
            Stmt::Block(body, _) => {
                self.scopes.push(Vec::new());
                for &child in body.iter() {
                    self.resolve_stmt(unit, child);
                }
                self.scopes.pop();
            }
            Stmt::Switch(cond, body, _) => {
                self.resolve_expr(unit, *cond);
                let body = *body;
                self.resolve_stmt(unit, body);
            }
            Stmt::Case(e, inner, _) => {
                self.resolve_expr(unit, *e);
                let inner = *inner;
                self.resolve_stmt(unit, inner);
            }
            Stmt::Default(inner, _) => {
                let inner = *inner;
                self.resolve_stmt(unit, inner);
            }
            Stmt::Label(name, inner, loc) => {
                self.labels.push((*name, *loc));
                let inner = *inner;
                self.resolve_stmt(unit, inner);
            }
            Stmt::Goto(target, loc) => self.gotos.push((*target, *loc)),
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty(_) => {}
        }
        unit.stmts[s.0 as usize] = stmt;
    }

    fn resolve_decl(&mut self, unit: &mut TranslationUnit, d: &mut Decl) {
        // The declarator (including its array size) is resolved in the
        // scope *outside* the new binding: `int n = 2; { int n[n]; }`
        // sizes the array with the outer n (§6.2.1:7).
        if let Some(size) = d.array_size {
            self.resolve_expr(unit, size);
            d.const_size = self.is_constant_expr(unit, size);
        }
        d.redeclaration = self.in_current_scope(d.name);
        d.slot = self.fresh_slot();
        if d.array_size.is_some() && !d.const_size {
            self.vla_slot[d.slot.index()] = true;
        }
        self.scopes
            .last_mut()
            .expect("active scope")
            .push((d.name, d.slot));
        // The initializer sees the new binding: `int x = x;` reads the
        // fresh, indeterminate x.
        if let Some(init) = d.init {
            self.resolve_expr(unit, init);
        }
        // `d` lives outside the arena while its statement is detached, so
        // iterating it while resolving through `unit` does not alias.
        if let Some(items) = &d.array_init {
            for &item in items {
                self.resolve_expr(unit, item);
            }
        }
    }

    fn resolve_expr(&mut self, unit: &mut TranslationUnit, e: ExprId) {
        let kind = &unit.exprs[e.0 as usize].kind;
        match *kind {
            ExprKind::IntLit(_) => {}
            ExprKind::Ident(sym) => {
                if let Some(slot) = self.lookup(sym) {
                    unit.exprs[e.0 as usize].kind = ExprKind::Slot(slot, sym);
                }
            }
            // Already-resolved nodes only appear if resolve ran twice;
            // re-resolving is a no-op either way.
            ExprKind::Slot(_, _) => {}
            // `sizeof(type)` names no objects; a `sizeof expr` operand is
            // unevaluated but its names still resolve (§6.2.1 scope rules
            // apply to the program text, not to executions).
            ExprKind::SizeofType(_) => {}
            ExprKind::Unary(_, a)
            | ExprKind::Deref(a)
            | ExprKind::AddrOf(a)
            | ExprKind::PreIncDec(a, _)
            | ExprKind::PostIncDec(a, _)
            | ExprKind::SizeofExpr(a) => self.resolve_expr(unit, a),
            // A cast names no objects itself; its operand resolves.
            ExprKind::Cast(_, a) => self.resolve_expr(unit, a),
            ExprKind::Binary(_, a, b)
            | ExprKind::LogicalAnd(a, b)
            | ExprKind::LogicalOr(a, b)
            | ExprKind::Assign(a, _, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                self.resolve_expr(unit, a);
                self.resolve_expr(unit, b);
            }
            ExprKind::Conditional(c, t, f) => {
                self.resolve_expr(unit, c);
                self.resolve_expr(unit, t);
                self.resolve_expr(unit, f);
            }
            ExprKind::Call(_, ref args) => {
                let n = args.len();
                for i in 0..n {
                    let ExprKind::Call(_, args) = &unit.exprs[e.0 as usize].kind else {
                        unreachable!("node kind cannot change under us");
                    };
                    let a = args[i];
                    self.resolve_expr(unit, a);
                }
            }
        }
    }
}

impl Resolver {
    /// Whether `e` is an integer constant expression (§6.6:6) within the
    /// subset: built only from constants, `sizeof`, and arithmetic on
    /// them.
    fn is_constant_expr(&self, unit: &TranslationUnit, e: ExprId) -> bool {
        match unit.expr(e).kind {
            ExprKind::IntLit(_) | ExprKind::SizeofType(_) => true,
            // `sizeof expr` is constant unless the operand's type is
            // variably modified (§6.5.3.4:2) — checked structurally.
            ExprKind::SizeofExpr(a) => self.sizeof_operand_is_static(unit, a),
            ExprKind::Unary(_, a) => self.is_constant_expr(unit, a),
            // §6.6:6 — casts to integer types are admitted in integer
            // constant expressions; pointer casts are not.
            ExprKind::Cast(ref ty, a) => {
                matches!(ty, crate::ast::Ty::Int(_)) && self.is_constant_expr(unit, a)
            }
            ExprKind::Binary(_, a, b) | ExprKind::LogicalAnd(a, b) | ExprKind::LogicalOr(a, b) => {
                self.is_constant_expr(unit, a) && self.is_constant_expr(unit, b)
            }
            ExprKind::Conditional(c, t, f) => {
                self.is_constant_expr(unit, c)
                    && self.is_constant_expr(unit, t)
                    && self.is_constant_expr(unit, f)
            }
            _ => false,
        }
    }

    /// Whether a `sizeof` operand has a statically-sized type: no VLA
    /// designator anywhere the type computation could see. Conservative —
    /// anything this walk cannot classify (calls, derefs, assignments in
    /// the unevaluated operand) keeps the old "not a constant"
    /// classification, which errs toward the VLA treatment.
    fn sizeof_operand_is_static(&self, unit: &TranslationUnit, e: ExprId) -> bool {
        match unit.expr(e).kind {
            ExprKind::IntLit(_) | ExprKind::SizeofType(_) => true,
            ExprKind::Slot(slot, _) => !self.vla_slot.get(slot.index()).copied().unwrap_or(true),
            ExprKind::SizeofExpr(a) => self.sizeof_operand_is_static(unit, a),
            ExprKind::Unary(_, a) => self.sizeof_operand_is_static(unit, a),
            // A cast's type is the named type-name — never variably
            // modified in this subset, whatever the operand was.
            ExprKind::Cast(_, _) => true,
            ExprKind::Binary(_, a, b) | ExprKind::LogicalAnd(a, b) | ExprKind::LogicalOr(a, b) => {
                self.sizeof_operand_is_static(unit, a) && self.sizeof_operand_is_static(unit, b)
            }
            ExprKind::Conditional(c, t, f) => {
                self.sizeof_operand_is_static(unit, c)
                    && self.sizeof_operand_is_static(unit, t)
                    && self.sizeof_operand_is_static(unit, f)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// All `(slot, spelling)` pairs for resolved identifier references in
    /// `main`, in arena (roughly source) order.
    fn slots_of(src: &str) -> Vec<(u32, String)> {
        let unit = parse(src).unwrap();
        unit.exprs
            .iter()
            .filter_map(|e| match e.kind {
                ExprKind::Slot(slot, sym) => Some((slot.0, unit.interner.resolve(sym).to_string())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn params_and_locals_get_dense_slots() {
        let unit = parse("int f(int a, int b) { int c = a + b; return c; }").unwrap();
        assert_eq!(unit.functions[0].n_slots, 3);
    }

    #[test]
    fn shadowing_gets_a_distinct_slot() {
        let refs = slots_of("int main(void) { int x = 1; { int x = 2; x; } x; return 0; }");
        // inner `x;` and outer `x;` reference different slots with the
        // same spelling.
        let inner = refs.iter().find(|(s, _)| *s == 1).expect("inner ref");
        let outer = refs.iter().find(|(s, _)| *s == 0).expect("outer ref");
        assert_eq!(inner.1, "x");
        assert_eq!(outer.1, "x");
    }

    #[test]
    fn use_before_declaration_binds_the_outer_name() {
        // The `x` in `int y = x;` appears before the block's own `int x`,
        // so it must bind to the outer declaration (slot 0), not the
        // later one.
        let unit =
            parse("int main(void) { int x = 1; { int y = x; int x = 2; return y + x; } }").unwrap();
        let refs: Vec<_> = unit
            .exprs
            .iter()
            .filter_map(|e| match e.kind {
                ExprKind::Slot(slot, sym) if unit.interner.resolve(sym) == "x" => Some(slot.0),
                _ => None,
            })
            .collect();
        // First x reference -> outer slot 0; the one in `return y + x`
        // -> the block's own x.
        assert_eq!(refs.first(), Some(&0));
        assert!(refs.iter().any(|&s| s != 0));
    }

    #[test]
    fn unresolved_identifiers_stay_ident() {
        let unit = parse("int main(void) { if (0) { ghost; } return 0; }").unwrap();
        assert!(unit
            .exprs
            .iter()
            .any(|e| matches!(e.kind, ExprKind::Ident(s) if unit.interner.resolve(s) == "ghost")));
    }

    #[test]
    fn same_scope_redeclaration_is_flagged_lazily() {
        let unit = parse("int main(void) { int x = 1; int x = 2; return x; }").unwrap();
        let redecls: Vec<_> = unit
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Decl(d) => Some(d.redeclaration),
                _ => None,
            })
            .collect();
        assert_eq!(redecls, vec![false, true]);
    }

    #[test]
    fn array_size_constness_is_precomputed() {
        let unit =
            parse("int main(void) { int n = 3; int a[2 + 2]; int b[n]; return 0; }").unwrap();
        let consts: Vec<_> = unit
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Decl(d) if d.array_size.is_some() => Some(d.const_size),
                _ => None,
            })
            .collect();
        assert_eq!(consts, vec![true, false]);
    }

    #[test]
    fn label_and_goto_tables_are_exported() {
        let unit = parse("int main(void) { goto done; here: ; done: return 0; }").unwrap();
        let main = unit.function_named("main").unwrap();
        let labels: Vec<&str> = main
            .labels
            .iter()
            .map(|(s, _)| unit.interner.resolve(*s))
            .collect();
        assert_eq!(labels, ["here", "done"]);
        let gotos: Vec<&str> = main
            .gotos
            .iter()
            .map(|(s, _)| unit.interner.resolve(*s))
            .collect();
        assert_eq!(gotos, ["done"]);
    }

    #[test]
    fn function_table_maps_names_to_first_definition() {
        let unit = parse(
            "int f(void) { return 1; } int g(void) { return 2; } int main(void) { return f(); }",
        )
        .unwrap();
        let f = unit.interner.resolve(unit.functions[0].name);
        assert_eq!(f, "f");
        let sym = unit.functions[0].name;
        assert_eq!(unit.func_by_symbol[sym.index()], Some(0));
        assert!(unit.function(sym).is_some());
    }
}
