//! Tokenizer for the supported C subset.
//!
//! Produces a flat token stream with source positions; comments (both
//! styles) and whitespace are skipped. Unknown characters are reported as
//! [`LexError`]s with their position rather than being silently dropped —
//! a file outside the subset must fail loudly, never be half-analyzed.

use crate::intern::{Interner, Symbol};
use cundef_ub::SourceLoc;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword, interned (keywords are pre-interned at
    /// fixed [`crate::intern::kw`] indices, so the parser distinguishes
    /// them with integer compares).
    Ident(Symbol),
    /// Integer constant (decimal, octal, or hexadecimal in the source).
    Int(i64),
    /// Punctuator, e.g. `"+="`, `"("`, `"<<"`.
    Punct(&'static str),
}

/// A token plus its source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Position of the token's first character.
    pub loc: SourceLoc,
}

/// A character or constant the lexer cannot handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub loc: SourceLoc,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for LexError {}

/// All multi-character punctuators, longest first so that maximal munch
/// (C11 §6.4:4) falls out of a linear scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "&=", "^=", "|=", "->", "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "^",
    "|", "?", ":", ";", ",", "(", ")", "{", "}", "[", "]",
];

/// Tokenize `source` into a vector of positioned tokens, interning every
/// identifier into `interner`.
///
/// # Examples
///
/// ```
/// use cundef_semantics::intern::Interner;
/// use cundef_semantics::lexer::{lex, Tok};
///
/// let mut interner = Interner::new();
/// let toks = lex("x <<= 2;", &mut interner).unwrap();
/// assert_eq!(toks[1].tok, Tok::Punct("<<="));
/// assert_eq!(toks[0].loc.line, 1);
/// assert!(matches!(toks[0].tok, Tok::Ident(sym) if interner.resolve(sym) == "x"));
/// ```
pub fn lex(source: &str, interner: &mut Interner) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if bytes[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    'outer: while i < bytes.len() {
        let c = bytes[i];
        let loc = SourceLoc::new(line, col);
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance!(1);
            }
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            advance!(2);
            while i + 1 < bytes.len() {
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    advance!(2);
                    continue 'outer;
                }
                advance!(1);
            }
            return Err(LexError {
                message: "unterminated comment".into(),
                loc,
            });
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance!(1);
            }
            let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
            toks.push(Token {
                tok: Tok::Ident(interner.intern(text)),
                loc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                advance!(1);
            }
            let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
            let value = parse_int_constant(text).ok_or_else(|| LexError {
                message: format!("unsupported or out-of-range integer constant `{text}`"),
                loc,
            })?;
            toks.push(Token {
                tok: Tok::Int(value),
                loc,
            });
            continue;
        }
        for p in PUNCTS {
            if bytes[i..].starts_with(p.as_bytes()) {
                toks.push(Token {
                    tok: Tok::Punct(p),
                    loc,
                });
                advance!(p.len());
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected character `{}`", c as char),
            loc,
        });
    }
    Ok(toks)
}

/// Parse a decimal, octal, or hexadecimal constant that fits in `int`.
fn parse_int_constant(text: &str) -> Option<i64> {
    let value = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if text.len() > 1 && text.starts_with('0') {
        // A leading zero makes the constant octal (C11 §6.4.4.1); this
        // also rejects `8`/`9` digits rather than reinterpreting them.
        i64::from_str_radix(&text[1..], 8).ok()?
    } else if text.chars().all(|c| c.is_ascii_digit()) {
        text.parse::<i64>().ok()?
    } else {
        return None;
    };
    // The subset's only integer type is 32-bit int; a wider constant has
    // no type here, so refuse it during lexing.
    (value <= i32::MAX as i64).then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex1(source: &str) -> Result<Vec<Token>, LexError> {
        lex(source, &mut Interner::new())
    }

    #[test]
    fn maximal_munch_prefers_longest_punct() {
        let toks = lex1("a<<=b").unwrap();
        assert_eq!(toks[1].tok, Tok::Punct("<<="));
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex1("// c\n/* block\n*/ x").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].loc, cundef_ub::SourceLoc::new(3, 4));
    }

    #[test]
    fn identifiers_intern_to_the_same_symbol() {
        let mut interner = Interner::new();
        let toks = lex("abc xyz abc", &mut interner).unwrap();
        assert_eq!(toks[0].tok, toks[2].tok);
        assert_ne!(toks[0].tok, toks[1].tok);
        let Tok::Ident(sym) = toks[0].tok else {
            panic!("expected identifier");
        };
        assert_eq!(interner.resolve(sym), "abc");
    }

    #[test]
    fn keywords_intern_to_their_fixed_symbols() {
        let toks = lex1("while free").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident(crate::intern::kw::WHILE));
        assert_eq!(toks[1].tok, Tok::Ident(crate::intern::kw::FREE));
    }

    #[test]
    fn hex_constants() {
        let toks = lex1("0x10").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(16));
    }

    #[test]
    fn octal_constants() {
        let toks = lex1("010").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(8));
        let toks = lex1("0").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(0));
        // `09` is not a valid octal constant (§6.4.4.1) and must fail
        // loudly instead of being reinterpreted as decimal.
        assert!(lex1("09").is_err());
    }

    #[test]
    fn out_of_range_constant_is_rejected() {
        assert!(lex1("2147483648").is_err());
        assert!(lex1("2147483647").is_ok());
    }

    #[test]
    fn unknown_character_is_reported_with_position() {
        let err = lex1("x @").unwrap_err();
        assert_eq!(err.loc, cundef_ub::SourceLoc::new(1, 3));
    }
}
