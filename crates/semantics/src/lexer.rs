//! Tokenizer for the supported C subset.
//!
//! Produces a flat token stream with source positions; comments (both
//! styles) and whitespace are skipped. Unknown characters are reported as
//! [`LexError`]s with their position rather than being silently dropped —
//! a file outside the subset must fail loudly, never be half-analyzed.

use crate::ctype::{CInt, IntTy};
use crate::intern::{Interner, Symbol};
use cundef_ub::SourceLoc;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword, interned (keywords are pre-interned at
    /// fixed [`crate::intern::kw`] indices, so the parser distinguishes
    /// them with integer compares).
    Ident(Symbol),
    /// Integer constant (decimal, octal, or hexadecimal, with optional
    /// `u`/`l`/`ll` suffixes) or character constant, already *typed* per
    /// C11 §6.4.4.1/§6.4.4.4 against the LP64 target.
    Int(CInt),
    /// Punctuator, e.g. `"+="`, `"("`, `"<<"`.
    Punct(&'static str),
}

/// A token plus its source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Position of the token's first character.
    pub loc: SourceLoc,
}

/// A character or constant the lexer cannot handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Where it went wrong.
    pub loc: SourceLoc,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for LexError {}

/// All multi-character punctuators, longest first so that maximal munch
/// (C11 §6.4:4) falls out of a linear scan.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "&=", "^=", "|=", "->", "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "^",
    "|", "?", ":", ";", ",", "(", ")", "{", "}", "[", "]",
];

/// Tokenize `source` into a vector of positioned tokens, interning every
/// identifier into `interner`.
///
/// # Examples
///
/// ```
/// use cundef_semantics::intern::Interner;
/// use cundef_semantics::lexer::{lex, Tok};
///
/// let mut interner = Interner::new();
/// let toks = lex("x <<= 2;", &mut interner).unwrap();
/// assert_eq!(toks[1].tok, Tok::Punct("<<="));
/// assert_eq!(toks[0].loc.line, 1);
/// assert!(matches!(toks[0].tok, Tok::Ident(sym) if interner.resolve(sym) == "x"));
/// ```
pub fn lex(source: &str, interner: &mut Interner) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if bytes[i] == b'\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    'outer: while i < bytes.len() {
        let c = bytes[i];
        let loc = SourceLoc::new(line, col);
        if c.is_ascii_whitespace() {
            advance!(1);
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                advance!(1);
            }
            continue;
        }
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            advance!(2);
            while i + 1 < bytes.len() {
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    advance!(2);
                    continue 'outer;
                }
                advance!(1);
            }
            return Err(LexError {
                message: "unterminated comment".into(),
                loc,
            });
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                advance!(1);
            }
            let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
            toks.push(Token {
                tok: Tok::Ident(interner.intern(text)),
                loc,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                advance!(1);
            }
            let text = std::str::from_utf8(&bytes[start..i]).expect("ascii");
            let value = parse_int_constant(text).ok_or_else(|| LexError {
                message: format!("unsupported or out-of-range integer constant `{text}`"),
                loc,
            })?;
            toks.push(Token {
                tok: Tok::Int(value),
                loc,
            });
            continue;
        }
        if c == b'\'' {
            // Character constant (§6.4.4.4); its type is `int`.
            advance!(1);
            let err = |message: String| LexError { message, loc };
            if i >= bytes.len() {
                return Err(err("unterminated character constant".into()));
            }
            let value: i64 = match bytes[i] {
                b'\'' => return Err(err("empty character constant".into())),
                b'\n' => return Err(err("unterminated character constant".into())),
                b'\\' => {
                    advance!(1);
                    if i >= bytes.len() {
                        return Err(err("unterminated character constant".into()));
                    }
                    let esc = bytes[i];
                    advance!(1);
                    match esc {
                        b'n' => b'\n' as i64,
                        b't' => b'\t' as i64,
                        b'r' => b'\r' as i64,
                        b'0' => 0,
                        b'\\' => b'\\' as i64,
                        b'\'' => b'\'' as i64,
                        b'"' => b'"' as i64,
                        b'a' => 0x07,
                        b'b' => 0x08,
                        b'f' => 0x0c,
                        b'v' => 0x0b,
                        other => {
                            return Err(err(format!(
                                "unsupported escape sequence `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                plain => {
                    advance!(1);
                    plain as i64
                }
            };
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(err(
                    "character constant is unterminated or has more than one character \
                     (multi-character constants have implementation-defined values and \
                     are outside the subset)"
                        .into(),
                ));
            }
            advance!(1);
            toks.push(Token {
                tok: Tok::Int(CInt::int(value)),
                loc,
            });
            continue;
        }
        for p in PUNCTS {
            if bytes[i..].starts_with(p.as_bytes()) {
                toks.push(Token {
                    tok: Tok::Punct(p),
                    loc,
                });
                advance!(p.len());
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected character `{}`", c as char),
            loc,
        });
    }
    Ok(toks)
}

/// Parse and *type* an integer constant (C11 §6.4.4.1): split off the
/// `u`/`l`/`ll` suffix, read the digits in the right base, then take the
/// first type in the standard's candidate list that can represent the
/// value. Decimal constants without a `u` suffix never become unsigned;
/// octal and hexadecimal ones may. A constant no candidate can represent
/// has no type and is refused.
fn parse_int_constant(text: &str) -> Option<CInt> {
    let suffix_len = text
        .bytes()
        .rev()
        .take_while(|b| matches!(b, b'u' | b'U' | b'l' | b'L'))
        .count();
    let (body, suffix) = text.split_at(text.len() - suffix_len);
    // `lL`/`Ll` is not a valid long-long suffix (§6.4.4.1:1).
    if suffix.contains("lL") || suffix.contains("Ll") {
        return None;
    }
    let (has_u, longs) = match suffix.to_ascii_lowercase().as_str() {
        "" => (false, 0),
        "u" => (true, 0),
        "l" => (false, 1),
        "ll" => (false, 2),
        "ul" | "lu" => (true, 1),
        "ull" | "llu" => (true, 2),
        _ => return None,
    };
    let (value, decimal) =
        if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
            (u128::from_str_radix(hex, 16).ok()?, false)
        } else if body.len() > 1 && body.starts_with('0') {
            // A leading zero makes the constant octal (C11 §6.4.4.1); this
            // also rejects `8`/`9` digits rather than reinterpreting them.
            (u128::from_str_radix(&body[1..], 8).ok()?, false)
        } else if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
            (body.parse::<u128>().ok()?, true)
        } else {
            return None;
        };
    use IntTy::*;
    let candidates: &[IntTy] = match (has_u, longs, decimal) {
        (false, 0, true) => &[Int, Long, LongLong],
        (false, 0, false) => &[Int, UInt, Long, ULong, LongLong, ULongLong],
        (true, 0, _) => &[UInt, ULong, ULongLong],
        (false, 1, true) => &[Long, LongLong],
        (false, 1, false) => &[Long, ULong, LongLong, ULongLong],
        (true, 1, _) => &[ULong, ULongLong],
        (false, 2, true) => &[LongLong],
        (false, 2, false) => &[LongLong, ULongLong],
        (true, 2, _) => &[ULongLong],
        _ => unreachable!("longs is 0..=2"),
    };
    if value > u64::MAX as u128 {
        return None;
    }
    let v = value as i128;
    candidates
        .iter()
        .find(|ty| ty.contains(v))
        .map(|&ty| CInt::new(v, ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex1(source: &str) -> Result<Vec<Token>, LexError> {
        lex(source, &mut Interner::new())
    }

    #[test]
    fn maximal_munch_prefers_longest_punct() {
        let toks = lex1("a<<=b").unwrap();
        assert_eq!(toks[1].tok, Tok::Punct("<<="));
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex1("// c\n/* block\n*/ x").unwrap();
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].loc, cundef_ub::SourceLoc::new(3, 4));
    }

    #[test]
    fn identifiers_intern_to_the_same_symbol() {
        let mut interner = Interner::new();
        let toks = lex("abc xyz abc", &mut interner).unwrap();
        assert_eq!(toks[0].tok, toks[2].tok);
        assert_ne!(toks[0].tok, toks[1].tok);
        let Tok::Ident(sym) = toks[0].tok else {
            panic!("expected identifier");
        };
        assert_eq!(interner.resolve(sym), "abc");
    }

    #[test]
    fn keywords_intern_to_their_fixed_symbols() {
        let toks = lex1("while free").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident(crate::intern::kw::WHILE));
        assert_eq!(toks[1].tok, Tok::Ident(crate::intern::kw::FREE));
    }

    /// The first token of `source`, which must be an integer constant.
    fn int1(source: &str) -> CInt {
        match lex1(source).unwrap()[0].tok {
            Tok::Int(c) => c,
            other => panic!("expected constant, got {other:?}"),
        }
    }

    #[test]
    fn hex_constants() {
        assert_eq!(int1("0x10").math(), 16);
        assert_eq!(int1("0x1F").ty, IntTy::Int);
        // A hex constant too big for int may become unsigned int
        // (§6.4.4.1's list differs from the decimal one).
        assert_eq!(int1("0xFFFFFFFF").ty, IntTy::UInt);
        assert_eq!(int1("0xFFFFFFFF").math(), 4294967295);
        // `unsigned long` precedes `unsigned long long` in the hex
        // candidate list and already fits 64 bits on LP64.
        assert_eq!(int1("0xFFFFFFFFFFFFFFFF").ty, IntTy::ULong);
    }

    #[test]
    fn octal_constants() {
        assert_eq!(int1("010").math(), 8);
        assert_eq!(int1("0").math(), 0);
        // `09` is not a valid octal constant (§6.4.4.1) and must fail
        // loudly instead of being reinterpreted as decimal.
        assert!(lex1("09").is_err());
    }

    #[test]
    fn constants_take_the_first_fitting_type() {
        assert_eq!(int1("2147483647").ty, IntTy::Int);
        // A decimal constant one past INT_MAX is a (signed) long on
        // LP64 — never unsigned without a `u` suffix.
        assert_eq!(int1("2147483648").ty, IntTy::Long);
        assert_eq!(int1("9223372036854775807").ty, IntTy::Long);
        // …and past LLONG_MAX a decimal constant has no type at all.
        assert!(lex1("9223372036854775808").is_err());
        assert!(lex1("18446744073709551615u").is_ok());
    }

    #[test]
    fn suffixes_select_types() {
        assert_eq!(int1("1u").ty, IntTy::UInt);
        assert_eq!(int1("1U").ty, IntTy::UInt);
        assert_eq!(int1("1l").ty, IntTy::Long);
        assert_eq!(int1("1L").ty, IntTy::Long);
        assert_eq!(int1("1ll").ty, IntTy::LongLong);
        assert_eq!(int1("1ul").ty, IntTy::ULong);
        assert_eq!(int1("1lu").ty, IntTy::ULong);
        assert_eq!(int1("1ull").ty, IntTy::ULongLong);
        assert_eq!(int1("4294967295u").ty, IntTy::UInt);
        assert_eq!(int1("4294967296u").ty, IntTy::ULong);
        assert_eq!(int1("0x10uL").ty, IntTy::ULong);
        // Invalid suffixes are refused, including the mixed-case ll.
        assert!(lex1("1uu").is_err());
        assert!(lex1("1lL").is_err());
        assert!(lex1("1lll").is_err());
        assert!(lex1("1x").is_err());
    }

    #[test]
    fn character_constants_are_int_typed() {
        assert_eq!(int1("'a'").math(), 97);
        assert_eq!(int1("'a'").ty, IntTy::Int);
        assert_eq!(int1("'\\n'").math(), 10);
        assert_eq!(int1("'\\0'").math(), 0);
        assert_eq!(int1("'\\''").math(), 39);
        assert_eq!(int1("'\\\\'").math(), 92);
        // Empty, multi-character, unterminated, and unknown escapes all
        // fail loudly.
        assert!(lex1("''").is_err());
        assert!(lex1("'ab'").is_err());
        assert!(lex1("'a").is_err());
        assert!(lex1("'\\q'").is_err());
    }

    #[test]
    fn unterminated_comment_is_reported_at_its_start() {
        let err = lex1("int x;\n/* never closed").unwrap_err();
        assert!(err.message.contains("unterminated comment"), "{err}");
        assert_eq!(err.loc, cundef_ub::SourceLoc::new(2, 1));
    }

    #[test]
    fn unknown_character_is_reported_with_position() {
        let err = lex1("x @").unwrap_err();
        assert_eq!(err.loc, cundef_ub::SourceLoc::new(1, 3));
    }
}
