//! Execution telemetry: what the engines actually did, counted.
//!
//! [`ExecProfile`] collects the counters behind `cundef --profile`: the
//! opcode dispatch histogram, superinstruction and word-fast-path hit
//! rates versus typed-core fallbacks, footprint-elision rate, and the
//! memory story (objects allocated, peak live bytes, heap churn). The
//! ROADMAP's residual-overhead claims — per-declaration allocation,
//! frame setup, `mem/*` byte sweeps — become first-class numbers here
//! instead of ad-hoc measurements.
//!
//! Cost discipline: profiling is opt-in per [`crate::eval::Interp`],
//! and the bytecode dispatch loop is monomorphized over a
//! `const PROFILE: bool`, so the disabled path contains **no** counter
//! code at all — the `--min-check-geomean` CI guard keeps that honest.
//! The shared allocation paths (used by both engines) guard their
//! counters behind one predictable branch, which is noise next to the
//! allocation itself.

use std::collections::BTreeMap;

/// Fused superinstructions: one dispatch covering several tree nodes.
const SUPERINSTRUCTIONS: &[&str] = &[
    "BinSS",
    "BinSC",
    "BinVS",
    "Bin2SF",
    "Bin2VF",
    "BrCmpSS",
    "BrCmpSC",
    "AssignSlot",
    "AssignSlotPop",
    "IncDecSlotStmt",
    "IndexRead",
    "ByteSweep",
    "Bin2FC",
    "TailSelf",
];

/// Honest tree-walker fallbacks: whole constructs handed back to the
/// reference semantics (and therefore to full footprint tracking).
const TREE_FALLBACKS: &[&str] = &["EvalFull", "EvalFullPop", "ExecStmt", "DeclFull"];

/// Ops that terminate a *compiled* full expression: each one executed
/// is a full expression whose §6.5:2 footprint traffic the compiler
/// proved vacuous and elided (`compile::elidable`).
const ELIDED_BOUNDARIES: &[&str] = &[
    "PopSeq",
    "AssignSlotPop",
    "IncDecSlotStmt",
    "BrCmpSS",
    "BrCmpSC",
    "BranchFalseSeq",
    "DeclInit",
    "Ret",
];

/// Counters describing one execution, collected when profiling is
/// enabled on the interpreter.
///
/// The bytecode engine fills everything; the tree-walker (reference
/// semantics) has no opcodes or fast paths, so under `--engine tree`
/// only the step and memory counters are meaningful.
///
/// # Examples
///
/// ```
/// use cundef_semantics::{parser, Interp, Limits};
///
/// let unit = parser::parse(
///     "int main(void) { int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }",
/// ).unwrap();
/// let mut interp = Interp::new(&unit, Limits::default());
/// interp.enable_profiling();
/// interp.run_main();
/// let p = interp.profile().expect("profiling was enabled");
/// assert!(p.ops_executed > 0);
/// assert!(p.objects_allocated >= 2); // s and i
/// assert!(p.superinstruction_hits() > 0); // the loop compare/step fuse
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Semantic steps charged against [`crate::Limits::max_steps`]
    /// (tree-walker work units; the VM batches and settles them).
    pub steps: u64,
    /// Total bytecode ops dispatched (0 under the tree engine).
    pub ops_executed: u64,
    /// Dispatch histogram: executions per opcode mnemonic.
    pub op_counts: BTreeMap<&'static str, u64>,
    /// Single-word fast-path completions (slot loads, fused stores,
    /// `++`/`--`, reads/writes through pointers) that skipped the typed
    /// core.
    pub word_fast_hits: u64,
    /// Times a fast-path guard failed and the generic typed core ran
    /// instead (interesting object state: uninitialized bytes, `_Bool`,
    /// `const`, dead objects, misalignment…).
    pub word_fast_fallbacks: u64,
    /// Objects allocated (both engines: declarations, parameters,
    /// `malloc`).
    pub objects_allocated: u64,
    /// High-water mark of live object bytes.
    pub peak_live_bytes: u64,
    /// Bytes of object storage currently live (ends at the leak
    /// residue: objects still alive when execution stopped).
    pub live_bytes: u64,
    /// `malloc` calls.
    pub heap_allocs: u64,
    /// `free` calls that ended a heap object's lifetime.
    pub heap_frees: u64,
    /// Total bytes ever obtained from `malloc` (churn, not residency).
    pub heap_bytes_allocated: u64,
    /// Allocations served by recycling a retired slab slot (epoch bump +
    /// storage reuse) instead of growing the object slab.
    pub arena_recycles: u64,
    /// Allocations that grew the slab — no retired slot was available
    /// (or the only candidate was pinned by the live footprint arena).
    pub arena_misses: u64,
    /// Calls whose slot region fit under the slot stack's high-water
    /// mark: the frame re-bound storage an earlier call already paid
    /// for.
    pub frame_pool_hits: u64,
    /// Calls that pushed the slot stack past its high-water mark
    /// (first-time-deep call chains).
    pub frame_pool_misses: u64,
    /// Fused byte-sweep superinstructions that ran to completion: one
    /// validation + bulk move instead of a per-byte interpreted loop.
    pub sweep_hits: u64,
    /// Byte-sweep prechecks that failed, falling back to the general
    /// per-byte loop (which reports any diagnostic exactly).
    pub sweep_fallbacks: u64,
}

impl ExecProfile {
    /// Record one dispatched op by mnemonic.
    #[inline]
    pub(crate) fn note_op(&mut self, mnemonic: &'static str) {
        self.ops_executed += 1;
        *self.op_counts.entry(mnemonic).or_insert(0) += 1;
    }

    /// Record an object allocation (shared by both engines).
    #[inline]
    pub(crate) fn note_alloc(&mut self, bytes: usize, heap: bool) {
        self.objects_allocated += 1;
        self.live_bytes += bytes as u64;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        if heap {
            self.heap_allocs += 1;
            self.heap_bytes_allocated += bytes as u64;
        }
    }

    /// Record the end of an object's lifetime.
    #[inline]
    pub(crate) fn note_dealloc(&mut self, bytes: usize, heap: bool) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes as u64);
        if heap {
            self.heap_frees += 1;
        }
    }

    /// Sum of the histogram over a mnemonic list.
    fn count(&self, mnemonics: &[&str]) -> u64 {
        mnemonics.iter().filter_map(|m| self.op_counts.get(m)).sum()
    }

    /// Executions of fused superinstructions (one dispatch covering
    /// several tree nodes: `BinSS`, `BrCmpSC`, `AssignSlotPop`, …).
    pub fn superinstruction_hits(&self) -> u64 {
        self.count(SUPERINSTRUCTIONS)
    }

    /// Executions of honest tree-walker fallback ops (`EvalFull`,
    /// `ExecStmt`, `DeclFull`, …): constructs the compiler handed back
    /// to the reference semantics.
    pub fn tree_fallback_ops(&self) -> u64 {
        self.count(TREE_FALLBACKS)
    }

    /// Compiled full expressions executed with their §6.5:2 footprint
    /// traffic elided (each is one boundary op: `PopSeq`,
    /// `AssignSlotPop`, `BrCmp*`, `DeclInit`, `Ret`, …).
    pub fn elided_boundaries(&self) -> u64 {
        self.count(ELIDED_BOUNDARIES)
    }

    /// Fraction of executed full expressions whose sequencing footprint
    /// was elided: elided boundaries over elided-plus-tree-fallbacks.
    /// (A tree fallback executes at least one footprint-tracked full
    /// expression, so this slightly *understates* elision when a single
    /// `ExecStmt` covers many.) `None` when nothing executed.
    pub fn footprint_elision_rate(&self) -> Option<f64> {
        let elided = self.elided_boundaries();
        let tracked = self.tree_fallback_ops();
        let total = elided + tracked;
        (total > 0).then(|| elided as f64 / total as f64)
    }

    /// Fraction of guarded single-word accesses that completed on the
    /// fast path. `None` when no guarded access ran.
    pub fn word_fast_hit_rate(&self) -> Option<f64> {
        let total = self.word_fast_hits + self.word_fast_fallbacks;
        (total > 0).then(|| self.word_fast_hits as f64 / total as f64)
    }

    /// Fraction of object allocations served by recycling a retired
    /// slab slot. `None` when nothing was allocated.
    pub fn arena_recycle_rate(&self) -> Option<f64> {
        let total = self.arena_recycles + self.arena_misses;
        (total > 0).then(|| self.arena_recycles as f64 / total as f64)
    }

    /// Fraction of calls that re-bound pooled frame storage. `None`
    /// when no call ran.
    pub fn frame_pool_hit_rate(&self) -> Option<f64> {
        let total = self.frame_pool_hits + self.frame_pool_misses;
        (total > 0).then(|| self.frame_pool_hits as f64 / total as f64)
    }

    /// Fraction of fused byte-sweep attempts that completed as bulk
    /// moves. `None` when no sweep op ran.
    pub fn sweep_hit_rate(&self) -> Option<f64> {
        let total = self.sweep_hits + self.sweep_fallbacks;
        (total > 0).then(|| self.sweep_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_come_from_the_histogram() {
        let mut p = ExecProfile::default();
        for _ in 0..3 {
            p.note_op("BrCmpSC");
        }
        p.note_op("EvalFullPop");
        p.note_op("Const");
        assert_eq!(p.ops_executed, 5);
        assert_eq!(p.superinstruction_hits(), 3);
        assert_eq!(p.tree_fallback_ops(), 1);
        assert_eq!(p.elided_boundaries(), 3);
        assert_eq!(p.footprint_elision_rate(), Some(0.75));
    }

    #[test]
    fn memory_counters_track_peak_and_churn() {
        let mut p = ExecProfile::default();
        p.note_alloc(16, false);
        p.note_alloc(32, true);
        p.note_dealloc(32, true);
        p.note_alloc(8, false);
        assert_eq!(p.objects_allocated, 3);
        assert_eq!(p.peak_live_bytes, 48);
        assert_eq!(p.live_bytes, 24);
        assert_eq!(p.heap_allocs, 1);
        assert_eq!(p.heap_frees, 1);
        assert_eq!(p.heap_bytes_allocated, 32);
    }

    #[test]
    fn empty_profile_has_no_rates() {
        let p = ExecProfile::default();
        assert_eq!(p.footprint_elision_rate(), None);
        assert_eq!(p.word_fast_hit_rate(), None);
    }
}
