//! Integer constant expressions (C11 §6.6), evaluated at translation
//! time.
//!
//! Two layers live here:
//!
//! - [`int_arith`] / [`int_neg`] — the *shared arithmetic core*: 32-bit
//!   `int` semantics with every undefined case (overflow, division by
//!   zero, the four shift rules) reported as a `(UbKind, detail)` pair.
//!   The evaluator uses it at run time and [`const_eval`] uses it at
//!   translation time, so the two phases can never disagree about what
//!   `1 << 40` means.
//! - [`const_eval`] — the constant-expression engine: evaluates the
//!   subset of expressions §6.6 admits (constants, arithmetic, `&&`/`||`
//!   with their short circuits, `?:`). Anything else — identifiers,
//!   assignments, calls, the comma operator (§6.6:3) — is
//!   [`ConstStop::NotConst`]. An undefined operation *inside* a constant
//!   expression violates §6.6:4 ("each constant expression shall
//!   evaluate to a constant in the range of representable values") and
//!   comes back as [`ConstStop::Ub`] carrying the same [`UbKind`] the
//!   evaluator would have raised.
//!
//! This is what lets the translation-phase analyzer diagnose
//! `int a[1 << 40];` or a division by zero in a `case` label in code
//! that is never executed.

use crate::ast::{BinOp, ExprId, ExprKind, TranslationUnit, UnaryOp};
use cundef_ub::{SourceLoc, UbKind};

const INT_MIN: i64 = i32::MIN as i64;
const INT_MAX: i64 = i32::MAX as i64;
const INT_WIDTH: i64 = 32;

/// Why an expression has no translation-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstStop {
    /// The expression is not an integer constant expression (it contains
    /// an identifier, assignment, call, comma operator, …).
    NotConst(SourceLoc),
    /// The expression is constant but evaluating it is undefined
    /// (§6.6:4): the same defect the evaluator would raise at run time.
    Ub {
        /// The category of undefined behavior.
        kind: UbKind,
        /// Rendered description of the offending operation.
        detail: String,
        /// Position of the offending operator.
        loc: SourceLoc,
    },
}

/// `-n` in 32-bit `int` arithmetic.
pub fn int_neg(n: i64) -> Result<i64, (UbKind, String)> {
    let r = -n;
    if !(INT_MIN..=INT_MAX).contains(&r) {
        return Err((
            UbKind::SignedOverflow,
            format!("-({n}) is not representable in int"),
        ));
    }
    Ok(r)
}

/// `a <op> b` in 32-bit `int` arithmetic, with every undefined case
/// reported: §6.5:5 (overflow), §6.5.5:5/:6 (division), §6.5.7:3/:4
/// (shifts).
///
/// # Examples
///
/// ```
/// use cundef_semantics::consteval::int_arith;
/// use cundef_semantics::ast::BinOp;
/// use cundef_ub::UbKind;
///
/// assert_eq!(int_arith(BinOp::Add, 2, 2), Ok(4));
/// assert_eq!(int_arith(BinOp::Div, 1, 0).unwrap_err().0, UbKind::DivisionByZero);
/// assert_eq!(int_arith(BinOp::Shl, 1, 40).unwrap_err().0, UbKind::ShiftTooFar);
/// ```
pub fn int_arith(op: BinOp, a: i64, b: i64) -> Result<i64, (UbKind, String)> {
    use BinOp::*;
    let wide = match op {
        Add => a + b,
        Sub => a - b,
        Mul => a * b,
        Div | Rem => {
            if b == 0 {
                let kind = if op == Div {
                    UbKind::DivisionByZero
                } else {
                    UbKind::ModuloByZero
                };
                return Err((kind, format!("{a} {} 0", symbol(op))));
            }
            if a == INT_MIN && b == -1 {
                return Err((
                    UbKind::DivisionOverflow,
                    format!("{a} {} -1 is not representable", symbol(op)),
                ));
            }
            if op == Div {
                a / b
            } else {
                a % b
            }
        }
        Shl | Shr => {
            if b < 0 {
                return Err((
                    UbKind::ShiftByNegative,
                    format!("shift amount {b} is negative"),
                ));
            }
            if b >= INT_WIDTH {
                return Err((
                    UbKind::ShiftTooFar,
                    format!("shift amount {b} >= width {INT_WIDTH}"),
                ));
            }
            if op == Shl {
                if a < 0 {
                    return Err((
                        UbKind::ShiftOfNegative,
                        format!("left shift of negative value {a}"),
                    ));
                }
                let r = a << b;
                if r > INT_MAX {
                    return Err((
                        UbKind::ShiftOverflow,
                        format!("{a} << {b} is not representable in int"),
                    ));
                }
                r
            } else {
                // Right shift of a negative value is implementation-
                // defined, not undefined (§6.5.7:5); model arithmetic
                // shift like every mainstream implementation.
                a >> b
            }
        }
        Lt => (a < b) as i64,
        Le => (a <= b) as i64,
        Gt => (a > b) as i64,
        Ge => (a >= b) as i64,
        Eq => (a == b) as i64,
        Ne => (a != b) as i64,
        BitAnd => ((a as i32) & (b as i32)) as i64,
        BitXor => ((a as i32) ^ (b as i32)) as i64,
        BitOr => ((a as i32) | (b as i32)) as i64,
    };
    if !(INT_MIN..=INT_MAX).contains(&wide) {
        return Err((
            UbKind::SignedOverflow,
            format!("{a} {} {b} is not representable in int", symbol(op)),
        ));
    }
    Ok(wide)
}

/// The spelling of a binary operator, for diagnostics.
pub fn symbol(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitXor => "^",
        BitOr => "|",
    }
}

/// Evaluate `e` as an integer constant expression (§6.6).
///
/// # Examples
///
/// ```
/// use cundef_semantics::consteval::{const_eval, ConstStop};
/// use cundef_semantics::parser::parse;
/// use cundef_semantics::ast::{ExprKind, Stmt};
///
/// let unit = parse("int main(void) { int a[2 + 3]; return 0; }").unwrap();
/// let size = unit.stmts.iter().find_map(|s| match s {
///     Stmt::Decl(d) => d.array_size,
///     _ => None,
/// }).unwrap();
/// assert_eq!(const_eval(&unit, size), Ok(5));
/// ```
pub fn const_eval(unit: &TranslationUnit, e: ExprId) -> Result<i64, ConstStop> {
    let expr = unit.expr(e);
    let loc = expr.loc;
    let ub = |(kind, detail): (UbKind, String)| ConstStop::Ub { kind, detail, loc };
    match &expr.kind {
        ExprKind::IntLit(v) => Ok(*v),
        ExprKind::Unary(op, inner) => {
            let v = const_eval(unit, *inner)?;
            match op {
                UnaryOp::Neg => int_neg(v).map_err(ub),
                UnaryOp::Not => Ok((v == 0) as i64),
                UnaryOp::BitNot => Ok(!(v as i32) as i64),
            }
        }
        ExprKind::Binary(op, l, r) => {
            let a = const_eval(unit, *l)?;
            let b = const_eval(unit, *r)?;
            int_arith(*op, a, b).map_err(ub)
        }
        ExprKind::LogicalAnd(l, r) => {
            // The unevaluated operand of a short circuit is exempt from
            // §6.6:4, mirroring run-time semantics (§6.5.13:4).
            if const_eval(unit, *l)? == 0 {
                return Ok(0);
            }
            Ok((const_eval(unit, *r)? != 0) as i64)
        }
        ExprKind::LogicalOr(l, r) => {
            if const_eval(unit, *l)? != 0 {
                return Ok(1);
            }
            Ok((const_eval(unit, *r)? != 0) as i64)
        }
        ExprKind::Conditional(c, t, f) => {
            let cv = const_eval(unit, *c)?;
            const_eval(unit, if cv != 0 { *t } else { *f })
        }
        // Everything else — identifiers, assignments, calls, the comma
        // operator (explicitly banned by §6.6:3) — is not a constant
        // expression.
        _ => Err(ConstStop::NotConst(loc)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::parser::parse;

    /// Constant-evaluate the size expression of the first array
    /// declaration in `main`.
    fn eval_size(size_src: &str) -> Result<i64, ConstStop> {
        let unit = parse(&format!(
            "int main(void) {{ int a[{size_src}]; return 0; }}"
        ))
        .unwrap();
        let size = unit
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Decl(d) => d.array_size,
                _ => None,
            })
            .expect("array decl");
        const_eval(&unit, size)
    }

    #[test]
    fn arithmetic_and_logic_fold() {
        assert_eq!(eval_size("2 + 3 * 4"), Ok(14));
        assert_eq!(eval_size("1 ? 7 : 1 / 0"), Ok(7));
        assert_eq!(eval_size("0 && 1 / 0"), Ok(0));
        assert_eq!(eval_size("1 || 1 / 0"), Ok(1));
        assert_eq!(eval_size("~0 + 2"), Ok(1));
    }

    #[test]
    fn undefined_constant_operations_carry_their_kind() {
        match eval_size("1 / 0") {
            Err(ConstStop::Ub { kind, .. }) => assert_eq!(kind, UbKind::DivisionByZero),
            other => panic!("unexpected {other:?}"),
        }
        match eval_size("1 << 40") {
            Err(ConstStop::Ub { kind, .. }) => assert_eq!(kind, UbKind::ShiftTooFar),
            other => panic!("unexpected {other:?}"),
        }
        match eval_size("2147483647 + 1") {
            Err(ConstStop::Ub { kind, .. }) => assert_eq!(kind, UbKind::SignedOverflow),
            other => panic!("unexpected {other:?}"),
        }
        match eval_size("-2147483647 - 1 - 1") {
            Err(ConstStop::Ub { kind, .. }) => assert_eq!(kind, UbKind::SignedOverflow),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_constant_forms_are_not_const() {
        let unit = parse("int main(void) { int n = 3; int a[n]; return 0; }").unwrap();
        let size = unit
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Decl(d) => d.array_size,
                _ => None,
            })
            .unwrap();
        assert!(matches!(
            const_eval(&unit, size),
            Err(ConstStop::NotConst(_))
        ));
        // The comma operator is banned from constant expressions (§6.6:3).
        assert!(matches!(eval_size("(1, 2)"), Err(ConstStop::NotConst(_))));
    }
}
