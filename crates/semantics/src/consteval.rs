//! Integer constant expressions (C11 §6.6), evaluated at translation
//! time.
//!
//! Two layers live here:
//!
//! - [`arith`] / [`neg`] / [`bit_not`] — the *shared arithmetic core*:
//!   typed integer semantics over the LP64 lattice in [`crate::ctype`],
//!   with the integer promotions and usual arithmetic conversions applied
//!   exactly once, unsigned wraparound evaluated as defined behavior, and
//!   every undefined case (signed overflow, division by zero, the
//!   per-width shift rules) reported as a `(UbKind, detail)` pair. The
//!   evaluator uses it at run time and [`const_eval`] uses it at
//!   translation time, so the two phases can never disagree about what
//!   `1 << 31` or `1u << 31` means.
//! - [`const_eval`] — the constant-expression engine: evaluates the
//!   subset of expressions §6.6 admits (constants, arithmetic, `&&`/`||`
//!   with their short circuits, `?:`, `sizeof(type)`). Anything else —
//!   identifiers, assignments, calls, the comma operator (§6.6:3) — is
//!   [`ConstStop::NotConst`]. An undefined operation *inside* a constant
//!   expression violates §6.6:4 ("each constant expression shall
//!   evaluate to a constant in the range of representable values") and
//!   comes back as [`ConstStop::Ub`] carrying the same [`UbKind`] the
//!   evaluator would have raised.
//!
//! This is what lets the translation-phase analyzer diagnose
//! `int a[1 << 40];` or a division by zero in a `case` label in code
//! that is never executed — at the right width: `long a = 1L << 40;` is
//! defined, `int a[1 << 40]` is not.

use crate::ast::{BinOp, ExprId, ExprKind, TranslationUnit, Ty, UnaryOp};
use crate::ctype::{CInt, IntTy, PTR_BYTES, SIZE_T};
use cundef_ub::{SourceLoc, UbKind};

/// Why an expression has no translation-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstStop {
    /// The expression is not an integer constant expression (it contains
    /// an identifier, assignment, call, comma operator, …).
    NotConst(SourceLoc),
    /// The expression is constant but evaluating it is undefined
    /// (§6.6:4): the same defect the evaluator would raise at run time.
    Ub {
        /// The category of undefined behavior.
        kind: UbKind,
        /// Rendered description of the offending operation.
        detail: String,
        /// Position of the offending operator.
        loc: SourceLoc,
    },
}

/// `-e` after the integer promotions. Negating the most negative value
/// of a signed type overflows (§6.5:5); negating an unsigned value wraps
/// by definition (§6.2.5:9) and is defined.
pub fn neg(a: CInt) -> Result<CInt, (UbKind, String)> {
    if a.ty == IntTy::Int {
        // Fast lane, mirroring the general path at type `int`.
        let v = a.math_i32();
        if v == i32::MIN as i64 {
            return Err((
                UbKind::SignedOverflow,
                format!("-({v}) is not representable in int"),
            ));
        }
        return Ok(CInt::int(-v));
    }
    let a = a.promoted();
    let r = -a.math();
    if a.ty.is_signed() && !a.ty.contains(r) {
        return Err((
            UbKind::SignedOverflow,
            format!("-({a}) is not representable in {}", a.ty.name()),
        ));
    }
    Ok(CInt::new(r, a.ty))
}

/// `~e` after the integer promotions — always representable.
pub fn bit_not(a: CInt) -> Result<CInt, (UbKind, String)> {
    let a = a.promoted();
    Ok(CInt::new(!a.math(), a.ty))
}

/// `a <op> b` in typed integer arithmetic, with every undefined case
/// reported: §6.5:5 (signed overflow at the converted type), §6.5.5:5/:6
/// (division), §6.5.7:3/:4 (shifts, checked against the width of the
/// *promoted left operand*). Unsigned results wrap — defined behavior,
/// never a verdict.
///
/// # Examples
///
/// ```
/// use cundef_semantics::consteval::arith;
/// use cundef_semantics::ast::BinOp;
/// use cundef_semantics::ctype::{CInt, IntTy};
/// use cundef_ub::UbKind;
///
/// let i = |v| CInt::new(v, IntTy::Int);
/// assert_eq!(arith(BinOp::Add, i(2), i(2)).unwrap().math(), 4);
/// assert_eq!(arith(BinOp::Div, i(1), i(0)).unwrap_err().0, UbKind::DivisionByZero);
/// // `1 << 31` overflows int, but `1u << 31` is defined…
/// assert_eq!(arith(BinOp::Shl, i(1), i(31)).unwrap_err().0, UbKind::ShiftOverflow);
/// let u1 = CInt::new(1, IntTy::UInt);
/// assert_eq!(arith(BinOp::Shl, u1, i(31)).unwrap().math(), 2147483648);
/// // …and a long shift is checked at width 64.
/// let l1 = CInt::new(1, IntTy::Long);
/// assert_eq!(arith(BinOp::Shl, l1, i(40)).unwrap().math(), 1i128 << 40);
/// assert_eq!(arith(BinOp::Shl, l1, i(64)).unwrap_err().0, UbKind::ShiftTooFar);
/// ```
#[inline]
pub fn arith(op: BinOp, a: CInt, b: CInt) -> Result<CInt, (UbKind, String)> {
    // Fast lane for the overwhelmingly common `int <op> int` case: plain
    // i64 arithmetic with an i32 range check, no promotion or conversion
    // machinery. Semantically identical to the general path below (the
    // differential suite holds both to that).
    if a.ty == IntTy::Int && b.ty == IntTy::Int {
        return arith_int(op, a.math_i32(), b.math_i32());
    }
    arith_general(op, a, b)
}

/// The general, any-width path of [`arith`]: promotions, usual
/// arithmetic conversions, and per-width checks over `i128` math.
fn arith_general(op: BinOp, a: CInt, b: CInt) -> Result<CInt, (UbKind, String)> {
    use BinOp::*;
    match op {
        Shl | Shr => {
            // §6.5.7:3 — the integer promotions are performed on each
            // operand separately; the result has the type of the
            // promoted *left* operand, whose width bounds the count.
            let a = a.promoted();
            let s = b.promoted().math();
            let width = a.ty.width() as i128;
            if s < 0 {
                return Err((
                    UbKind::ShiftByNegative,
                    format!("shift amount {s} is negative"),
                ));
            }
            if s >= width {
                return Err((
                    UbKind::ShiftTooFar,
                    format!("shift amount {s} >= width {width}"),
                ));
            }
            let v = a.math();
            if op == Shl {
                if a.ty.is_signed() && v < 0 {
                    return Err((
                        UbKind::ShiftOfNegative,
                        format!("left shift of negative value {v}"),
                    ));
                }
                let r = v << s; // fits: |v| < 2^64 and s < 64, so r < 2^128
                if a.ty.is_signed() && !a.ty.contains(r) {
                    return Err((
                        UbKind::ShiftOverflow,
                        format!("{v} << {s} is not representable in {}", a.ty.name()),
                    ));
                }
                // Unsigned left shift wraps modulo 2^width (§6.5.7:4).
                Ok(CInt::new(r, a.ty))
            } else {
                // Right shift of a negative value is implementation-
                // defined, not undefined (§6.5.7:5); model arithmetic
                // shift like every mainstream implementation. Unsigned
                // right shift is logical by construction of `math`.
                Ok(CInt::new(v >> s, a.ty))
            }
        }
        Lt | Le | Gt | Ge | Eq | Ne => {
            // The usual arithmetic conversions apply (§6.5.8:3, §6.5.9:4)
            // — this is where `-1 < 1u` becomes 0: the -1 converts to
            // UINT_MAX first. The result type is `int`.
            let ct = IntTy::usual_arith(a.ty, b.ty);
            let x = a.convert(ct).0.math();
            let y = b.convert(ct).0.math();
            let t = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                Eq => x == y,
                _ => x != y,
            };
            Ok(CInt::int(t as i64))
        }
        Add | Sub | Mul | Div | Rem | BitAnd | BitXor | BitOr => {
            let ct = IntTy::usual_arith(a.ty, b.ty);
            let x = a.convert(ct).0.math();
            let y = b.convert(ct).0.math();
            let r = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                BitAnd => x & y,
                BitXor => x ^ y,
                BitOr => x | y,
                Div | Rem => {
                    if y == 0 {
                        let kind = if op == Div {
                            UbKind::DivisionByZero
                        } else {
                            UbKind::ModuloByZero
                        };
                        return Err((kind, format!("{x} {} 0", symbol(op))));
                    }
                    if ct.is_signed() && x == ct.min() && y == -1 {
                        return Err((
                            UbKind::DivisionOverflow,
                            format!("{x} {} -1 is not representable", symbol(op)),
                        ));
                    }
                    if op == Div {
                        x / y
                    } else {
                        x % y
                    }
                }
                Shl | Shr | Lt | Le | Gt | Ge | Eq | Ne => unreachable!("handled above"),
            };
            if ct.is_signed() && !ct.contains(r) {
                // §6.5:5 — an exceptional condition at the operands'
                // converted type. Unsigned arithmetic never gets here:
                // it wraps by definition (§6.2.5:9).
                return Err((
                    UbKind::SignedOverflow,
                    format!(
                        "{x} {} {y} is not representable in {}",
                        symbol(op),
                        ct.name()
                    ),
                ));
            }
            Ok(CInt::new(r, ct))
        }
    }
}

const INT_MIN: i64 = i32::MIN as i64;
const INT_MAX: i64 = i32::MAX as i64;

/// The `int <op> int` fast lane: i64 arithmetic with i32 range checks.
/// Every verdict and every detail string matches what the general path
/// would produce at type `int`.
#[inline(always)]
fn arith_int(op: BinOp, x: i64, y: i64) -> Result<CInt, (UbKind, String)> {
    use BinOp::*;
    let r = match op {
        Add => x + y,
        Sub => x - y,
        Mul => x * y,
        BitAnd => x & y,
        BitXor => x ^ y,
        BitOr => x | y,
        Div | Rem => {
            if y == 0 {
                let kind = if op == Div {
                    UbKind::DivisionByZero
                } else {
                    UbKind::ModuloByZero
                };
                return Err((kind, format!("{x} {} 0", symbol(op))));
            }
            if x == INT_MIN && y == -1 {
                return Err((
                    UbKind::DivisionOverflow,
                    format!("{x} {} -1 is not representable", symbol(op)),
                ));
            }
            if op == Div {
                x / y
            } else {
                x % y
            }
        }
        Shl | Shr => {
            if y < 0 {
                return Err((
                    UbKind::ShiftByNegative,
                    format!("shift amount {y} is negative"),
                ));
            }
            if y >= 32 {
                return Err((UbKind::ShiftTooFar, format!("shift amount {y} >= width 32")));
            }
            if op == Shl {
                if x < 0 {
                    return Err((
                        UbKind::ShiftOfNegative,
                        format!("left shift of negative value {x}"),
                    ));
                }
                let r = x << y;
                if r > INT_MAX {
                    return Err((
                        UbKind::ShiftOverflow,
                        format!("{x} << {y} is not representable in int"),
                    ));
                }
                r
            } else {
                x >> y
            }
        }
        Lt => (x < y) as i64,
        Le => (x <= y) as i64,
        Gt => (x > y) as i64,
        Ge => (x >= y) as i64,
        Eq => (x == y) as i64,
        Ne => (x != y) as i64,
    };
    if !(INT_MIN..=INT_MAX).contains(&r) {
        return Err((
            UbKind::SignedOverflow,
            format!("{x} {} {y} is not representable in int", symbol(op)),
        ));
    }
    Ok(CInt::int(r))
}

/// The spelling of a binary operator, for diagnostics.
pub fn symbol(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitXor => "^",
        BitOr => "|",
    }
}

/// `sizeof` of a declared type on the LP64 target, in bytes. `None` for
/// bare `void`, whose size does not exist (§6.5.3.4:1).
pub fn size_of_ty(ty: &Ty) -> Option<u64> {
    match ty {
        Ty::Int(it) => Some(it.size_bytes()),
        Ty::Void => None,
        Ty::Ptr(_) => Some(PTR_BYTES),
    }
}

/// The declared type of a constant expression, computed *without*
/// evaluating it — the translation-time mirror of the evaluator's
/// `sizeof` type walk. `sizeof(expr)` needs it because its operand is
/// unevaluated (§6.5.3.4:2), and `?:` needs it because the result type
/// is the common type of *both* branches (§6.5.15:5) even though only
/// one is evaluated.
///
/// Stays within the §6.6 subset: anything whose type would require
/// identifiers, calls, or object inspection is `NotConst`.
fn const_ty_of(unit: &TranslationUnit, e: ExprId) -> Result<IntTy, ConstStop> {
    let expr = unit.expr(e);
    let loc = expr.loc;
    match &expr.kind {
        ExprKind::IntLit(v) => Ok(v.ty),
        ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => Ok(SIZE_T),
        ExprKind::Cast(Ty::Int(to), _) => Ok(*to),
        ExprKind::Unary(UnaryOp::Not, _) => Ok(IntTy::Int),
        ExprKind::Unary(UnaryOp::Neg | UnaryOp::BitNot, a) => Ok(const_ty_of(unit, *a)?.promote()),
        ExprKind::Binary(op, a, b) => {
            use BinOp::*;
            match op {
                Lt | Le | Gt | Ge | Eq | Ne => Ok(IntTy::Int),
                // §6.5.7:3 — the result type is the promoted left
                // operand's.
                Shl | Shr => Ok(const_ty_of(unit, *a)?.promote()),
                _ => Ok(IntTy::usual_arith(
                    const_ty_of(unit, *a)?,
                    const_ty_of(unit, *b)?,
                )),
            }
        }
        ExprKind::LogicalAnd(_, _) | ExprKind::LogicalOr(_, _) => Ok(IntTy::Int),
        ExprKind::Conditional(_, t, f) => Ok(IntTy::usual_arith(
            const_ty_of(unit, *t)?,
            const_ty_of(unit, *f)?,
        )),
        _ => Err(ConstStop::NotConst(loc)),
    }
}

/// Evaluate `e` as an integer constant expression (§6.6), yielding a
/// typed constant.
///
/// # Examples
///
/// ```
/// use cundef_semantics::consteval::{const_eval, ConstStop};
/// use cundef_semantics::parser::parse;
/// use cundef_semantics::ast::{ExprKind, Stmt};
///
/// let unit = parse("int main(void) { int a[2 + 3]; return 0; }").unwrap();
/// let size = unit.stmts.iter().find_map(|s| match s {
///     Stmt::Decl(d) => d.array_size,
///     _ => None,
/// }).unwrap();
/// assert_eq!(const_eval(&unit, size).unwrap().math(), 5);
/// ```
pub fn const_eval(unit: &TranslationUnit, e: ExprId) -> Result<CInt, ConstStop> {
    let expr = unit.expr(e);
    let loc = expr.loc;
    let ub = |(kind, detail): (UbKind, String)| ConstStop::Ub { kind, detail, loc };
    match &expr.kind {
        ExprKind::IntLit(v) => Ok(*v),
        ExprKind::SizeofType(ty) => match size_of_ty(ty) {
            Some(n) => Ok(CInt::new(n as i128, SIZE_T)),
            // `sizeof (void)` has no value; the analyzer reports it.
            None => Err(ConstStop::NotConst(loc)),
        },
        // `sizeof expr` does not evaluate its operand (§6.5.3.4:2) —
        // only its type matters, so even `sizeof(1 / 0)` is a defined
        // `size_t` constant.
        ExprKind::SizeofExpr(inner) => {
            let t = const_ty_of(unit, *inner)?;
            Ok(CInt::new(t.size_bytes() as i128, SIZE_T))
        }
        // §6.6:6 admits casts to integer types in integer constant
        // expressions. The conversion itself is §6.3.1.3 — defined or
        // implementation-defined, never UB — so it folds silently; the
        // evaluator records the same wrap as a note at run time.
        ExprKind::Cast(Ty::Int(to), inner) => Ok(const_eval(unit, *inner)?.convert(*to).0),
        ExprKind::Cast(_, _) => Err(ConstStop::NotConst(loc)),
        ExprKind::Unary(op, inner) => {
            let v = const_eval(unit, *inner)?;
            match op {
                UnaryOp::Neg => neg(v).map_err(ub),
                UnaryOp::Not => Ok(CInt::int(v.is_zero() as i64)),
                UnaryOp::BitNot => bit_not(v).map_err(ub),
            }
        }
        ExprKind::Binary(op, l, r) => {
            let a = const_eval(unit, *l)?;
            let b = const_eval(unit, *r)?;
            arith(*op, a, b).map_err(ub)
        }
        ExprKind::LogicalAnd(l, r) => {
            // The unevaluated operand of a short circuit is exempt from
            // §6.6:4, mirroring run-time semantics (§6.5.13:4).
            if const_eval(unit, *l)?.is_zero() {
                return Ok(CInt::int(0));
            }
            Ok(CInt::int(!const_eval(unit, *r)?.is_zero() as i64))
        }
        ExprKind::LogicalOr(l, r) => {
            if !const_eval(unit, *l)?.is_zero() {
                return Ok(CInt::int(1));
            }
            Ok(CInt::int(!const_eval(unit, *r)?.is_zero() as i64))
        }
        ExprKind::Conditional(c, t, f) => {
            let cv = const_eval(unit, *c)?;
            let chosen = const_eval(unit, if !cv.is_zero() { *t } else { *f })?;
            // §6.5.15:5 — the result has the *common* type of both
            // branches (usual arithmetic conversions), even though only
            // one branch is evaluated: `0 ? 0 : (short)0` is an `int`,
            // and `1 ? -1 : 0u` is UINT_MAX. The conversion itself is
            // §6.3.1.3 — never undefined.
            let common = IntTy::usual_arith(const_ty_of(unit, *t)?, const_ty_of(unit, *f)?);
            Ok(chosen.convert(common).0)
        }
        // Everything else — identifiers, assignments, calls, the comma
        // operator (explicitly banned by §6.6:3) — is not a constant
        // expression.
        _ => Err(ConstStop::NotConst(loc)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Stmt;
    use crate::parser::parse;

    /// Constant-evaluate the size expression of the first array
    /// declaration in `main`.
    fn eval_size(size_src: &str) -> Result<CInt, ConstStop> {
        let unit = parse(&format!(
            "int main(void) {{ int a[{size_src}]; return 0; }}"
        ))
        .unwrap();
        let size = unit
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Decl(d) => d.array_size,
                _ => None,
            })
            .expect("array decl");
        const_eval(&unit, size)
    }

    fn value(size_src: &str) -> i128 {
        eval_size(size_src).unwrap().math()
    }

    fn ub_kind(size_src: &str) -> UbKind {
        match eval_size(size_src) {
            Err(ConstStop::Ub { kind, .. }) => kind,
            other => panic!("expected UB for {size_src:?}, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_logic_fold() {
        assert_eq!(value("2 + 3 * 4"), 14);
        assert_eq!(value("1 ? 7 : 1 / 0"), 7);
        assert_eq!(value("0 && 1 / 0"), 0);
        assert_eq!(value("1 || 1 / 0"), 1);
        assert_eq!(value("~0 + 2"), 1);
    }

    #[test]
    fn undefined_constant_operations_carry_their_kind() {
        assert_eq!(ub_kind("1 / 0"), UbKind::DivisionByZero);
        assert_eq!(ub_kind("1 << 40"), UbKind::ShiftTooFar);
        assert_eq!(ub_kind("2147483647 + 1"), UbKind::SignedOverflow);
        assert_eq!(ub_kind("(-2147483647 - 1) - 1"), UbKind::SignedOverflow);
        assert_eq!(ub_kind("(-2147483647 - 1) % -1"), UbKind::DivisionOverflow);
    }

    #[test]
    fn widths_change_verdicts() {
        // Defined at width 64, undefined at width 32 (§6.5.7:3).
        assert_eq!(value("(1L << 40) > 0"), 1);
        assert_eq!(ub_kind("1 << 40"), UbKind::ShiftTooFar);
        // `1 << 31` overflows int; `1u << 31` is defined.
        assert_eq!(ub_kind("1 << 31"), UbKind::ShiftOverflow);
        assert_eq!(value("(1u << 31) != 0"), 1);
        // `int` overflow that is fine at `long`.
        assert_eq!(ub_kind("65536 * 65536"), UbKind::SignedOverflow);
        assert_eq!(value("65536L * 65536 == 4294967296"), 1);
        // Unsigned arithmetic wraps — defined (§6.2.5:9).
        assert_eq!(value("(4294967295u + 1u) == 0"), 1);
        assert_eq!(value("(0u - 1u) == 4294967295u"), 1);
        // Mixed signedness goes through the usual arithmetic
        // conversions: -1 becomes UINT_MAX before the compare.
        assert_eq!(value("(-1 < 1u) == 0"), 1);
    }

    #[test]
    fn sizeof_type_is_a_size_t_constant() {
        assert_eq!(value("sizeof(int)"), 4);
        assert_eq!(value("sizeof(long)"), 8);
        assert_eq!(value("sizeof(char)"), 1);
        assert_eq!(value("sizeof(_Bool)"), 1);
        assert_eq!(value("sizeof(int *)"), 8);
        assert_eq!(eval_size("sizeof(unsigned long)").unwrap().ty, SIZE_T);
    }

    #[test]
    fn non_constant_forms_are_not_const() {
        let unit = parse("int main(void) { int n = 3; int a[n]; return 0; }").unwrap();
        let size = unit
            .stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Decl(d) => d.array_size,
                _ => None,
            })
            .unwrap();
        assert!(matches!(
            const_eval(&unit, size),
            Err(ConstStop::NotConst(_))
        ));
        // The comma operator is banned from constant expressions (§6.6:3).
        assert!(matches!(eval_size("(1, 2)"), Err(ConstStop::NotConst(_))));
    }
}
