//! Executable semantics of a C subset with dynamic undefined-behavior
//! detection.
//!
//! This crate is the "kcc layer" of the workspace: where
//! [`cundef_ub`] names and classifies undefined behaviors, this crate
//! *detects* them by actually running programs. It contains:
//!
//! - [`ctype`] — the typed scalar core: the C integer type lattice,
//!   integer promotions, and usual arithmetic conversions (§6.3.1)
//!   against an explicit LP64 target, plus the [`ctype::CInt`] typed
//!   value every layer computes with;
//! - [`intern`] — identifier interning ([`Symbol`]s instead of strings);
//! - [`lexer`] — tokenizer for the supported C subset, typing integer
//!   and character constants per §6.4.4;
//! - [`ast`] — the abstract syntax, arena-allocated (`ExprId`/`StmtId`
//!   indices instead of boxed nodes);
//! - [`parser`] — recursive-descent parser producing the AST;
//! - [`resolve`] — the resolution pass that binds every variable
//!   reference to a frame-relative slot, so execution never scans scope
//!   name lists, and exports per-function label tables for the
//!   translation-phase analyzer;
//! - [`consteval`] — the integer constant-expression engine (§6.6),
//!   shared by the evaluator (`case` dispatch) and the `cundef-analysis`
//!   crate (array sizes, case labels) so the two phases agree on every
//!   undefined constant operation;
//! - [`eval`] — an evaluator that tracks sequencing footprints, object
//!   lifetimes, initialization state, and value ranges, and stops with a
//!   [`cundef_ub::UbError`] the moment an execution would "get stuck" on
//!   undefined behavior, in the style of the paper's negative semantics.
//!
//! The supported subset is deliberately small but real: the full
//! integer type lattice of an LP64 target (`_Bool`, `char`,
//! signed/unsigned `short`/`int`/`long`/`long long` — see [`ctype`]),
//! typed integer and character constants, `sizeof`, casts (integer
//! conversions and pointer reinterpretation), fixed-size and
//! variable-length arrays, pointers (`&`, `*`, arithmetic, indexing)
//! over **byte-addressable** memory with per-byte initialization
//! tracking, function definitions and calls, `malloc`/`free`
//! (`malloc(n)` allocates `n` bytes, agreeing with `sizeof`), control
//! flow (`if`/`else`, `while`, `for`, `break`, `continue`, `return`),
//! and the full C expression operator set — including compound
//! assignment and increment/decrement, whose sequencing hazards are the
//! paper's flagship `Error: 00016`.
//!
//! # Examples
//!
//! ```
//! use cundef_semantics::check_translation_unit;
//! use cundef_ub::UbKind;
//!
//! let outcome = check_translation_unit(
//!     "int main(void) { int x = 0; return x + (x = 1); }",
//! ).unwrap();
//! assert_eq!(outcome.ub().unwrap().kind(), UbKind::UnsequencedSideEffect);
//! ```

#![deny(missing_docs)]

pub mod ast;
pub(crate) mod bytecode;
pub mod compile;
pub mod consteval;
pub mod ctype;
pub mod eval;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod profile;
pub mod resolve;

pub use compile::{compile_unit, CompiledUnit};
pub use eval::{Engine, Interp, Limits, Outcome, Pointer, Value};
pub use intern::{Interner, Symbol};
pub use parser::{FrontendTiming, ParseError};
pub use profile::ExecProfile;

/// Parse and execute a translation unit, starting from `main`.
///
/// This is the one-call *execution-phase* entry point: it wires the
/// lexer, parser, and evaluator together with default [`Limits`]. A
/// `ParseError` means the file is outside the supported subset; an
/// [`Outcome`] is a verdict about the program's execution. (The `cundef`
/// CLI parses once and runs the `cundef-analysis` translation phase
/// first; use this directly when only dynamic detection is wanted.)
///
/// # Examples
///
/// ```
/// use cundef_semantics::check_translation_unit;
///
/// // A defined program runs to completion.
/// let outcome = check_translation_unit("int main(void) { return 42; }").unwrap();
/// assert_eq!(outcome.exit_code(), Some(42));
///
/// // An undefined one is caught in the act.
/// let outcome = check_translation_unit("int main(void) { return 1 / 0; }").unwrap();
/// assert!(outcome.ub().is_some());
/// ```
pub fn check_translation_unit(source: &str) -> Result<Outcome, ParseError> {
    let unit = parser::parse(source)?;
    Ok(Interp::new(&unit, Limits::default()).run_main())
}
