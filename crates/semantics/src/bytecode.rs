//! Flat bytecode for the compiled execution engine.
//!
//! [`crate::compile`] lowers the slot-resolved AST into one contiguous
//! [`Op`] stream per translation unit ([`CodeUnit`]), with u32 operands,
//! jump-patched control flow, and per-function code ranges. The virtual
//! machine in [`crate::eval`] dispatches over this stream; the
//! tree-walker remains the reference semantics, and every op here is
//! defined *in terms of* the tree-walker's helpers so diagnostics stay
//! byte-identical.
//!
//! Two design rules keep parity cheap to argue:
//!
//! - **Honest fallbacks.** Any construct the compiler cannot prove it
//!   lowers faithfully becomes a fallback op ([`Op::EvalFull`],
//!   [`Op::ExecStmt`], [`Op::DeclFull`]) that calls straight into the
//!   tree-walker for that full expression / statement / declaration.
//!   The fast path only ever covers code where the lowering is exact.
//! - **Footprint elision.** §6.5:2 sequencing checks are *provably
//!   vacuous* for full expressions with at most one update (the root
//!   store) — see `compile::elidable` — so the compiler simply does not
//!   emit footprint/sequence-point traffic for them; anything else
//!   falls back to the tree-walker, which keeps its byte-range
//!   precision.
//!
//! Ops are slim (operands are u32 indices); anything larger — fused
//! superinstruction descriptors, prebuilt error reports, tree-fallback
//! flow info — lives in side tables indexed by those operands, with a
//! parallel per-op [`SourceLoc`] table for diagnostics.

use crate::ast::{BinOp, ExprId, StmtId, UnaryOp};
use crate::ctype::{CInt, IntTy};
use crate::eval::PointeeTy;
use crate::intern::Symbol;
use cundef_ub::{SourceLoc, UbError};

// `goto` is compiled to a statically patched jump; a function whose
// gotos interact with tree-executed regions (`switch`) is marked
// `tree_only` instead, so the virtual machine never needs a runtime
// label search.

/// Program counter: an index into [`CodeUnit::ops`].
pub(crate) type Pc = u32;

/// One bytecode instruction. The per-op source position lives in the
/// parallel [`CodeUnit::locs`] table.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    // ----- values -----
    /// Push constant `pool[i]` as an integer value.
    Const(u32),
    /// Read slot `s` as a designator: array decay, unbound check, then a
    /// typed load — the exact `ExprKind::Slot` semantics.
    LoadSlot(u32),
    /// Read slot `s`, statically known to be a scalar object of the
    /// given non-`_Bool` integer type: single-word fast path when the
    /// object is bound, alive, and fully initialized; the generic
    /// [`Op::LoadSlot`] path otherwise.
    LoadSlotFast(u32, IntTy),
    /// Discard the top of the value stack (comma left operand).
    Pop,
    /// End of an expression statement: discard the top of the stack and
    /// truncate the footprint arena to the frame's base (§6.8:4).
    PopSeq,

    // ----- arithmetic -----
    /// Pop `v`; apply a unary operator per the tree-walker.
    Unary(UnaryOp),
    /// Pop `r`, pop `l`; consume both and apply a binary operator.
    Binary(BinOp),
    /// Pop `l`; apply a binary operator with constant `pool[i]` as the
    /// right operand.
    BinaryC(BinOp, u32),
    /// Fused slot ⊗ slot binary op, descriptor in `fused[i]`.
    BinSS(u32),
    /// Fused slot ⊗ constant binary op, descriptor in `fused[i]`.
    BinSC(u32),
    /// Pop `l`; fused stack ⊗ slot binary op — the right operand is the
    /// slot described by `fused[i]`'s *left*-operand fields (the `b_*`
    /// fields are unused). Evaluation order matches the tree: the left
    /// operand's ops already ran.
    BinVS(u32),
    /// Fused second-level tree `slotA ⊕ (inner)`, descriptor in
    /// `fused2[i]`: load `a`, compute the inner fused pair, apply both
    /// operators — five tree nodes in one dispatch, with the loads and
    /// operator applications in exactly the tree-walker's order.
    Bin2SF(u32),
    /// [`Op::Bin2SF`] with the left operand taken from the stack (its
    /// ops already ran); `fused2[i]`'s `a_*` fields are unused.
    Bin2VF(u32),
    /// `(b ⊕ c) ⊕ k` — an inner [`FusedBin`] pair on the *left*, a pool
    /// constant on the right: the inner loads and both operator
    /// applications in one dispatch, in tree order. `fused2[i].a_slot`
    /// holds the pool index of the right constant; the other `a_*`
    /// fields are unused.
    Bin2FC(u32),

    // ----- control flow -----
    /// Unconditional jump.
    Jump(Pc),
    /// Pop; if not truthy, jump (conditional operator — no sequence
    /// boundary).
    BranchFalse(Pc),
    /// Truncate the footprint arena to the frame base (the controlling
    /// full expression ends, §6.8:4), pop; if not truthy, jump.
    BranchFalseSeq(Pc),
    /// `&&` left operand: pop; if not truthy, push `0` and jump past the
    /// right operand (§6.5.13:4).
    AndFalse(Pc),
    /// `||` left operand: pop; if truthy, push `1` and jump (§6.5.14:4).
    OrTrue(Pc),
    /// Pop; push `1` if truthy else `0` (`&&`/`||` right operand).
    ToBool01,
    /// Conditional-operator merge: convert the branch value to the
    /// common type of both arms (§6.5.15:5). The operand is the
    /// `Conditional` node itself.
    CondCommon(ExprId),
    /// Fused promoted-compare-and-branch, slot ⊗ slot (loop condition):
    /// sequence boundary, compare via `fused[i]`, jump if false.
    BrCmpSS(u32, Pc),
    /// Fused promoted-compare-and-branch, slot ⊗ constant.
    BrCmpSC(u32, Pc),

    // ----- memory -----
    /// Pop a value that must be a usable pointer (`eval_pointer`): a
    /// pointer passes, null/integers report [`cundef_ub::UbKind::NullDereference`].
    AsPtr,
    /// Pop a place pointer; typed load through it.
    ReadThru,
    /// Pop index, pop base pointer; `pointer_add` and push the element
    /// place (§6.5.2.1:2).
    IndexPlace,
    /// [`Op::IndexPlace`] immediately followed by a typed load.
    IndexRead,
    /// Push the place designated by slot `s` (unbound check; no byte is
    /// accessed).
    SlotPlace(u32),
    /// Check that slot `s` is bound (the place-before-rhs evaluation
    /// order of assignment) without pushing anything.
    BindCheck(u32),
    /// Pop the stored value, pop the place pointer; typed store, push
    /// the converted result (§6.5.16:3).
    StoreSimple,
    /// Compound assignment through an arbitrary place: pop value, pop
    /// place; read-modify-write with the operator.
    StoreCompound(BinOp),
    /// Pop the stored value; fused (compound) assignment to a scalar
    /// slot, descriptor in `stores[i]`; push the converted result.
    AssignSlot(u32),
    /// Statement form of [`Op::AssignSlot`]: no push, and the statement's
    /// sequence boundary (footprint truncation) is folded in.
    AssignSlotPop(u32),
    /// Pop a place pointer; `++`/`--` through it; push the old value
    /// (postfix, `delta.1`) or the new one.
    IncDec(i64, bool),
    /// Whole `i++;` / `i--;` statement on an int slot, descriptor in
    /// `incdecs[i]`, sequence boundary folded in.
    IncDecSlotStmt(u32),

    // ----- casts and sizeof -----
    /// Pop; integer conversion (§6.3.1.3) with its note machinery.
    CastInt(IntTy),
    /// Pop; pointer conversion (§6.3.2.3:7) to the given pointee.
    CastPtr(PointeeTy),
    /// Pop; `(void)e` yields a value that must not be used (§6.3.2.2:2).
    CastVoid,
    /// `sizeof e` where the operand's type depends on runtime state
    /// (arrays, VLAs): compute it via the no-eval type walk.
    SizeofExpr(ExprId),

    // ----- calls -----
    /// Pop a value, consume it (`use_value` at the argument's position),
    /// push it onto the shared argument stack.
    ArgPush,
    /// Call `functions[f]` with the top `argc` values of the argument
    /// stack; push the returned value.
    Call(u32, u32),
    /// `malloc(n)`: pop the size from the argument stack, allocate a
    /// fresh heap object (recycling a retired slab slot when one is
    /// free), push the pointer. Shares the tree-walker's allocator
    /// helper, so sizes, serial naming, and diagnostics are identical.
    Malloc,
    /// `free(p)`: pop the pointer from the argument stack, end the heap
    /// object's lifetime (retiring its slot for recycling), push the
    /// void poison. Shares the tree-walker's helper verbatim.
    Free,
    /// `return f(args)` where `f` is the enclosing function itself:
    /// rebind the parameter objects in place from the top `argc` operand
    /// stack values and jump back to the function's entry, reusing the
    /// physical frame. Compiled only when the reuse is unobservable —
    /// every parameter is a non-`_Bool` scalar whose address the body
    /// never takes, the return type is scalar, and every argument
    /// expression compiles to ops that can never produce a missing
    /// value (so skipping the per-argument `ArgPush` consumption loses
    /// no diagnostic) — so no pointer to a parameter or to a prior
    /// incarnation's locals can exist. When a runtime argument is not a
    /// plain integer the op degrades to the exact call-and-return it
    /// replaced.
    TailSelf(u32),
    /// Return: pop the value, end the full expression, consume the value
    /// at the `return`'s position, and leave the frame.
    Ret,
    /// `return;` — leave the frame with the missing-value poison the
    /// tree-walker builds (§6.9.1:12 / §6.3.2.2:1).
    RetNone,

    // ----- scopes and declarations -----
    /// Enter a block scope: remember the automatic-object mark.
    EnterScope,
    /// Leave a block scope: end the lifetimes created inside (§6.2.4:6).
    ExitScope,
    /// Leave `n` scopes (break/continue/goto unwinding).
    ScopePopN(u32),
    /// Enter `n` scopes (goto into nested scopes).
    ScopePushN(u32),
    /// Allocate and bind the object of a simple scalar declaration (the
    /// operand statement is its `Stmt::Decl`); the initializer ops
    /// follow.
    DeclAlloc(StmtId),
    /// Pop the initializer value and finish the declaration started by
    /// [`Op::DeclAlloc`]: typed store at offset 0, const flag, sequence
    /// boundary.
    DeclInit(StmtId),
    /// A simple scalar declaration with no initializer: allocate, bind,
    /// set the const flag.
    DeclSimple(StmtId),
    /// Fallback: run the whole declaration through the tree-walker
    /// (arrays, VLAs, redeclarations, initializers the compiler cannot
    /// lower).
    DeclFull(StmtId),

    /// Fused byte sweep, descriptor in `sweeps[i]`: a whole
    /// `for (int k = …; k < C; k++) d[k] = …;` loop over character
    /// pointers as one bulk move. The op validates once that *no*
    /// iteration of the generic loop could report a diagnostic (or
    /// observe different state), performs the copy/fill, charges
    /// exactly the steps the generic loop would have settled, and jumps
    /// past it; any precheck failure falls through to the generic loop
    /// ops emitted right after, which replay every per-byte check.
    ByteSweep(u32),

    // ----- fallbacks and failures -----
    /// Fallback: evaluate a full expression through the tree-walker and
    /// push its value.
    EvalFull(ExprId),
    /// Statement fallback: evaluate a full expression through the
    /// tree-walker and discard the value.
    EvalFullPop(ExprId),
    /// Statement fallback (`switch`): execute through the tree-walker;
    /// flow info in `execs[i]`.
    ExecStmt(u32),
    /// Unconditional engine-limit stop; message in `fails[i]`.
    FailUnsupported(u32),
    /// Unconditional undefined-behavior stop; prebuilt report in
    /// `ubs[i]` (e.g. a call-arity mismatch, which the tree-walker
    /// reports only after evaluating the arguments).
    FailUb(u32),
    /// Placeholder (unresolved patch target); never executed.
    Nop,
}

impl Op {
    /// The opcode's mnemonic, keying the `--profile` dispatch
    /// histogram (and the derived superinstruction / footprint-elision
    /// rates in [`crate::profile::ExecProfile`]).
    pub(crate) fn mnemonic(&self) -> &'static str {
        match self {
            Op::Const(_) => "Const",
            Op::LoadSlot(_) => "LoadSlot",
            Op::LoadSlotFast(..) => "LoadSlotFast",
            Op::Pop => "Pop",
            Op::PopSeq => "PopSeq",
            Op::Unary(_) => "Unary",
            Op::Binary(_) => "Binary",
            Op::BinaryC(..) => "BinaryC",
            Op::BinSS(_) => "BinSS",
            Op::BinSC(_) => "BinSC",
            Op::BinVS(_) => "BinVS",
            Op::Bin2SF(_) => "Bin2SF",
            Op::Bin2VF(_) => "Bin2VF",
            Op::Bin2FC(_) => "Bin2FC",
            Op::Jump(_) => "Jump",
            Op::BranchFalse(_) => "BranchFalse",
            Op::BranchFalseSeq(_) => "BranchFalseSeq",
            Op::AndFalse(_) => "AndFalse",
            Op::OrTrue(_) => "OrTrue",
            Op::ToBool01 => "ToBool01",
            Op::CondCommon(_) => "CondCommon",
            Op::BrCmpSS(..) => "BrCmpSS",
            Op::BrCmpSC(..) => "BrCmpSC",
            Op::AsPtr => "AsPtr",
            Op::ReadThru => "ReadThru",
            Op::IndexPlace => "IndexPlace",
            Op::IndexRead => "IndexRead",
            Op::SlotPlace(_) => "SlotPlace",
            Op::BindCheck(_) => "BindCheck",
            Op::StoreSimple => "StoreSimple",
            Op::StoreCompound(_) => "StoreCompound",
            Op::AssignSlot(_) => "AssignSlot",
            Op::AssignSlotPop(_) => "AssignSlotPop",
            Op::IncDec(..) => "IncDec",
            Op::IncDecSlotStmt(_) => "IncDecSlotStmt",
            Op::CastInt(_) => "CastInt",
            Op::CastPtr(_) => "CastPtr",
            Op::CastVoid => "CastVoid",
            Op::SizeofExpr(_) => "SizeofExpr",
            Op::ArgPush => "ArgPush",
            Op::Call(..) => "Call",
            Op::Malloc => "Malloc",
            Op::Free => "Free",
            Op::TailSelf(..) => "TailSelf",
            Op::Ret => "Ret",
            Op::RetNone => "RetNone",
            Op::EnterScope => "EnterScope",
            Op::ExitScope => "ExitScope",
            Op::ScopePopN(_) => "ScopePopN",
            Op::ScopePushN(_) => "ScopePushN",
            Op::DeclAlloc(_) => "DeclAlloc",
            Op::DeclInit(_) => "DeclInit",
            Op::DeclSimple(_) => "DeclSimple",
            Op::DeclFull(_) => "DeclFull",
            Op::ByteSweep(_) => "ByteSweep",
            Op::EvalFull(_) => "EvalFull",
            Op::EvalFullPop(_) => "EvalFullPop",
            Op::ExecStmt(_) => "ExecStmt",
            Op::FailUnsupported(_) => "FailUnsupported",
            Op::FailUb(_) => "FailUb",
            Op::Nop => "Nop",
        }
    }
}

/// Descriptor of a fused binary superinstruction: both operand loads
/// plus the operator in one dispatch. `b_slot` doubles as a constant
/// pool index for the `*SC` forms.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedBin {
    /// Left operand slot.
    pub a_slot: u32,
    /// Its statically known scalar type.
    pub a_ty: IntTy,
    /// Source position of the left operand (slot-load errors point here).
    pub a_loc: SourceLoc,
    /// Right operand slot (`BinSS`) or constant pool index (`BinSC`).
    pub b_slot: u32,
    /// Right operand's scalar type (slot forms).
    pub b_ty: IntTy,
    /// Source position of the right operand.
    pub b_loc: SourceLoc,
    /// The operator.
    pub op: BinOp,
}

/// Descriptor of a second-level fused binary tree
/// `a ⊕ (b ⊕ c)` ([`Op::Bin2SF`] / [`Op::Bin2VF`]): the outer
/// operator plus an inner [`FusedBin`] pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fused2 {
    /// The outer operator.
    pub op: BinOp,
    /// Outer left operand slot ([`Op::Bin2SF`] only).
    pub a_slot: u32,
    /// Its statically known scalar type.
    pub a_ty: IntTy,
    /// Source position of the outer left operand.
    pub a_loc: SourceLoc,
    /// Index of the inner pair in [`CodeUnit::fused`].
    pub inner: u32,
    /// Source position of the inner operator node (its arithmetic
    /// diagnostics report here, as the tree-walker's would).
    pub inner_loc: SourceLoc,
    /// Whether the inner pair's right operand is a pool constant
    /// (`BinSC` form) rather than a slot.
    pub inner_const: bool,
}

/// Descriptor of a fused slot store ([`Op::AssignSlot`] /
/// [`Op::AssignSlotPop`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedStore {
    /// Target slot.
    pub slot: u32,
    /// The slot's statically known scalar type, when the single-word
    /// fast path applies (the store converts to it, §6.5.16.1:2);
    /// `None` always takes the generic typed-store path (pointer slots).
    pub fast: Option<IntTy>,
    /// `None` for simple assignment, the operator for compound.
    pub op: Option<BinOp>,
}

/// Descriptor of a fused `i++;` / `i--;` statement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedIncDec {
    /// Target slot.
    pub slot: u32,
    /// Statically known scalar type for the read-modify-write fast path;
    /// `None` (pointer slots, `_Bool`) takes the generic path.
    pub fast: Option<IntTy>,
    /// +1 or -1.
    pub delta: i64,
    /// Source position of the place expression (unbound-slot reports
    /// point here, like the tree-walker's `eval_place`).
    pub place_loc: SourceLoc,
}

/// What a fused byte sweep stores each iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SweepSrc {
    /// Copy form `d[k] = s[k]`: the source pointer's frame slot.
    Slot(u32),
    /// Fill form `d[k] = c`: the constant stored each iteration, before
    /// the store's §6.3.1.3 conversion — which happens (and must be
    /// exact, or the op falls back for the conversion note) at runtime.
    Fill(CInt),
}

/// Descriptor of a fused byte sweep ([`Op::ByteSweep`]): the loop
/// `for (int k = …; k < bound; k++) d[k] = …;` lowered to one bulk
/// move. The counter's start value is read from the `k` object at
/// runtime, so the op also fuses loops entered with `k` already
/// partway along (a `continue`-free shape guarantees it).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedSweep {
    /// Frame slot of the loop counter `k` (a plain `int`).
    pub k_slot: u32,
    /// Frame slot of the destination pointer `d`.
    pub d_slot: u32,
    /// What each iteration stores: a source byte or a constant.
    pub src: SweepSrc,
    /// Exclusive upper bound: the loop runs while `k < bound`.
    pub bound: i64,
    /// Ops the generic loop dispatches per iteration (the condition
    /// through the back-edge jump) — the bulk step charge is
    /// `iterations × per_iter_ops + tail_ops`, making the op invisible
    /// to step accounting.
    pub per_iter_ops: u64,
    /// Ops of the final, failing condition test.
    pub tail_ops: u64,
    /// Pc of the loop's normal exit; a completed sweep jumps here.
    pub exit: Pc,
}

/// Flow bookkeeping for a tree-fallback statement op: where the op sits
/// in the compiled scope structure and where `continue` from inside it
/// must land (`break` never escapes a `switch`, the only statement that
/// gets an [`Op::ExecStmt`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecInfo {
    /// The statement executed through the tree-walker.
    pub stmt: StmtId,
    /// Compile-time scope depth at this op (scopes entered since the
    /// frame's base) — how many scopes a stray `continue` must leave.
    pub depth: u32,
    /// Innermost enclosing compiled loop: scopes to pop on `continue`,
    /// and the pc to resume at. `None` when the statement is not inside
    /// a compiled loop (the tree-walker lets such a `continue` fall out
    /// of the function body; the VM jumps to the frame's end).
    pub cont: Option<(u32, Pc)>,
}

/// Per-function compiled code.
#[derive(Debug, Clone)]
pub(crate) struct FnCode {
    /// `[start, end)` range of this function's ops.
    pub start: Pc,
    /// One past the last op (falling off it is reaching the `}`).
    pub end: Pc,
    /// Slot spelling table (`SlotId` index → identifier), for slot-op
    /// diagnostics.
    pub slot_syms: Vec<Symbol>,
    /// The function body runs through the tree-walker even under the
    /// bytecode engine: its gotos interact with tree-executed regions
    /// (a label or `goto` under a `switch`), which a static jump cannot
    /// reproduce faithfully.
    pub tree_only: bool,
}

/// A compiled translation unit: the flat op stream plus its side tables.
#[derive(Debug, Clone, Default)]
pub(crate) struct CodeUnit {
    /// The instruction stream, all functions back to back.
    pub ops: Vec<Op>,
    /// Parallel per-op source positions.
    pub locs: Vec<SourceLoc>,
    /// Integer constant pool.
    pub pool: Vec<CInt>,
    /// Fused binary-op descriptors.
    pub fused: Vec<FusedBin>,
    /// Second-level fused binary-tree descriptors.
    pub fused2: Vec<Fused2>,
    /// Fused store descriptors.
    pub stores: Vec<FusedStore>,
    /// Fused `++`/`--` statement descriptors.
    pub incdecs: Vec<FusedIncDec>,
    /// Fused byte-sweep descriptors.
    pub sweeps: Vec<FusedSweep>,
    /// Tree-fallback statement flow info.
    pub execs: Vec<ExecInfo>,
    /// Engine-limit messages for [`Op::FailUnsupported`].
    pub fails: Vec<String>,
    /// Prebuilt undefined-behavior reports for [`Op::FailUb`].
    pub ubs: Vec<UbError>,
    /// Per-function code ranges, indexed like
    /// [`crate::ast::TranslationUnit::functions`].
    pub funcs: Vec<FnCode>,
}
