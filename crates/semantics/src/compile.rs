//! Lowering from the slot-resolved AST to the flat bytecode of
//! `crate::bytecode`.
//!
//! The compiler's contract is *diagnostic-exact lowering*: for every op
//! sequence it emits, executing those ops performs the same checks, in
//! the same order, at the same source positions, producing the same
//! [`cundef_ub::UbError`]s and notes as the tree-walker would for the
//! original node — or the construct is not lowered at all and becomes a
//! tree-fallback op. The load-bearing analyses are:
//!
//! - **Footprint elision** (`elidable`): a full expression whose only
//!   update (assignment, `++`/`--`) is at its root cannot trip a §6.5:2
//!   sequencing check — every other footprint entry is a read, and the
//!   checks only fire on read/write or write/write pairs involving a
//!   write below the root. For such expressions the compiler emits no
//!   footprint traffic at all. Anything else — two updates, an update
//!   under a call argument — falls back to `Op::EvalFull`, where the
//!   tree-walker's byte-range footprint does the § 6.5:2 bookkeeping
//!   exactly as before.
//! - **Slot kinds** (`SlotKind`): a frame slot is bound 1:1 to one
//!   declaration, so its object's element type is static. Scalar
//!   non-`_Bool` slots get single-word fused loads/stores whose guards
//!   (bound, alive, fully-initialized, in-range) fail over to the
//!   generic path *before* any observable action.
//! - **Static goto**: labels and gotos compile to jump-patched scope
//!   transitions. A function whose gotos could interact with a
//!   tree-executed region (it contains both `goto` and `switch`) is
//!   marked `FnCode::tree_only` and executes entirely through the
//!   tree-walker under either engine.

use crate::ast::{
    BinOp, Decl, ExprId, ExprKind, Function, Stmt, StmtId, TranslationUnit, Ty, UnaryOp,
};
use crate::bytecode::{
    CodeUnit, ExecInfo, FnCode, Fused2, FusedBin, FusedIncDec, FusedStore, FusedSweep, Op, Pc,
    SweepSrc,
};
use crate::consteval;
use crate::ctype::{CInt, IntTy, SIZE_T};
use crate::eval::{pointee_of_ty, stmt_loc};
use crate::intern::{kw, Symbol};
use cundef_ub::{SourceLoc, UbError, UbKind};
use std::rc::Rc;

/// A compiled translation unit, produced by [`compile_unit`] and
/// executed by [`crate::eval::Interp::run_main_compiled`].
///
/// Owning one lets callers separate compile time from execution time
/// (the `exec/*` benchmark group); `Interp::run_main` under the
/// bytecode engine compiles on first use instead.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    pub(crate) code: Rc<CodeUnit>,
}

/// Lower `unit` to bytecode without executing anything.
pub fn compile_unit(unit: &TranslationUnit) -> CompiledUnit {
    CompiledUnit {
        code: Rc::new(compile(unit)),
    }
}

/// Lower every function of `unit`, back to back, into one [`CodeUnit`].
pub(crate) fn compile(unit: &TranslationUnit) -> CodeUnit {
    let mut code = CodeUnit::default();
    for (idx, func) in unit.functions.iter().enumerate() {
        let fc = FnCompiler::lower(unit, func, idx as u32, &mut code);
        code.funcs.push(fc);
    }
    code
}

/// What the compiler statically knows about the object a slot binds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    /// A scalar object of this integer type.
    Scalar(IntTy),
    /// A pointer object.
    PtrObj,
    /// An array object (decays on load; not a modifiable lvalue).
    Array,
    /// Statically unknowable (e.g. a `void` declaration, which can never
    /// execute without stopping) — always handled by fallback.
    Unknown,
}

/// Shape of the value just compiled, for superinstruction fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// One `LoadSlotFast` op: a scalar slot of known type.
    SlotFast(u32, IntTy, SourceLoc),
    /// One `Const` op: pool index of a known constant.
    Const(u32),
    /// One `BinSS`/`BinSC` op: fused-table index plus whether the right
    /// operand is a constant — a candidate inner pair for second-level
    /// fusion.
    Fused(u32, bool),
    /// Anything else.
    Other,
}

/// The compiler could not prove an exact lowering; the caller falls
/// back to a tree op for the whole full expression.
struct Bail;

type CResult = Result<Shape, Bail>;

/// One pending `break`/`continue`/loop context.
struct LoopCtx {
    /// `path` length just outside the loop statement (a `break` unwinds
    /// to here).
    break_path_len: usize,
    /// `path` length a `continue` keeps (inside the `for`'s own scope).
    cont_path_len: usize,
    /// Continue target when already known (`while`: the condition).
    cont_pc: Option<Pc>,
    /// `Jump` ops to patch to the continue target (`for`: the step).
    pending_cont: Vec<usize>,
    /// `Jump` ops to patch to just past the loop.
    breaks: Vec<usize>,
    /// `execs` entries whose `cont` pc awaits the continue target.
    pending_cont_execs: Vec<usize>,
}

/// A `goto` site awaiting its patch.
struct GotoSite {
    /// Index of the first of its three reserved ops.
    at: usize,
    /// Target label name.
    sym: Symbol,
    /// Scope path at the site.
    path: Vec<u32>,
}

/// Per-function lowering state.
struct FnCompiler<'a> {
    unit: &'a TranslationUnit,
    func: &'a Function,
    code: &'a mut CodeUnit,
    slot_kinds: Vec<SlotKind>,
    slot_syms: Vec<Symbol>,
    /// Scope ids entered since the frame base, outermost first.
    path: Vec<u32>,
    next_scope: u32,
    loops: Vec<LoopCtx>,
    /// First definition of each label wins, in preorder — the same
    /// order the tree-walker's seek resolves duplicates.
    labels: Vec<(Symbol, Pc, Vec<u32>)>,
    gotos: Vec<GotoSite>,
    /// `Jump` ops to patch to the function's end (stray break/continue).
    fn_end_jumps: Vec<usize>,
    /// `Some(own index)` when `return f(args)` to this very function may
    /// compile to [`Op::TailSelf`]: calls to the name resolve here, every
    /// parameter is a non-`_Bool` scalar whose address the body never
    /// takes, and the return type is scalar. Under those conditions no
    /// pointer to a parameter or into a previous incarnation's locals
    /// can exist, so reusing the physical frame is unobservable.
    tail_self: Option<u32>,
}

impl<'a> FnCompiler<'a> {
    fn lower(
        unit: &'a TranslationUnit,
        func: &'a Function,
        idx: u32,
        code: &'a mut CodeUnit,
    ) -> FnCode {
        let mut slot_kinds = vec![SlotKind::Unknown; func.n_slots as usize];
        let mut slot_syms = vec![func.name; func.n_slots as usize];
        for (i, p) in func.params.iter().enumerate() {
            if i < slot_kinds.len() {
                slot_kinds[i] = kind_of_ty(&p.ty);
                slot_syms[i] = p.name;
            }
        }
        let mut has_goto = false;
        let mut has_switch = false;
        for &s in &func.body {
            scan_stmt(
                unit,
                s,
                &mut slot_kinds,
                &mut slot_syms,
                &mut has_goto,
                &mut has_switch,
            );
        }
        if has_goto && has_switch {
            // A goto could target a label under a switch (or originate
            // under one); the whole function stays on the tree-walker.
            return FnCode {
                start: 0,
                end: 0,
                slot_syms,
                tree_only: true,
            };
        }
        let tail_self = {
            let resolves_here = unit
                .func_by_symbol
                .get(func.name.index())
                .copied()
                .flatten()
                == Some(idx);
            let scalar_params = func
                .params
                .iter()
                .all(|p| matches!(kind_of_ty(&p.ty), SlotKind::Scalar(t) if t != IntTy::Bool));
            let scalar_ret = !func.returns_void && func.ret_ptr == 0;
            (resolves_here && scalar_params && scalar_ret && !body_addresses_param(unit, func))
                .then_some(idx)
        };
        let mut c = FnCompiler {
            unit,
            func,
            code,
            slot_kinds,
            slot_syms: slot_syms.clone(),
            path: Vec::new(),
            next_scope: 0,
            loops: Vec::new(),
            labels: Vec::new(),
            gotos: Vec::new(),
            fn_end_jumps: Vec::new(),
            tail_self,
        };
        let start = c.pc();
        for &s in &func.body {
            c.stmt(s);
        }
        let end = c.pc();
        for &j in &c.fn_end_jumps {
            c.code.ops[j] = Op::Jump(end);
        }
        // Patch gotos: unwind to the common scope prefix, re-enter the
        // target's scopes, jump. Every target label was compiled (no
        // tree-executed regions coexist with gotos here).
        let gotos = std::mem::take(&mut c.gotos);
        for g in gotos {
            let (pc, lpath) = c
                .labels
                .iter()
                .find(|(s, _, _)| *s == g.sym)
                .map(|(_, pc, p)| (*pc, p.clone()))
                .expect("resolver guarantees the label exists");
            let common = g
                .path
                .iter()
                .zip(lpath.iter())
                .take_while(|(a, b)| a == b)
                .count();
            c.code.ops[g.at] = Op::ScopePopN((g.path.len() - common) as u32);
            c.code.ops[g.at + 1] = Op::ScopePushN((lpath.len() - common) as u32);
            c.code.ops[g.at + 2] = Op::Jump(pc);
        }
        FnCode {
            start,
            end,
            slot_syms,
            tree_only: false,
        }
    }

    fn pc(&self) -> Pc {
        self.code.ops.len() as Pc
    }

    /// Append `op` at `loc`; returns its index for patching.
    fn emit(&mut self, op: Op, loc: SourceLoc) -> usize {
        self.code.ops.push(op);
        self.code.locs.push(loc);
        self.code.ops.len() - 1
    }

    /// Roll the op stream back to `mark` (expression bail-out).
    fn rollback(&mut self, mark: usize) {
        self.code.ops.truncate(mark);
        self.code.locs.truncate(mark);
    }

    fn pool(&mut self, c: CInt) -> u32 {
        self.code.pool.push(c);
        (self.code.pool.len() - 1) as u32
    }

    fn fail_msg(&mut self, msg: String) -> u32 {
        self.code.fails.push(msg);
        (self.code.fails.len() - 1) as u32
    }

    fn slot_kind(&self, slot: u32) -> SlotKind {
        self.slot_kinds
            .get(slot as usize)
            .copied()
            .unwrap_or(SlotKind::Unknown)
    }

    fn expr_loc(&self, e: ExprId) -> SourceLoc {
        self.unit.expr(e).loc
    }
}

/// Map a declared type to what loads/stores can assume about it.
fn kind_of_ty(ty: &Ty) -> SlotKind {
    match ty {
        Ty::Int(t) => SlotKind::Scalar(*t),
        Ty::Ptr(_) => SlotKind::PtrObj,
        Ty::Void => SlotKind::Unknown,
    }
}

/// Whether any `&` in `func`'s body could take a parameter's address.
/// `&param` (or `&` of an unresolved identifier, conservatively) means a
/// pointer to the parameter object may exist, making in-place frame
/// reuse for self-tail calls observable — the tombstone a fresh
/// allocation would leave, the object identity a comparison would see.
/// `&` of anything else (a local, an element, `&*p`) never yields a
/// pointer *to* a scalar parameter's own object.
fn body_addresses_param(unit: &TranslationUnit, func: &Function) -> bool {
    let nparams = func.params.len();
    let mut stmts: Vec<StmtId> = func.body.clone();
    let mut exprs: Vec<ExprId> = Vec::new();
    while let Some(s) = stmts.pop() {
        match unit.stmt(s) {
            Stmt::Decl(d) => {
                exprs.extend(d.array_size);
                exprs.extend(d.init);
                if let Some(inits) = &d.array_init {
                    exprs.extend(inits.iter().copied());
                }
            }
            Stmt::Expr(e) => exprs.push(*e),
            Stmt::If(c, t, f) => {
                exprs.push(*c);
                stmts.push(*t);
                stmts.extend(*f);
            }
            Stmt::While(c, b) => {
                exprs.push(*c);
                stmts.push(*b);
            }
            Stmt::For(init, cond, step, body) => {
                stmts.extend(*init);
                exprs.extend(*cond);
                exprs.extend(*step);
                stmts.push(*body);
            }
            Stmt::Return(e, _) => exprs.extend(*e),
            Stmt::Block(body, _) => stmts.extend(body.iter().copied()),
            Stmt::Switch(e, s, _) | Stmt::Case(e, s, _) => {
                exprs.push(*e);
                stmts.push(*s);
            }
            Stmt::Default(s, _) | Stmt::Label(_, s, _) => stmts.push(*s),
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Goto(..) | Stmt::Empty(_) => {}
        }
        while let Some(e) = exprs.pop() {
            match &unit.expr(e).kind {
                ExprKind::AddrOf(x) => {
                    match &unit.expr(*x).kind {
                        // The address of a parameter, or of something the
                        // resolver couldn't bind (which might be one).
                        ExprKind::Slot(slot, _) if slot.index() < nparams => return true,
                        ExprKind::Ident(_) => return true,
                        _ => exprs.push(*x),
                    }
                }
                ExprKind::IntLit(_)
                | ExprKind::Ident(_)
                | ExprKind::Slot(..)
                | ExprKind::SizeofType(_) => {}
                ExprKind::Unary(_, a)
                | ExprKind::PreIncDec(a, _)
                | ExprKind::PostIncDec(a, _)
                | ExprKind::Deref(a)
                | ExprKind::SizeofExpr(a)
                | ExprKind::Cast(_, a) => exprs.push(*a),
                ExprKind::Binary(_, a, b)
                | ExprKind::LogicalAnd(a, b)
                | ExprKind::LogicalOr(a, b)
                | ExprKind::Assign(a, _, b)
                | ExprKind::Index(a, b)
                | ExprKind::Comma(a, b) => {
                    exprs.push(*a);
                    exprs.push(*b);
                }
                ExprKind::Conditional(a, b, c) => {
                    exprs.push(*a);
                    exprs.push(*b);
                    exprs.push(*c);
                }
                ExprKind::Call(_, args) => exprs.extend(args.iter().copied()),
            }
        }
    }
    false
}

/// Prepass: slot kinds and spellings from every declaration, plus the
/// goto/switch census that decides `tree_only`.
fn scan_stmt(
    unit: &TranslationUnit,
    s: StmtId,
    kinds: &mut [SlotKind],
    syms: &mut [Symbol],
    has_goto: &mut bool,
    has_switch: &mut bool,
) {
    match unit.stmt(s) {
        Stmt::Decl(d) => {
            let i = d.slot.index();
            if i < kinds.len() {
                kinds[i] = if d.array_size.is_some() || d.array_init.is_some() {
                    SlotKind::Array
                } else {
                    kind_of_ty(&d.ty)
                };
                syms[i] = d.name;
            }
        }
        Stmt::Goto(_, _) => *has_goto = true,
        Stmt::Switch(_, body, _) => {
            *has_switch = true;
            scan_stmt(unit, *body, kinds, syms, has_goto, has_switch);
        }
        Stmt::If(_, t, e) => {
            scan_stmt(unit, *t, kinds, syms, has_goto, has_switch);
            if let Some(e) = e {
                scan_stmt(unit, *e, kinds, syms, has_goto, has_switch);
            }
        }
        Stmt::While(_, body) => scan_stmt(unit, *body, kinds, syms, has_goto, has_switch),
        Stmt::For(init, _, _, body) => {
            if let Some(i) = init {
                scan_stmt(unit, *i, kinds, syms, has_goto, has_switch);
            }
            scan_stmt(unit, *body, kinds, syms, has_goto, has_switch);
        }
        Stmt::Block(items, _) => {
            for &i in items {
                scan_stmt(unit, i, kinds, syms, has_goto, has_switch);
            }
        }
        Stmt::Case(_, inner, _) | Stmt::Default(inner, _) | Stmt::Label(_, inner, _) => {
            scan_stmt(unit, *inner, kinds, syms, has_goto, has_switch)
        }
        Stmt::Expr(_)
        | Stmt::Return(_, _)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Empty(_) => {}
    }
}

/// Is `e` free of updates (assignment, `++`/`--`) anywhere in its
/// *evaluated* subtree? `sizeof` operands are unevaluated (§6.5.3.4:2)
/// and skipped; call arguments are evaluated and descended into.
fn no_updates(unit: &TranslationUnit, e: ExprId) -> bool {
    match &unit.expr(e).kind {
        ExprKind::Assign(..) | ExprKind::PreIncDec(..) | ExprKind::PostIncDec(..) => false,
        ExprKind::IntLit(_)
        | ExprKind::Ident(_)
        | ExprKind::Slot(..)
        | ExprKind::SizeofType(_)
        | ExprKind::SizeofExpr(_) => true,
        ExprKind::Unary(_, a) | ExprKind::Deref(a) | ExprKind::AddrOf(a) | ExprKind::Cast(_, a) => {
            no_updates(unit, *a)
        }
        ExprKind::Binary(_, a, b)
        | ExprKind::LogicalAnd(a, b)
        | ExprKind::LogicalOr(a, b)
        | ExprKind::Index(a, b)
        | ExprKind::Comma(a, b) => no_updates(unit, *a) && no_updates(unit, *b),
        ExprKind::Conditional(c, t, f) => {
            no_updates(unit, *c) && no_updates(unit, *t) && no_updates(unit, *f)
        }
        ExprKind::Call(_, args) => args.iter().all(|&a| no_updates(unit, a)),
    }
}

/// Can the §6.5:2 footprint be elided for the full expression `e`?
///
/// True iff the only update in `e` is at its root. Then every footprint
/// entry below the root is a read; `check_unsequenced` (needs a write on
/// one side) and the root's `check_update_conflict` (scans for writes)
/// are both vacuous, and eliding the footprint is unobservable.
pub(crate) fn elidable(unit: &TranslationUnit, e: ExprId) -> bool {
    match &unit.expr(e).kind {
        ExprKind::Assign(p, _, r) => no_updates(unit, *p) && no_updates(unit, *r),
        ExprKind::PreIncDec(p, _) | ExprKind::PostIncDec(p, _) => no_updates(unit, *p),
        _ => no_updates(unit, e),
    }
}

/// The static type of `e`'s value, when derivable without object state —
/// used for identity-conversion elision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StTy {
    Int(IntTy),
    Ptr,
}

impl<'a> FnCompiler<'a> {
    fn static_ty(&self, e: ExprId) -> Option<StTy> {
        match &self.unit.expr(e).kind {
            ExprKind::IntLit(c) => Some(StTy::Int(c.ty)),
            ExprKind::Slot(slot, _) => match self.slot_kind(slot.0) {
                SlotKind::Scalar(t) => Some(StTy::Int(t)),
                SlotKind::PtrObj | SlotKind::Array => Some(StTy::Ptr),
                SlotKind::Unknown => None,
            },
            ExprKind::Unary(UnaryOp::Not, _) => Some(StTy::Int(IntTy::Int)),
            ExprKind::Unary(_, a) => match self.static_ty(*a)? {
                StTy::Int(t) => Some(StTy::Int(t.promote())),
                StTy::Ptr => None,
            },
            ExprKind::Binary(op, a, b) => match op {
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                    Some(StTy::Int(IntTy::Int))
                }
                BinOp::Shl | BinOp::Shr => match self.static_ty(*a)? {
                    StTy::Int(t) => Some(StTy::Int(t.promote())),
                    StTy::Ptr => None,
                },
                _ => match (self.static_ty(*a)?, self.static_ty(*b)?) {
                    (StTy::Int(x), StTy::Int(y)) => Some(StTy::Int(IntTy::usual_arith(x, y))),
                    _ => None,
                },
            },
            ExprKind::LogicalAnd(..) | ExprKind::LogicalOr(..) => Some(StTy::Int(IntTy::Int)),
            ExprKind::Conditional(_, t, f) => match (self.static_ty(*t)?, self.static_ty(*f)?) {
                (StTy::Int(x), StTy::Int(y)) => Some(StTy::Int(IntTy::usual_arith(x, y))),
                _ => None,
            },
            ExprKind::Comma(_, r) => self.static_ty(*r),
            ExprKind::Cast(ty, _) => match ty {
                Ty::Int(t) => Some(StTy::Int(*t)),
                Ty::Ptr(_) => Some(StTy::Ptr),
                Ty::Void => None,
            },
            ExprKind::AddrOf(_) => Some(StTy::Ptr),
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => Some(StTy::Int(SIZE_T)),
            ExprKind::Call(name, _) => {
                let f = self.unit.function(*name)?;
                if f.returns_void || f.ret_ptr > 0 {
                    None
                } else {
                    Some(StTy::Int(f.ret_scalar))
                }
            }
            _ => None,
        }
    }
}

// ----- fused byte sweeps -----

/// An AST-matched byte-sweep candidate, pending op-range verification.
struct SweepCand {
    k_slot: u32,
    d_slot: u32,
    src: SweepSrc,
    bound: i64,
}

impl<'a> FnCompiler<'a> {
    /// Match the fusable loop shape:
    /// `for (int k = …; k < C; k++) d[k] = s[k];` (copy) or
    /// `… d[k] = c;` (fill), with `d`/`s` pointer slots, `k` a plain
    /// non-`const` `int`, and an `int`-typed literal bound (so the
    /// promoted compare is exactly `value(k) < C`, and `k++` can never
    /// overflow mid-loop). Matching is purely syntactic; every semantic
    /// question — live char pointers, bounds, initialization, aliasing
    /// with the loop's own state — is a runtime precheck of the op.
    fn sweep_candidate(
        &self,
        init: &Option<StmtId>,
        cond: &Option<ExprId>,
        step: &Option<ExprId>,
        body: StmtId,
    ) -> Option<SweepCand> {
        // init: `int k = <expr>;`
        let Stmt::Decl(d) = self.unit.stmt((*init)?) else {
            return None;
        };
        if d.ty != Ty::Int(IntTy::Int)
            || d.array_size.is_some()
            || d.array_init.is_some()
            || d.init.is_none()
            || d.quals.is_const
            || d.redeclaration
        {
            return None;
        }
        let k = d.slot.0;
        if self.slot_kind(k) != SlotKind::Scalar(IntTy::Int) {
            return None;
        }
        // cond: `k < C`
        let ExprKind::Binary(BinOp::Lt, cl, cr) = &self.unit.expr((*cond)?).kind else {
            return None;
        };
        let ExprKind::Slot(cs, _) = &self.unit.expr(*cl).kind else {
            return None;
        };
        let ExprKind::IntLit(c1) = &self.unit.expr(*cr).kind else {
            return None;
        };
        if cs.0 != k || c1.ty != IntTy::Int {
            return None;
        }
        let bound = i64::try_from(c1.math()).ok()?;
        // step: `k++` (`++k` is the same statement).
        let (ExprKind::PostIncDec(sp, 1) | ExprKind::PreIncDec(sp, 1)) =
            &self.unit.expr((*step)?).kind
        else {
            return None;
        };
        let ExprKind::Slot(ss, _) = &self.unit.expr(*sp).kind else {
            return None;
        };
        if ss.0 != k {
            return None;
        }
        // body: a single `d[k] = …;` statement (simple assignment).
        let Stmt::Expr(e) = self.unit.stmt(body) else {
            return None;
        };
        let ExprKind::Assign(place, None, rhs) = &self.unit.expr(*e).kind else {
            return None;
        };
        let (d_slot, di) = self.ptr_slot_index(*place)?;
        if di != k || d_slot == k {
            return None;
        }
        let src = match &self.unit.expr(*rhs).kind {
            ExprKind::IntLit(c) => SweepSrc::Fill(*c),
            _ => {
                let (s_slot, si) = self.ptr_slot_index(*rhs)?;
                if si != k || s_slot == d_slot || s_slot == k {
                    return None;
                }
                SweepSrc::Slot(s_slot)
            }
        };
        Some(SweepCand {
            k_slot: k,
            d_slot,
            src,
            bound,
        })
    }

    /// `base[index]` where `base` is a pointer slot and `index` a slot:
    /// `(base_slot, index_slot)`.
    fn ptr_slot_index(&self, e: ExprId) -> Option<(u32, u32)> {
        let ExprKind::Index(b, i) = &self.unit.expr(e).kind else {
            return None;
        };
        let ExprKind::Slot(bs, _) = &self.unit.expr(*b).kind else {
            return None;
        };
        let ExprKind::Slot(is, _) = &self.unit.expr(*i).kind else {
            return None;
        };
        (self.slot_kind(bs.0) == SlotKind::PtrObj).then_some((bs.0, is.0))
    }

    /// Patch the placeholder at `at` into an [`Op::ByteSweep`] — but
    /// only if every op of the lowered loop `[cond_pc, normal_exit)`
    /// dispatches exactly once per iteration, so the bulk step charge
    /// `iterations × per_iter + tail` is precisely what the generic
    /// loop would have settled. Straight-line value/memory ops qualify;
    /// the single exit branch (at `exit_patch`, taken on the final
    /// test) and the back-edge jump anchor the range. Anything else — a
    /// tree fallback, a nested branch — leaves the `Nop` in place and
    /// the loop fully generic.
    fn fuse_sweep(
        &mut self,
        at: usize,
        cand: SweepCand,
        cond_pc: Pc,
        exit_patch: usize,
        normal_exit: Pc,
    ) {
        let jump_pc = normal_exit as usize - 1;
        for pc in cond_pc as usize..=jump_pc {
            let uniform = match self.code.ops[pc] {
                Op::Jump(t) => pc == jump_pc && t == cond_pc,
                Op::BrCmpSS(..) | Op::BrCmpSC(..) | Op::BranchFalse(_) | Op::BranchFalseSeq(_) => {
                    pc == exit_patch
                }
                Op::Const(_)
                | Op::LoadSlot(_)
                | Op::LoadSlotFast(..)
                | Op::Pop
                | Op::PopSeq
                | Op::Unary(_)
                | Op::Binary(_)
                | Op::BinaryC(..)
                | Op::BinSS(_)
                | Op::BinSC(_)
                | Op::BinVS(_)
                | Op::Bin2SF(_)
                | Op::Bin2VF(_)
                | Op::Bin2FC(_)
                | Op::ToBool01
                | Op::AsPtr
                | Op::ReadThru
                | Op::IndexPlace
                | Op::IndexRead
                | Op::SlotPlace(_)
                | Op::BindCheck(_)
                | Op::StoreSimple
                | Op::StoreCompound(_)
                | Op::AssignSlot(_)
                | Op::AssignSlotPop(_)
                | Op::IncDec(..)
                | Op::IncDecSlotStmt(_)
                | Op::CastInt(_) => true,
                _ => false,
            };
            if !uniform {
                return;
            }
        }
        let idx = u32::try_from(self.code.sweeps.len()).expect("sweep table fits u32");
        self.code.sweeps.push(FusedSweep {
            k_slot: cand.k_slot,
            d_slot: cand.d_slot,
            src: cand.src,
            bound: cand.bound,
            per_iter_ops: (jump_pc - cond_pc as usize + 1) as u64,
            tail_ops: (exit_patch - cond_pc as usize + 1) as u64,
            exit: normal_exit,
        });
        self.code.ops[at] = Op::ByteSweep(idx);
    }
}

// ----- statement lowering -----

impl<'a> FnCompiler<'a> {
    fn stmt(&mut self, s: StmtId) {
        match self.unit.stmt(s) {
            Stmt::Empty(_) => {}
            Stmt::Decl(d) => self.decl(s, d),
            Stmt::Expr(e) => self.full_stmt(*e),
            Stmt::If(cond, then, els) => {
                let patch = self.cond(*cond);
                self.stmt(*then);
                match els {
                    Some(els) => {
                        let skip = self.emit(Op::Jump(0), self.expr_loc(*cond));
                        let else_pc = self.pc();
                        self.patch_branch(patch, else_pc);
                        self.stmt(*els);
                        let end = self.pc();
                        self.code.ops[skip] = Op::Jump(end);
                    }
                    None => {
                        let end = self.pc();
                        self.patch_branch(patch, end);
                    }
                }
            }
            Stmt::While(cond, body) => {
                let cond_pc = self.pc();
                let exit_patch = self.cond(*cond);
                self.loops.push(LoopCtx {
                    break_path_len: self.path.len(),
                    cont_path_len: self.path.len(),
                    cont_pc: Some(cond_pc),
                    pending_cont: Vec::new(),
                    breaks: Vec::new(),
                    pending_cont_execs: Vec::new(),
                });
                self.stmt(*body);
                self.emit(Op::Jump(cond_pc), self.expr_loc(*cond));
                let end = self.pc();
                self.patch_branch(exit_patch, end);
                let ctx = self.loops.pop().expect("pushed above");
                for b in ctx.breaks {
                    self.code.ops[b] = Op::Jump(end);
                }
                debug_assert!(ctx.pending_cont.is_empty() && ctx.pending_cont_execs.is_empty());
            }
            Stmt::For(init, cond, step, body) => {
                let loc = stmt_loc(self.unit, self.unit.stmt(s));
                // The init declaration's scope is the whole loop
                // (§6.2.4:6); `break` unwinds it, `continue` keeps it.
                let break_path_len = self.path.len();
                self.emit(Op::EnterScope, loc);
                self.push_scope();
                if let Some(init) = init {
                    self.stmt(*init);
                }
                // Fused byte-sweep candidate: a placeholder op sits
                // between the init and the condition; if the lowered
                // loop verifies (see `fuse_sweep`) it becomes an
                // `Op::ByteSweep` whose runtime prechecks fall through
                // to these generic ops, otherwise it stays a `Nop`.
                let sweep = self
                    .sweep_candidate(init, cond, step, *body)
                    .map(|cand| (self.emit(Op::Nop, loc), cand));
                let cond_pc = self.pc();
                let exit_patch = cond.map(|c| self.cond(c));
                self.loops.push(LoopCtx {
                    break_path_len,
                    cont_path_len: self.path.len(),
                    cont_pc: None,
                    pending_cont: Vec::new(),
                    breaks: Vec::new(),
                    pending_cont_execs: Vec::new(),
                });
                self.stmt(*body);
                let step_pc = self.pc();
                if let Some(step) = step {
                    self.full_stmt(*step);
                }
                self.emit(Op::Jump(cond_pc), loc);
                let normal_exit = self.pc();
                if let Some(p) = exit_patch {
                    self.patch_branch(p, normal_exit);
                }
                if let (Some((at, cand)), Some(exit_patch)) = (sweep, exit_patch) {
                    self.fuse_sweep(at, cand, cond_pc, exit_patch, normal_exit);
                }
                self.emit(Op::ExitScope, loc);
                self.pop_scope();
                let end = self.pc();
                let ctx = self.loops.pop().expect("pushed above");
                for b in ctx.breaks {
                    self.code.ops[b] = Op::Jump(end);
                }
                for c in ctx.pending_cont {
                    self.code.ops[c] = Op::Jump(step_pc);
                }
                for e in ctx.pending_cont_execs {
                    if let Some((pops, _)) = self.code.execs[e].cont {
                        self.code.execs[e].cont = Some((pops, step_pc));
                    }
                }
            }
            Stmt::Return(e, loc) => match e {
                Some(e) => {
                    if !self.try_tail_self(*e, *loc) {
                        self.full_value(*e);
                        self.emit(Op::Ret, *loc);
                    }
                }
                None => {
                    self.emit(Op::RetNone, *loc);
                }
            },
            Stmt::Break(loc) => {
                let pops = match self.loops.last() {
                    Some(ctx) => (self.path.len() - ctx.break_path_len) as u32,
                    // A stray `break` bubbles to the function's end like
                    // a fall-off (the tree-walker's blocks pass the flow
                    // through to `call`, which treats it as Normal).
                    None => self.path.len() as u32,
                };
                if pops > 0 {
                    self.emit(Op::ScopePopN(pops), *loc);
                }
                let j = self.emit(Op::Jump(0), *loc);
                match self.loops.last_mut() {
                    Some(ctx) => ctx.breaks.push(j),
                    None => self.fn_end_jumps.push(j),
                }
            }
            Stmt::Continue(loc) => {
                let pops = match self.loops.last() {
                    Some(ctx) => (self.path.len() - ctx.cont_path_len) as u32,
                    None => self.path.len() as u32,
                };
                if pops > 0 {
                    self.emit(Op::ScopePopN(pops), *loc);
                }
                match self.loops.last() {
                    Some(ctx) => match ctx.cont_pc {
                        Some(pc) => {
                            self.emit(Op::Jump(pc), *loc);
                        }
                        None => {
                            let j = self.emit(Op::Jump(0), *loc);
                            self.loops
                                .last_mut()
                                .expect("checked above")
                                .pending_cont
                                .push(j);
                        }
                    },
                    None => {
                        let j = self.emit(Op::Jump(0), *loc);
                        self.fn_end_jumps.push(j);
                    }
                }
            }
            Stmt::Block(items, loc) => {
                self.emit(Op::EnterScope, *loc);
                self.push_scope();
                for &i in items {
                    self.stmt(i);
                }
                self.emit(Op::ExitScope, *loc);
                self.pop_scope();
            }
            Stmt::Switch(_, _, loc) => {
                // `switch` dispatch stays on the tree-walker: its label
                // scan, promoted-type case matching, and partial-block
                // execution are exactly replicated by calling into it.
                let cont = self.loops.last().map(|ctx| {
                    let pops = (self.path.len() - ctx.cont_path_len) as u32;
                    (pops, ctx.cont_pc.unwrap_or(0))
                });
                let pending = self.loops.last().is_some_and(|ctx| ctx.cont_pc.is_none());
                let idx = self.code.execs.len();
                self.code.execs.push(ExecInfo {
                    stmt: s,
                    depth: self.path.len() as u32,
                    cont,
                });
                if pending {
                    self.loops
                        .last_mut()
                        .expect("checked above")
                        .pending_cont_execs
                        .push(idx);
                }
                self.emit(Op::ExecStmt(idx as u32), *loc);
            }
            // Labels are transparent when reached sequentially; `case`
            // and `default` outside a switch body execute their inner
            // statement like the tree-walker does.
            Stmt::Case(_, inner, _) | Stmt::Default(inner, _) => self.stmt(*inner),
            Stmt::Label(sym, inner, loc) => {
                let _ = loc;
                if !self.labels.iter().any(|(s, _, _)| s == sym) {
                    let pc = self.pc();
                    self.labels.push((*sym, pc, self.path.clone()));
                }
                self.stmt(*inner);
            }
            Stmt::Goto(sym, loc) => {
                if !self.func.labels.iter().any(|(s, _)| s == sym) {
                    // The dynamic-semantics error for a label-less goto;
                    // the translation phase has its own verdict for it.
                    let msg = format!(
                        "`goto {}` targets no label in this function",
                        self.unit.interner.resolve(*sym)
                    );
                    let m = self.fail_msg(msg);
                    self.emit(Op::FailUnsupported(m), *loc);
                    return;
                }
                let at = self.emit(Op::Nop, *loc);
                self.emit(Op::Nop, *loc);
                self.emit(Op::Nop, *loc);
                self.gotos.push(GotoSite {
                    at,
                    sym: *sym,
                    path: self.path.clone(),
                });
            }
        }
    }

    fn push_scope(&mut self) {
        self.path.push(self.next_scope);
        self.next_scope += 1;
    }

    fn pop_scope(&mut self) {
        self.path.pop();
    }

    /// Compile a statement/loop condition: ops that evaluate the full
    /// expression, then a branch-if-false op whose target the caller
    /// patches. Returns the branch op's index.
    fn cond(&mut self, e: ExprId) -> usize {
        let loc = self.expr_loc(e);
        let mark = self.code.ops.len();
        if elidable(self.unit, e) && self.expr(e).is_ok() {
            // Whole-condition fusion: a single fused compare collapses
            // to one compute-and-branch op.
            if self.code.ops.len() == mark + 1 {
                match self.code.ops[mark] {
                    Op::BinSS(i) => {
                        self.code.ops[mark] = Op::BrCmpSS(i, 0);
                        return mark;
                    }
                    Op::BinSC(i) => {
                        self.code.ops[mark] = Op::BrCmpSC(i, 0);
                        return mark;
                    }
                    _ => {}
                }
            }
            return self.emit(Op::BranchFalseSeq(0), loc);
        }
        self.rollback(mark);
        self.emit(Op::EvalFull(e), loc);
        self.emit(Op::BranchFalseSeq(0), loc)
    }

    fn patch_branch(&mut self, at: usize, target: Pc) {
        match &mut self.code.ops[at] {
            Op::BranchFalseSeq(t)
            | Op::BranchFalse(t)
            | Op::BrCmpSS(_, t)
            | Op::BrCmpSC(_, t)
            | Op::AndFalse(t)
            | Op::OrTrue(t) => *t = target,
            other => unreachable!("patching a non-branch op {other:?}"),
        }
    }

    /// Compile a declaration statement.
    fn decl(&mut self, s: StmtId, d: &Decl) {
        let full = d.redeclaration
            || matches!(d.ty, Ty::Void)
            || d.array_size.is_some()
            || d.array_init.is_some();
        if full {
            self.emit(Op::DeclFull(s), d.loc);
            return;
        }
        match d.init {
            None => {
                self.emit(Op::DeclSimple(s), d.loc);
            }
            Some(init) => {
                if !elidable(self.unit, init) {
                    self.emit(Op::DeclFull(s), d.loc);
                    return;
                }
                let mark = self.code.ops.len();
                self.emit(Op::DeclAlloc(s), d.loc);
                if self.expr(init).is_err() {
                    self.rollback(mark);
                    self.emit(Op::DeclFull(s), d.loc);
                    return;
                }
                self.emit(Op::DeclInit(s), self.expr_loc(init));
            }
        }
    }

    /// Compile a full-expression statement (§6.8:4): the value is
    /// discarded and the footprint dies at the statement's end.
    fn full_stmt(&mut self, e: ExprId) {
        let loc = self.expr_loc(e);
        if !elidable(self.unit, e) {
            self.emit(Op::EvalFullPop(e), loc);
            return;
        }
        let mark = self.code.ops.len();
        if self.full_stmt_fast(e).is_err() {
            self.rollback(mark);
            self.emit(Op::EvalFullPop(e), loc);
        }
    }

    /// Statement-position lowering of an elidable full expression, with
    /// store/inc-dec superinstructions that never materialize the value.
    fn full_stmt_fast(&mut self, e: ExprId) -> Result<(), Bail> {
        let node = self.unit.expr(e);
        let loc = node.loc;
        match &node.kind {
            ExprKind::Assign(place, op, rhs) => {
                match &self.unit.expr(*place).kind {
                    ExprKind::Slot(slot, _) => {
                        let place_loc = self.expr_loc(*place);
                        match self.slot_kind(slot.0) {
                            SlotKind::Scalar(t) => {
                                self.emit(Op::BindCheck(slot.0), place_loc);
                                self.expr(*rhs)?;
                                let fast = match op {
                                    // Compound assignment reads first; a
                                    // `_Bool` read can trap (§6.2.6.1:5),
                                    // so it stays on the generic path.
                                    Some(_) if t == IntTy::Bool => None,
                                    _ => Some(t),
                                };
                                let i = self.code.stores.len() as u32;
                                self.code.stores.push(FusedStore {
                                    slot: slot.0,
                                    fast,
                                    op: *op,
                                });
                                self.emit(Op::AssignSlotPop(i), loc);
                            }
                            SlotKind::PtrObj => {
                                self.emit(Op::BindCheck(slot.0), place_loc);
                                self.expr(*rhs)?;
                                let i = self.code.stores.len() as u32;
                                self.code.stores.push(FusedStore {
                                    slot: slot.0,
                                    fast: None,
                                    op: *op,
                                });
                                self.emit(Op::AssignSlotPop(i), loc);
                            }
                            SlotKind::Array => {
                                // §6.3.2.1:1 — rejected after the place
                                // evaluates, before the rhs would.
                                self.emit(Op::BindCheck(slot.0), place_loc);
                                let msg = format!(
                                    "array `{}` is not a modifiable lvalue",
                                    self.unit.interner.resolve(self.slot_syms[slot.0 as usize])
                                );
                                let m = self.fail_msg(msg);
                                self.emit(Op::FailUnsupported(m), loc);
                            }
                            SlotKind::Unknown => return Err(Bail),
                        }
                    }
                    ExprKind::Deref(x) => {
                        let deref_loc = self.expr_loc(*place);
                        self.expr(*x)?;
                        self.emit(Op::AsPtr, deref_loc);
                        self.expr(*rhs)?;
                        self.emit(self.store_op(*op), loc);
                        self.emit(Op::PopSeq, loc);
                    }
                    ExprKind::Index(b, i) => {
                        let index_loc = self.expr_loc(*place);
                        self.index_base(*b, index_loc)?;
                        self.expr(*i)?;
                        self.emit(Op::IndexPlace, index_loc);
                        self.expr(*rhs)?;
                        self.emit(self.store_op(*op), loc);
                        self.emit(Op::PopSeq, loc);
                    }
                    ExprKind::Ident(_) => return Err(Bail),
                    _ => {
                        let place_loc = self.expr_loc(*place);
                        let m = self.fail_msg("expression is not an lvalue".into());
                        self.emit(Op::FailUnsupported(m), place_loc);
                    }
                }
                Ok(())
            }
            ExprKind::PreIncDec(place, delta) | ExprKind::PostIncDec(place, delta) => {
                match &self.unit.expr(*place).kind {
                    ExprKind::Slot(slot, _) => {
                        let place_loc = self.expr_loc(*place);
                        match self.slot_kind(slot.0) {
                            SlotKind::Scalar(t) => {
                                let i = self.code.incdecs.len() as u32;
                                self.code.incdecs.push(FusedIncDec {
                                    slot: slot.0,
                                    fast: (t != IntTy::Bool).then_some(t),
                                    delta: *delta,
                                    place_loc,
                                });
                                self.emit(Op::IncDecSlotStmt(i), loc);
                            }
                            SlotKind::PtrObj => {
                                let i = self.code.incdecs.len() as u32;
                                self.code.incdecs.push(FusedIncDec {
                                    slot: slot.0,
                                    fast: None,
                                    delta: *delta,
                                    place_loc,
                                });
                                self.emit(Op::IncDecSlotStmt(i), loc);
                            }
                            SlotKind::Array => {
                                self.emit(Op::BindCheck(slot.0), place_loc);
                                let msg = format!(
                                    "array `{}` is not a modifiable lvalue",
                                    self.unit.interner.resolve(self.slot_syms[slot.0 as usize])
                                );
                                let m = self.fail_msg(msg);
                                self.emit(Op::FailUnsupported(m), loc);
                            }
                            SlotKind::Unknown => return Err(Bail),
                        }
                    }
                    ExprKind::Deref(x) => {
                        let deref_loc = self.expr_loc(*place);
                        self.expr(*x)?;
                        self.emit(Op::AsPtr, deref_loc);
                        self.emit(Op::IncDec(*delta, false), loc);
                        self.emit(Op::PopSeq, loc);
                    }
                    ExprKind::Index(b, i) => {
                        let index_loc = self.expr_loc(*place);
                        self.index_base(*b, index_loc)?;
                        self.expr(*i)?;
                        self.emit(Op::IndexPlace, index_loc);
                        self.emit(Op::IncDec(*delta, false), loc);
                        self.emit(Op::PopSeq, loc);
                    }
                    ExprKind::Ident(_) => return Err(Bail),
                    _ => {
                        let place_loc = self.expr_loc(*place);
                        let m = self.fail_msg("expression is not an lvalue".into());
                        self.emit(Op::FailUnsupported(m), place_loc);
                    }
                }
                Ok(())
            }
            _ => {
                self.expr(e)?;
                self.emit(Op::PopSeq, loc);
                Ok(())
            }
        }
    }

    fn store_op(&self, op: Option<BinOp>) -> Op {
        match op {
            None => Op::StoreSimple,
            Some(op) => Op::StoreCompound(op),
        }
    }

    /// Leave the decayed base pointer of an indexing expression on the
    /// stack. An array-declared slot's designator *is* that pointer, so
    /// one `SlotPlace` (same unbound-slot diagnostic the tree gives for
    /// evaluating the name) replaces the load + `AsPtr` round trip;
    /// any other base evaluates and decays.
    fn index_base(&mut self, b: ExprId, as_ptr_loc: SourceLoc) -> Result<(), Bail> {
        if let ExprKind::Slot(slot, _) = &self.unit.expr(b).kind {
            if matches!(self.slot_kind(slot.0), SlotKind::Array) {
                self.emit(Op::SlotPlace(slot.0), self.expr_loc(b));
                return Ok(());
            }
        }
        self.expr(b)?;
        self.emit(Op::AsPtr, as_ptr_loc);
        Ok(())
    }

    /// Compile a full expression whose value the next op consumes
    /// (conditions, return values, initializers).
    fn full_value(&mut self, e: ExprId) {
        let loc = self.expr_loc(e);
        if !elidable(self.unit, e) {
            self.emit(Op::EvalFull(e), loc);
            return;
        }
        let mark = self.code.ops.len();
        if self.expr(e).is_err() {
            self.rollback(mark);
            self.emit(Op::EvalFull(e), loc);
        }
    }

    /// Compile `return e` as a frame-reusing self-tail call when `e` is
    /// an eligible direct call to the enclosing function. The arguments
    /// compile straight onto the operand stack — no per-argument
    /// `ArgPush` — which is exact only because each argument's op span
    /// provably never produces a missing value (the one thing the
    /// elided `use_value` consumption would diagnose). A trailing `Ret`
    /// still follows the `TailSelf`: it is the fall-through continuation
    /// when the op degrades to a general call at runtime.
    fn try_tail_self(&mut self, e: ExprId, ret_loc: SourceLoc) -> bool {
        let Some(me) = self.tail_self else {
            return false;
        };
        let node = self.unit.expr(e);
        let ExprKind::Call(name, args) = &node.kind else {
            return false;
        };
        let target = self
            .unit
            .func_by_symbol
            .get(name.index())
            .copied()
            .flatten();
        if target != Some(me) || args.len() != self.func.params.len() || !elidable(self.unit, e) {
            return false;
        }
        let mark = self.code.ops.len();
        for &a in args {
            let amark = self.code.ops.len();
            let pure = self.expr(a).is_ok()
                && self.code.ops[amark..]
                    .iter()
                    .all(|op| !op_can_push_missing(op));
            if !pure {
                self.rollback(mark);
                return false;
            }
        }
        self.emit(Op::TailSelf(args.len() as u32), node.loc);
        self.emit(Op::Ret, ret_loc);
        true
    }
}

/// Whether executing `op` can leave a missing value (a void or absent
/// result, §6.3.2.2) on the operand stack. Everything else the
/// expression compiler emits pushes computed values, so eliding the
/// per-argument consumption check around such spans is unobservable.
fn op_can_push_missing(op: &Op) -> bool {
    matches!(
        op,
        Op::Call(..)
            | Op::TailSelf(_)
            | Op::Malloc
            | Op::Free
            | Op::CastVoid
            | Op::EvalFull(_)
            | Op::EvalFullPop(_)
            | Op::ExecStmt(_)
            | Op::DeclFull(_)
    )
}

// ----- expression lowering -----

impl<'a> FnCompiler<'a> {
    /// Remove the last `n` emitted ops (fusion replaces them).
    fn pop_ops(&mut self, n: usize) {
        let len = self.code.ops.len() - n;
        self.code.ops.truncate(len);
        self.code.locs.truncate(len);
    }

    /// Compile `e` in value position. On success the emitted ops leave
    /// exactly one value on the operand stack, and a returned
    /// [`Shape::SlotFast`]/[`Shape::Const`] additionally guarantees the
    /// whole expression compiled to exactly one op — the invariant that
    /// lets a parent pop that op off the tail and fuse it.
    ///
    /// `Err(Bail)` means no diagnostic-exact lowering exists; the caller
    /// rolls back to its mark and emits a tree-fallback op. Ops that
    /// *terminate* (`FailUnsupported`, `FailUb`) count as pushing a
    /// value: nothing after them executes.
    fn expr(&mut self, e: ExprId) -> CResult {
        let node = self.unit.expr(e);
        let loc = node.loc;
        match &node.kind {
            ExprKind::IntLit(c) => {
                let i = self.pool(*c);
                self.emit(Op::Const(i), loc);
                Ok(Shape::Const(i))
            }
            ExprKind::Ident(sym) => {
                let msg = format!(
                    "use of undeclared identifier `{}`",
                    self.unit.interner.resolve(*sym)
                );
                let m = self.fail_msg(msg);
                self.emit(Op::FailUnsupported(m), loc);
                Ok(Shape::Other)
            }
            ExprKind::Slot(slot, _) => match self.slot_kind(slot.0) {
                // `_Bool` reads can trap (§6.2.6.1:5); they stay on the
                // generic path, which reports the representation.
                SlotKind::Scalar(t) if t != IntTy::Bool => {
                    self.emit(Op::LoadSlotFast(slot.0, t), loc);
                    Ok(Shape::SlotFast(slot.0, t, loc))
                }
                _ => {
                    self.emit(Op::LoadSlot(slot.0), loc);
                    Ok(Shape::Other)
                }
            },
            ExprKind::Unary(op, inner) => {
                let sh = self.expr(*inner)?;
                if let Shape::Const(i) = sh {
                    let c = self.code.pool[i as usize];
                    // Fold only when the tree-walker would neither stop
                    // (the consteval error becomes a runtime report at
                    // this loc) nor note anything.
                    let folded = match op {
                        UnaryOp::Neg => consteval::neg(c).ok(),
                        UnaryOp::BitNot => consteval::bit_not(c).ok(),
                        UnaryOp::Not => Some(CInt::int(if c.is_zero() { 1 } else { 0 })),
                    };
                    if let Some(f) = folded {
                        self.pop_ops(1);
                        let j = self.pool(f);
                        self.emit(Op::Const(j), loc);
                        return Ok(Shape::Const(j));
                    }
                }
                self.emit(Op::Unary(*op), loc);
                Ok(Shape::Other)
            }
            ExprKind::Binary(op, l, r) => {
                let sl = self.expr(*l)?;
                let sr = self.expr(*r)?;
                match (sl, sr) {
                    (
                        Shape::SlotFast(a_slot, a_ty, a_loc),
                        Shape::SlotFast(b_slot, b_ty, b_loc),
                    ) => {
                        self.pop_ops(2);
                        let i = self.code.fused.len() as u32;
                        self.code.fused.push(FusedBin {
                            a_slot,
                            a_ty,
                            a_loc,
                            b_slot,
                            b_ty,
                            b_loc,
                            op: *op,
                        });
                        self.emit(Op::BinSS(i), loc);
                        Ok(Shape::Fused(i, false))
                    }
                    (Shape::SlotFast(a_slot, a_ty, a_loc), Shape::Const(ci)) => {
                        self.pop_ops(2);
                        let b_ty = self.code.pool[ci as usize].ty;
                        let i = self.code.fused.len() as u32;
                        self.code.fused.push(FusedBin {
                            a_slot,
                            a_ty,
                            a_loc,
                            b_slot: ci,
                            b_ty,
                            b_loc: loc,
                            op: *op,
                        });
                        self.emit(Op::BinSC(i), loc);
                        Ok(Shape::Fused(i, true))
                    }
                    (Shape::Const(ci), Shape::Const(cj)) => {
                        let (a, b) = (self.code.pool[ci as usize], self.code.pool[cj as usize]);
                        match consteval::arith(*op, a, b) {
                            Ok(c) => {
                                self.pop_ops(2);
                                let j = self.pool(c);
                                self.emit(Op::Const(j), loc);
                                Ok(Shape::Const(j))
                            }
                            // Constant UB (`1 / 0`) still reports at run
                            // time, at this node's loc.
                            Err(_) => {
                                self.emit(Op::Binary(*op), loc);
                                Ok(Shape::Other)
                            }
                        }
                    }
                    (Shape::SlotFast(a_slot, a_ty, a_loc), Shape::Fused(fi, fc)) => {
                        // Second-level fusion: `a ⊕ (b ⊕ c)` — the whole
                        // five-node tree in one dispatch, loads and
                        // operator applications in tree order.
                        let inner_loc = *self.code.locs.last().expect("inner op");
                        self.pop_ops(2);
                        let j = self.code.fused2.len() as u32;
                        self.code.fused2.push(Fused2 {
                            op: *op,
                            a_slot,
                            a_ty,
                            a_loc,
                            inner: fi,
                            inner_loc,
                            inner_const: fc,
                        });
                        self.emit(Op::Bin2SF(j), loc);
                        Ok(Shape::Other)
                    }
                    (Shape::Fused(fi, fc), Shape::Const(ci)) => {
                        // Second-level fusion, constant on the right:
                        // `(b ⊕ c) ⊕ k` in one dispatch. The last two
                        // ops are the inner pair and the constant.
                        let inner_loc = self.code.locs[self.code.locs.len() - 2];
                        self.pop_ops(2);
                        let j = self.code.fused2.len() as u32;
                        self.code.fused2.push(Fused2 {
                            op: *op,
                            a_slot: ci,
                            a_ty: IntTy::Int,
                            a_loc: loc,
                            inner: fi,
                            inner_loc,
                            inner_const: fc,
                        });
                        self.emit(Op::Bin2FC(j), loc);
                        Ok(Shape::Other)
                    }
                    (_, Shape::Const(ci)) => {
                        self.pop_ops(1);
                        self.emit(Op::BinaryC(*op, ci), loc);
                        Ok(Shape::Other)
                    }
                    (_, Shape::Fused(fi, fc)) => {
                        // Left operand stays on the stack; the fused
                        // right pair folds into this op.
                        let inner_loc = *self.code.locs.last().expect("inner op");
                        self.pop_ops(1);
                        let j = self.code.fused2.len() as u32;
                        self.code.fused2.push(Fused2 {
                            op: *op,
                            a_slot: 0,
                            a_ty: IntTy::Int,
                            a_loc: loc,
                            inner: fi,
                            inner_loc,
                            inner_const: fc,
                        });
                        self.emit(Op::Bin2VF(j), loc);
                        Ok(Shape::Other)
                    }
                    (_, Shape::SlotFast(b_slot, b_ty, b_loc)) => {
                        // Left operand stays on the stack; the right
                        // slot load folds in (its descriptor reuses the
                        // `FusedBin` left-operand fields).
                        self.pop_ops(1);
                        let i = self.code.fused.len() as u32;
                        self.code.fused.push(FusedBin {
                            a_slot: b_slot,
                            a_ty: b_ty,
                            a_loc: b_loc,
                            b_slot: 0,
                            b_ty,
                            b_loc,
                            op: *op,
                        });
                        self.emit(Op::BinVS(i), loc);
                        Ok(Shape::Other)
                    }
                    _ => {
                        self.emit(Op::Binary(*op), loc);
                        Ok(Shape::Other)
                    }
                }
            }
            ExprKind::LogicalAnd(l, r) => {
                self.expr(*l)?;
                let at = self.emit(Op::AndFalse(0), loc);
                self.expr(*r)?;
                self.emit(Op::ToBool01, loc);
                let end = self.pc();
                self.patch_branch(at, end);
                Ok(Shape::Other)
            }
            ExprKind::LogicalOr(l, r) => {
                self.expr(*l)?;
                let at = self.emit(Op::OrTrue(0), loc);
                self.expr(*r)?;
                self.emit(Op::ToBool01, loc);
                let end = self.pc();
                self.patch_branch(at, end);
                Ok(Shape::Other)
            }
            ExprKind::Conditional(c, t, f) => {
                self.expr(*c)?;
                let at = self.emit(Op::BranchFalse(0), loc);
                self.expr(*t)?;
                let jmp = self.emit(Op::Jump(0), loc);
                let else_pc = self.pc();
                self.patch_branch(at, else_pc);
                self.expr(*f)?;
                let end = self.pc();
                match &mut self.code.ops[jmp] {
                    Op::Jump(t) => *t = end,
                    other => unreachable!("patching a non-jump op {other:?}"),
                }
                // §6.5.15:5 common-type conversion of whichever branch ran.
                self.emit(Op::CondCommon(e), loc);
                Ok(Shape::Other)
            }
            ExprKind::Comma(l, r) => {
                let sl = self.expr(*l)?;
                if matches!(sl, Shape::Const(_)) {
                    // A constant left operand has no effect and no
                    // diagnostics; dropping its op keeps the single-op
                    // invariant for `r`'s shape.
                    self.pop_ops(1);
                    self.expr(*r)
                } else {
                    self.emit(Op::Pop, loc);
                    self.expr(*r)?;
                    Ok(Shape::Other)
                }
            }
            ExprKind::Assign(place, op, rhs) => self.assign_value(*place, *op, *rhs, loc),
            ExprKind::PreIncDec(place, delta) => self.incdec_value(*place, *delta, false, loc),
            ExprKind::PostIncDec(place, delta) => self.incdec_value(*place, *delta, true, loc),
            ExprKind::Deref(inner) => {
                self.expr(*inner)?;
                self.emit(Op::AsPtr, loc);
                self.emit(Op::ReadThru, loc);
                Ok(Shape::Other)
            }
            ExprKind::AddrOf(inner) => self.addr_of(*inner, loc),
            ExprKind::Index(b, i) => {
                self.index_base(*b, loc)?;
                self.expr(*i)?;
                self.emit(Op::IndexRead, loc);
                Ok(Shape::Other)
            }
            ExprKind::Call(name, args) => self.call_value(*name, args, loc),
            ExprKind::SizeofType(ty) => match consteval::size_of_ty(ty) {
                Some(n) => {
                    let i = self.pool(CInt::new(n as i128, SIZE_T));
                    self.emit(Op::Const(i), loc);
                    Ok(Shape::Const(i))
                }
                None => {
                    let m = self.fail_msg("`sizeof` applied to the incomplete type `void`".into());
                    self.emit(Op::FailUnsupported(m), loc);
                    Ok(Shape::Other)
                }
            },
            // Not foldable: the operand's sizeof type can depend on
            // object state (unbound slots stop), so it stays a runtime op.
            ExprKind::SizeofExpr(inner) => {
                self.emit(Op::SizeofExpr(*inner), loc);
                Ok(Shape::Other)
            }
            ExprKind::Cast(ty, inner) => match ty {
                Ty::Void => {
                    self.expr(*inner)?;
                    self.emit(Op::CastVoid, loc);
                    Ok(Shape::Other)
                }
                Ty::Int(t) => {
                    let sh = self.expr(*inner)?;
                    // Identity-conversion elision: when the operand's
                    // value already has exactly type `t`, `convert_int`
                    // is the identity and never notes — emit nothing.
                    if self.static_ty(*inner) == Some(StTy::Int(*t)) {
                        return Ok(sh);
                    }
                    if let Shape::Const(i) = sh {
                        let (c, impl_defined) = self.code.pool[i as usize].convert(*t);
                        if !impl_defined {
                            self.pop_ops(1);
                            let j = self.pool(c);
                            self.emit(Op::Const(j), loc);
                            return Ok(Shape::Const(j));
                        }
                        // An implementation-defined conversion emits a
                        // note at run time; keep the runtime op.
                    }
                    self.emit(Op::CastInt(*t), loc);
                    Ok(Shape::Other)
                }
                Ty::Ptr(p) => {
                    self.expr(*inner)?;
                    self.emit(Op::CastPtr(pointee_of_ty(p)), loc);
                    Ok(Shape::Other)
                }
            },
        }
    }

    /// `&inner` — mirrors `eval_place` + the array-decay rejection.
    fn addr_of(&mut self, inner: ExprId, loc: SourceLoc) -> CResult {
        let in_loc = self.expr_loc(inner);
        match &self.unit.expr(inner).kind {
            ExprKind::Slot(slot, _) => match self.slot_kind(slot.0) {
                SlotKind::Scalar(_) | SlotKind::PtrObj => {
                    self.emit(Op::SlotPlace(slot.0), in_loc);
                    Ok(Shape::Other)
                }
                SlotKind::Array => {
                    // The unbound check fires first (as in `eval_place`),
                    // then the §6.3.2.1:3 no-decay rejection at this loc.
                    self.emit(Op::BindCheck(slot.0), in_loc);
                    let msg = format!(
                        "`&{}` has array-pointer type, which is outside the subset",
                        self.unit.interner.resolve(self.slot_syms[slot.0 as usize])
                    );
                    let m = self.fail_msg(msg);
                    self.emit(Op::FailUnsupported(m), loc);
                    Ok(Shape::Other)
                }
                SlotKind::Unknown => Err(Bail),
            },
            ExprKind::Deref(x) => {
                self.expr(*x)?;
                self.emit(Op::AsPtr, in_loc);
                Ok(Shape::Other)
            }
            ExprKind::Index(b, i) => {
                self.index_base(*b, in_loc)?;
                self.expr(*i)?;
                self.emit(Op::IndexPlace, in_loc);
                Ok(Shape::Other)
            }
            ExprKind::Ident(sym) => {
                let msg = format!(
                    "use of undeclared identifier `{}`",
                    self.unit.interner.resolve(*sym)
                );
                let m = self.fail_msg(msg);
                self.emit(Op::FailUnsupported(m), in_loc);
                Ok(Shape::Other)
            }
            _ => {
                let m = self.fail_msg("expression is not an lvalue".into());
                self.emit(Op::FailUnsupported(m), in_loc);
                Ok(Shape::Other)
            }
        }
    }
}

// ----- value-position updates and calls -----

impl<'a> FnCompiler<'a> {
    /// `place = rhs` / `place op= rhs` in value position: same lowering
    /// as the statement form, but the store op pushes the stored value.
    fn assign_value(
        &mut self,
        place: ExprId,
        op: Option<BinOp>,
        rhs: ExprId,
        loc: SourceLoc,
    ) -> CResult {
        match &self.unit.expr(place).kind {
            ExprKind::Slot(slot, _) => {
                let place_loc = self.expr_loc(place);
                match self.slot_kind(slot.0) {
                    SlotKind::Scalar(t) => {
                        self.emit(Op::BindCheck(slot.0), place_loc);
                        self.expr(rhs)?;
                        let fast = match op {
                            Some(_) if t == IntTy::Bool => None,
                            _ => Some(t),
                        };
                        let i = self.code.stores.len() as u32;
                        self.code.stores.push(FusedStore {
                            slot: slot.0,
                            fast,
                            op,
                        });
                        self.emit(Op::AssignSlot(i), loc);
                        Ok(Shape::Other)
                    }
                    SlotKind::PtrObj => {
                        self.emit(Op::BindCheck(slot.0), place_loc);
                        self.expr(rhs)?;
                        let i = self.code.stores.len() as u32;
                        self.code.stores.push(FusedStore {
                            slot: slot.0,
                            fast: None,
                            op,
                        });
                        self.emit(Op::AssignSlot(i), loc);
                        Ok(Shape::Other)
                    }
                    SlotKind::Array => {
                        self.emit(Op::BindCheck(slot.0), place_loc);
                        let msg = format!(
                            "array `{}` is not a modifiable lvalue",
                            self.unit.interner.resolve(self.slot_syms[slot.0 as usize])
                        );
                        let m = self.fail_msg(msg);
                        self.emit(Op::FailUnsupported(m), loc);
                        Ok(Shape::Other)
                    }
                    SlotKind::Unknown => Err(Bail),
                }
            }
            ExprKind::Deref(x) => {
                let deref_loc = self.expr_loc(place);
                self.expr(*x)?;
                self.emit(Op::AsPtr, deref_loc);
                self.expr(rhs)?;
                self.emit(self.store_op(op), loc);
                Ok(Shape::Other)
            }
            ExprKind::Index(b, i) => {
                let index_loc = self.expr_loc(place);
                self.index_base(*b, index_loc)?;
                self.expr(*i)?;
                self.emit(Op::IndexPlace, index_loc);
                self.expr(rhs)?;
                self.emit(self.store_op(op), loc);
                Ok(Shape::Other)
            }
            ExprKind::Ident(_) => Err(Bail),
            _ => {
                let place_loc = self.expr_loc(place);
                let m = self.fail_msg("expression is not an lvalue".into());
                self.emit(Op::FailUnsupported(m), place_loc);
                Ok(Shape::Other)
            }
        }
    }

    /// `++place`/`place++` in value position.
    fn incdec_value(
        &mut self,
        place: ExprId,
        delta: i64,
        is_post: bool,
        loc: SourceLoc,
    ) -> CResult {
        let place_loc = self.expr_loc(place);
        match &self.unit.expr(place).kind {
            ExprKind::Slot(slot, _) => match self.slot_kind(slot.0) {
                SlotKind::Scalar(_) | SlotKind::PtrObj => {
                    self.emit(Op::SlotPlace(slot.0), place_loc);
                    self.emit(Op::IncDec(delta, is_post), loc);
                    Ok(Shape::Other)
                }
                SlotKind::Array => {
                    self.emit(Op::BindCheck(slot.0), place_loc);
                    let msg = format!(
                        "array `{}` is not a modifiable lvalue",
                        self.unit.interner.resolve(self.slot_syms[slot.0 as usize])
                    );
                    let m = self.fail_msg(msg);
                    self.emit(Op::FailUnsupported(m), loc);
                    Ok(Shape::Other)
                }
                SlotKind::Unknown => Err(Bail),
            },
            ExprKind::Deref(x) => {
                self.expr(*x)?;
                self.emit(Op::AsPtr, place_loc);
                self.emit(Op::IncDec(delta, is_post), loc);
                Ok(Shape::Other)
            }
            ExprKind::Index(b, i) => {
                self.index_base(*b, place_loc)?;
                self.expr(*i)?;
                self.emit(Op::IndexPlace, place_loc);
                self.emit(Op::IncDec(delta, is_post), loc);
                Ok(Shape::Other)
            }
            ExprKind::Ident(_) => Err(Bail),
            _ => {
                let m = self.fail_msg("expression is not an lvalue".into());
                self.emit(Op::FailUnsupported(m), place_loc);
                Ok(Shape::Other)
            }
        }
    }

    /// A call: per-argument push ops, then either a direct `Call` (arity
    /// pre-checked at compile time into a `FailUb` when it can never
    /// match) or the non-function report. `malloc`/`free` keep their
    /// allocator semantics on the tree path.
    fn call_value(&mut self, name: Symbol, args: &[ExprId], loc: SourceLoc) -> CResult {
        let target = self
            .unit
            .func_by_symbol
            .get(name.index())
            .copied()
            .flatten();
        let Some(f_idx) = target else {
            if name == kw::MALLOC || name == kw::FREE {
                for &a in args {
                    self.expr(a)?;
                    let al = self.expr_loc(a);
                    self.emit(Op::ArgPush, al);
                }
                if args.len() != 1 {
                    // Arity mismatch diagnoses after the arguments ran,
                    // exactly like the tree path.
                    let err = UbError::new(UbKind::CallWrongArity)
                        .at(loc)
                        .in_function(self.unit.interner.resolve(self.func.name))
                        .with_detail(format!(
                            "`{}` takes 1 argument, called with {}",
                            self.unit.interner.resolve(name),
                            args.len()
                        ));
                    let i = self.code.ubs.len() as u32;
                    self.code.ubs.push(err);
                    self.emit(Op::FailUb(i), loc);
                } else if name == kw::MALLOC {
                    self.emit(Op::Malloc, loc);
                } else {
                    self.emit(Op::Free, loc);
                }
                return Ok(Shape::Other);
            }
            for &a in args {
                self.expr(a)?;
                let al = self.expr_loc(a);
                self.emit(Op::ArgPush, al);
            }
            let err = UbError::new(UbKind::CallNonFunction)
                .at(loc)
                .in_function(self.unit.interner.resolve(self.func.name))
                .with_detail(format!(
                    "`{}` does not designate a function in this translation unit",
                    self.unit.interner.resolve(name)
                ));
            let i = self.code.ubs.len() as u32;
            self.code.ubs.push(err);
            self.emit(Op::FailUb(i), loc);
            return Ok(Shape::Other);
        };
        for &a in args {
            self.expr(a)?;
            let al = self.expr_loc(a);
            self.emit(Op::ArgPush, al);
        }
        let callee = &self.unit.functions[f_idx as usize];
        if callee.params.len() != args.len() {
            let err = UbError::new(UbKind::CallWrongArity)
                .at(loc)
                .in_function(self.unit.interner.resolve(self.func.name))
                .with_detail(format!(
                    "`{}` takes {} argument(s), called with {}",
                    self.unit.interner.resolve(name),
                    callee.params.len(),
                    args.len()
                ));
            let i = self.code.ubs.len() as u32;
            self.code.ubs.push(err);
            self.emit(Op::FailUb(i), loc);
        } else {
            self.emit(Op::Call(f_idx, args.len() as u32), loc);
        }
        Ok(Shape::Other)
    }
}
