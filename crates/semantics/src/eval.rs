//! The evaluation engine: runs the AST and detects undefined behavior.
//!
//! The interpreter executes a translation unit starting from `main`,
//! maintaining exactly the state the paper's negative semantics needs to
//! get *stuck* on undefined programs:
//!
//! - **sequencing footprints** (§6.5:2) — every expression evaluation
//!   returns, along with its value, the set of scalar reads and writes it
//!   performed; at each unsequenced combination point (binary operands,
//!   call arguments) conflicting footprints raise
//!   [`UbKind::UnsequencedSideEffect`];
//! - **object lifetimes** (§6.2.4) — block exit and `free` end lifetimes,
//!   so later uses of dangling pointers raise
//!   [`UbKind::DeadObjectAccess`], and bad `free`s raise the
//!   [`UbKind::FreeNonHeapPointer`] family;
//! - **initialization state** (§6.2.4:6) — cells start indeterminate and
//!   reads of them raise [`UbKind::ReadIndeterminate`];
//! - **value ranges** (§6.5:5) — `int` is 32-bit and every arithmetic
//!   result is range-checked, raising [`UbKind::SignedOverflow`],
//!   [`UbKind::DivisionByZero`], the shift family, and friends;
//! - **bounds** (§6.5.6:8) — pointers carry their provenance (object and
//!   offset), so out-of-bounds arithmetic and accesses are caught exactly.
//!
//! Memory is modeled in units of `int`-sized cells: `sizeof(int) == 1` in
//! this subset, and `malloc(n)` allocates `n` cells. Effects inside a
//! called function are treated as indeterminately sequenced with respect
//! to the caller's expression (C11 §6.5.2.2:10), so they are not added to
//! the caller's footprint.

use crate::ast::{BinOp, Decl, Expr, ExprKind, Function, Stmt, TranslationUnit, UnaryOp};
use cundef_ub::{SourceLoc, UbError, UbKind};

/// Resource bounds for one execution, so that the checker terminates on
/// looping inputs without claiming anything about them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of evaluation steps (statements + expression nodes).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_steps: 2_000_000,
            max_call_depth: 256,
        }
    }
}

/// A pointer value: an object identity plus a cell offset.
///
/// Pointers carry provenance, never raw addresses, which is what lets the
/// engine decide §6.5.6:8 (bounds), §6.5.6:9 (same-object subtraction),
/// and §6.2.4 (lifetime) questions exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pointer {
    /// Index of the pointed-to object in the interpreter's object table.
    pub obj: usize,
    /// Cell offset within (or one past the end of) the object.
    pub off: i64,
}

/// A runtime value in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A 32-bit `int` value (stored widened for overflow checking).
    Int(i64),
    /// A pointer with provenance.
    Ptr(Pointer),
    /// A value that does not exist: the result of a function that fell
    /// off its end (§6.9.1:12) or of a `void` function. Consuming it
    /// reports the carried [`UbKind`].
    Missing(UbKind),
}

/// The result of one checked execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program ran to completion and returned this exit value.
    Completed(i64),
    /// Execution ran into undefined behavior.
    Undefined(UbError),
    /// The checker gave up (resource limit or construct outside the
    /// modeled semantics). This says nothing about the program.
    Unsupported {
        /// What the engine could not handle.
        message: String,
        /// Where it stopped.
        loc: SourceLoc,
    },
}

impl Outcome {
    /// The undefined-behavior report, if this outcome is one.
    pub fn ub(&self) -> Option<&UbError> {
        match self {
            Outcome::Undefined(e) => Some(e),
            _ => None,
        }
    }

    /// The exit value, if the program completed.
    pub fn exit_code(&self) -> Option<i64> {
        match self {
            Outcome::Completed(v) => Some(*v),
            _ => None,
        }
    }
}

const INT_MIN: i64 = i32::MIN as i64;
const INT_MAX: i64 = i32::MAX as i64;
const INT_WIDTH: i64 = 32;

/// Why evaluation stopped early (internal control flow).
enum Stop {
    Ub(UbError),
    Unsupported(String, SourceLoc),
}

type EResult<T> = Result<T, Stop>;

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    /// A `return`, carrying the value and the statement's position so
    /// reports about the returned value can point at the `return` itself.
    Return(Value, SourceLoc),
}

/// One scalar access performed during an expression evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Access {
    obj: usize,
    off: i64,
    write: bool,
}

/// The set of scalar-object accesses an evaluation performed, used to
/// decide §6.5:2 at unsequenced combination points.
#[derive(Debug, Clone, Default)]
struct Footprint {
    accesses: Vec<Access>,
}

impl Footprint {
    fn push_read(&mut self, obj: usize, off: i64) {
        self.accesses.push(Access {
            obj,
            off,
            write: false,
        });
    }

    fn push_write(&mut self, obj: usize, off: i64) {
        self.accesses.push(Access {
            obj,
            off,
            write: true,
        });
    }

    /// Merge a footprint that is *sequenced* after this one (no check).
    fn then(&mut self, later: Footprint) {
        self.accesses.extend(later.accesses);
    }

    /// Find a conflicting pair between two unsequenced footprints: a
    /// write on one side with any access of the same scalar on the other.
    fn conflict_with(&self, other: &Footprint) -> Option<(usize, i64)> {
        for a in &self.accesses {
            for b in &other.accesses {
                if a.obj == b.obj && a.off == b.off && (a.write || b.write) {
                    return Some((a.obj, a.off));
                }
            }
        }
        None
    }

    /// A location written on either side, matching `(obj, off)`.
    fn writes(&self, obj: usize, off: i64) -> bool {
        self.accesses
            .iter()
            .any(|a| a.write && a.obj == obj && a.off == off)
    }
}

/// One memory object: a run of `int`-sized cells with a lifetime.
struct Object {
    cells: Vec<Option<Value>>,
    alive: bool,
    heap: bool,
    /// Whether this is an array object (its designator decays, §6.3.2.1:3).
    is_array: bool,
    /// Display name for diagnostics (`x`, `heap object #3`, …).
    name: String,
}

struct Frame {
    func: String,
    /// Whether the executing function returns `void`, cached at call time
    /// so `return;` can classify itself without rescanning the unit.
    returns_void: bool,
    /// Innermost scope last; each scope maps names to object indices.
    scopes: Vec<Vec<(String, usize)>>,
    /// Every object created in this frame, for lifetime termination.
    created: Vec<usize>,
}

/// The interpreter for one translation unit.
///
/// # Examples
///
/// ```
/// use cundef_semantics::{parser, Interp, Limits};
///
/// let unit = parser::parse("int main(void) { return 2 + 2; }").unwrap();
/// let outcome = Interp::new(&unit, Limits::default()).run_main();
/// assert_eq!(outcome.exit_code(), Some(4));
/// ```
pub struct Interp<'a> {
    unit: &'a TranslationUnit,
    limits: Limits,
    objects: Vec<Object>,
    frames: Vec<Frame>,
    steps: u64,
}

impl<'a> Interp<'a> {
    /// Create an interpreter for `unit` with the given resource limits.
    pub fn new(unit: &'a TranslationUnit, limits: Limits) -> Interp<'a> {
        Interp {
            unit,
            limits,
            objects: Vec::new(),
            frames: Vec::new(),
            steps: 0,
        }
    }

    /// Execute the program from `main` and report what happened.
    pub fn run_main(mut self) -> Outcome {
        let Some(main) = self.unit.function("main") else {
            return Outcome::Unsupported {
                message: "translation unit defines no `main` function".into(),
                loc: SourceLoc::default(),
            };
        };
        if !main.params.is_empty() {
            return Outcome::Unsupported {
                message: "only `int main(void)` is supported as the entry point".into(),
                loc: main.loc,
            };
        }
        match self.call(main, Vec::new(), main.loc) {
            // An explicit `return;` leaves `main` without a value, and the
            // host environment uses that value as the termination status
            // (§5.1.2.2.3:1 covers only reaching the closing `}`).
            Ok((Value::Missing(UbKind::ReturnWithoutValue), loc)) => Outcome::Undefined(
                UbError::new(UbKind::ReturnWithoutValue)
                    .at(loc)
                    .in_function("main")
                    .with_detail(
                        "`return;` in `main`, whose value the host uses as the termination status",
                    ),
            ),
            // Reaching the `}` of `main` returns 0 (C11 §5.1.2.2.3:1).
            Ok((Value::Missing(_), _)) => Outcome::Completed(0),
            Ok((Value::Int(v), _)) => Outcome::Completed(v),
            // `main` returns `int`; a pointer coming back is an ill-typed
            // program outside the modeled semantics, not an exit code.
            Ok((Value::Ptr(_), loc)) => Outcome::Unsupported {
                message: "`main` returned a pointer, but is declared to return `int`".into(),
                loc,
            },
            Err(Stop::Ub(e)) => Outcome::Undefined(e),
            Err(Stop::Unsupported(message, loc)) => Outcome::Unsupported { message, loc },
        }
    }

    // ----- plumbing -----

    fn tick(&mut self, loc: SourceLoc) -> EResult<()> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(Stop::Unsupported(
                "evaluation step limit exceeded".into(),
                loc,
            ));
        }
        Ok(())
    }

    fn func_name(&self) -> String {
        self.frames
            .last()
            .map(|f| f.func.clone())
            .unwrap_or_default()
    }

    fn ub(&self, kind: UbKind, loc: SourceLoc, detail: impl Into<String>) -> Stop {
        Stop::Ub(
            UbError::new(kind)
                .at(loc)
                .in_function(self.func_name())
                .with_detail(detail.into()),
        )
    }

    fn object_name(&self, obj: usize) -> String {
        self.objects[obj].name.clone()
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        let frame = self.frames.last()?;
        frame.scopes.iter().rev().find_map(|scope| {
            scope
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, id)| *id)
        })
    }

    fn alloc(&mut self, name: String, cells: usize, heap: bool, is_array: bool) -> usize {
        let id = self.objects.len();
        self.objects.push(Object {
            cells: vec![None; cells],
            alive: true,
            heap,
            is_array,
            name,
        });
        if !heap {
            if let Some(frame) = self.frames.last_mut() {
                frame.created.push(id);
            }
        }
        id
    }

    // ----- checked memory access -----

    fn check_live(&self, p: Pointer, loc: SourceLoc) -> EResult<()> {
        if !self.objects[p.obj].alive {
            return Err(self.ub(
                UbKind::DeadObjectAccess,
                loc,
                format!(
                    "object `{}` is outside its lifetime",
                    self.object_name(p.obj)
                ),
            ));
        }
        Ok(())
    }

    fn read_cell(&mut self, p: Pointer, loc: SourceLoc, fp: &mut Footprint) -> EResult<Value> {
        self.check_live(p, loc)?;
        let len = self.objects[p.obj].cells.len() as i64;
        if p.off < 0 || p.off >= len {
            return Err(self.ub(
                UbKind::OutOfBoundsRead,
                loc,
                format!(
                    "read at offset {} of `{}` (size {})",
                    p.off,
                    self.object_name(p.obj),
                    len
                ),
            ));
        }
        match self.objects[p.obj].cells[p.off as usize] {
            Some(v) => {
                fp.push_read(p.obj, p.off);
                Ok(v)
            }
            None => Err(self.ub(
                UbKind::ReadIndeterminate,
                loc,
                format!("`{}` holds an indeterminate value", self.object_name(p.obj)),
            )),
        }
    }

    fn write_cell(
        &mut self,
        p: Pointer,
        v: Value,
        loc: SourceLoc,
        fp: &mut Footprint,
    ) -> EResult<()> {
        self.check_live(p, loc)?;
        let len = self.objects[p.obj].cells.len() as i64;
        if p.off < 0 || p.off >= len {
            return Err(self.ub(
                UbKind::OutOfBoundsWrite,
                loc,
                format!(
                    "write at offset {} of `{}` (size {})",
                    p.off,
                    self.object_name(p.obj),
                    len
                ),
            ));
        }
        self.objects[p.obj].cells[p.off as usize] = Some(v);
        fp.push_write(p.obj, p.off);
        Ok(())
    }

    // ----- sequencing -----

    fn combine_unsequenced(
        &self,
        mut a: Footprint,
        b: Footprint,
        loc: SourceLoc,
    ) -> EResult<Footprint> {
        if let Some((obj, _)) = a.conflict_with(&b) {
            return Err(self.ub(
                UbKind::UnsequencedSideEffect,
                loc,
                format!("unsequenced accesses to `{}`", self.object_name(obj)),
            ));
        }
        a.then(b);
        Ok(a)
    }

    // ----- values -----

    /// Consume a value: `Missing` poison reports its deferred kind here.
    fn use_value(&self, v: Value, loc: SourceLoc) -> EResult<Value> {
        match v {
            Value::Missing(kind) => Err(self.ub(kind, loc, "use of a value that does not exist")),
            v => Ok(v),
        }
    }

    fn as_int(&self, v: Value, loc: SourceLoc) -> EResult<i64> {
        match self.use_value(v, loc)? {
            Value::Int(n) => Ok(n),
            Value::Ptr(_) => Err(Stop::Unsupported(
                "expected an integer, found a pointer".into(),
                loc,
            )),
            Value::Missing(_) => unreachable!("use_value filters Missing"),
        }
    }

    fn truthy(&self, v: Value, loc: SourceLoc) -> EResult<bool> {
        match self.use_value(v, loc)? {
            Value::Int(n) => Ok(n != 0),
            Value::Ptr(p) => {
                // Using a dangling pointer value, even just for its truth
                // value, is UB (§6.2.4:2).
                self.check_live(p, loc)?;
                Ok(true)
            }
            Value::Missing(_) => unreachable!(),
        }
    }

    // ----- expression evaluation -----

    fn eval(&mut self, e: &Expr) -> EResult<(Value, Footprint)> {
        self.tick(e.loc)?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok((Value::Int(*v), Footprint::default())),
            ExprKind::Ident(name) => {
                let Some(obj) = self.lookup(name) else {
                    return Err(Stop::Unsupported(
                        format!("use of undeclared identifier `{name}`"),
                        e.loc,
                    ));
                };
                if self.objects[obj].is_array {
                    // Array designators decay to a pointer to the first
                    // element (§6.3.2.1:3); no cell is read.
                    return Ok((Value::Ptr(Pointer { obj, off: 0 }), Footprint::default()));
                }
                let mut fp = Footprint::default();
                let v = self.read_cell(Pointer { obj, off: 0 }, e.loc, &mut fp)?;
                Ok((v, fp))
            }
            ExprKind::Unary(op, inner) => {
                let (v, fp) = self.eval(inner)?;
                let v = self.use_value(v, e.loc)?;
                let out = match (op, v) {
                    (UnaryOp::Neg, Value::Int(n)) => {
                        let r = -n;
                        if !(INT_MIN..=INT_MAX).contains(&r) {
                            return Err(self.ub(
                                UbKind::SignedOverflow,
                                e.loc,
                                format!("-({n}) is not representable in int"),
                            ));
                        }
                        Value::Int(r)
                    }
                    (UnaryOp::Not, v) => {
                        let t = self.truthy(v, e.loc)?;
                        Value::Int(if t { 0 } else { 1 })
                    }
                    (UnaryOp::BitNot, Value::Int(n)) => Value::Int(!(n as i32) as i64),
                    (UnaryOp::Neg | UnaryOp::BitNot, Value::Ptr(_)) => {
                        return Err(Stop::Unsupported(
                            "arithmetic unary operator applied to a pointer".into(),
                            e.loc,
                        ))
                    }
                    (_, Value::Missing(_)) => unreachable!(),
                };
                Ok((out, fp))
            }
            ExprKind::Binary(op, l, r) => {
                let (lv, lfp) = self.eval(l)?;
                let (rv, rfp) = self.eval(r)?;
                let fp = self.combine_unsequenced(lfp, rfp, e.loc)?;
                let lv = self.use_value(lv, e.loc)?;
                let rv = self.use_value(rv, e.loc)?;
                let out = self.apply_binop(*op, lv, rv, e.loc)?;
                Ok((out, fp))
            }
            ExprKind::LogicalAnd(l, r) => {
                let (lv, mut fp) = self.eval(l)?;
                // Sequence point after the first operand (§6.5.13:4).
                if !self.truthy(lv, e.loc)? {
                    return Ok((Value::Int(0), fp));
                }
                let (rv, rfp) = self.eval(r)?;
                fp.then(rfp);
                let t = self.truthy(rv, e.loc)?;
                Ok((Value::Int(t as i64), fp))
            }
            ExprKind::LogicalOr(l, r) => {
                let (lv, mut fp) = self.eval(l)?;
                if self.truthy(lv, e.loc)? {
                    return Ok((Value::Int(1), fp));
                }
                let (rv, rfp) = self.eval(r)?;
                fp.then(rfp);
                let t = self.truthy(rv, e.loc)?;
                Ok((Value::Int(t as i64), fp))
            }
            ExprKind::Conditional(c, t, f) => {
                let (cv, mut fp) = self.eval(c)?;
                let branch = if self.truthy(cv, e.loc)? { t } else { f };
                let (v, bfp) = self.eval(branch)?;
                fp.then(bfp);
                Ok((v, fp))
            }
            ExprKind::Comma(l, r) => {
                let (_, mut fp) = self.eval(l)?;
                let (v, rfp) = self.eval(r)?;
                fp.then(rfp);
                Ok((v, fp))
            }
            ExprKind::Assign(place, op, rhs) => self.eval_assign(place, *op, rhs, e.loc),
            ExprKind::PreIncDec(place, delta) => {
                let (v, fp) = self.eval_incdec(place, *delta, e.loc)?;
                Ok((v.1, fp)) // prefix yields the new value
            }
            ExprKind::PostIncDec(place, delta) => {
                let (v, fp) = self.eval_incdec(place, *delta, e.loc)?;
                Ok((v.0, fp)) // postfix yields the old value
            }
            ExprKind::Deref(inner) => {
                let (p, mut fp) = self.eval_pointer(inner, e.loc)?;
                let v = self.read_cell(p, e.loc, &mut fp)?;
                Ok((v, fp))
            }
            ExprKind::AddrOf(inner) => {
                let (p, fp) = self.eval_place(inner)?;
                // `&a` on an array designator is the one place an array
                // does not decay (§6.3.2.1:3); its result would have
                // array-pointer type, which the subset cannot express.
                // Reject it rather than silently meaning `&a[0]` — that
                // reinterpretation is what lets `*&a = 5` or `(&a)[0]`
                // dodge the modifiable-lvalue rule.
                if matches!(inner.kind, ExprKind::Ident(_)) && self.objects[p.obj].is_array {
                    return Err(Stop::Unsupported(
                        format!(
                            "`&{}` has array-pointer type, which is outside the subset",
                            self.object_name(p.obj)
                        ),
                        e.loc,
                    ));
                }
                Ok((Value::Ptr(p), fp))
            }
            ExprKind::Index(base, idx) => {
                let (p, mut fp) = self.eval_index_place(base, idx, e.loc)?;
                let v = self.read_cell(p, e.loc, &mut fp)?;
                Ok((v, fp))
            }
            ExprKind::Call(name, args) => self.eval_call(name, args, e.loc),
        }
    }

    /// Evaluate an expression that must produce a usable pointer.
    fn eval_pointer(&mut self, e: &Expr, loc: SourceLoc) -> EResult<(Pointer, Footprint)> {
        let (v, fp) = self.eval(e)?;
        match self.use_value(v, loc)? {
            Value::Ptr(p) => Ok((p, fp)),
            Value::Int(0) => Err(self.ub(
                UbKind::NullDereference,
                loc,
                "dereference of a null pointer",
            )),
            Value::Int(n) => Err(self.ub(
                UbKind::NullDereference,
                loc,
                format!("dereference of invalid pointer value {n}"),
            )),
            Value::Missing(_) => unreachable!(),
        }
    }

    /// Evaluate an lvalue to the place it designates. No cell is accessed;
    /// accesses happen in `read_cell`/`write_cell`.
    fn eval_place(&mut self, e: &Expr) -> EResult<(Pointer, Footprint)> {
        self.tick(e.loc)?;
        match &e.kind {
            ExprKind::Ident(name) => {
                let Some(obj) = self.lookup(name) else {
                    return Err(Stop::Unsupported(
                        format!("use of undeclared identifier `{name}`"),
                        e.loc,
                    ));
                };
                Ok((Pointer { obj, off: 0 }, Footprint::default()))
            }
            ExprKind::Deref(inner) => self.eval_pointer(inner, e.loc),
            ExprKind::Index(base, idx) => self.eval_index_place(base, idx, e.loc),
            _ => Err(Stop::Unsupported(
                "expression is not an lvalue".into(),
                e.loc,
            )),
        }
    }

    fn eval_index_place(
        &mut self,
        base: &Expr,
        idx: &Expr,
        loc: SourceLoc,
    ) -> EResult<(Pointer, Footprint)> {
        let (bp, bfp) = self.eval_pointer(base, loc)?;
        let (iv, ifp) = self.eval(idx)?;
        let fp = self.combine_unsequenced(bfp, ifp, loc)?;
        let i = self.as_int(iv, loc)?;
        let p = self.pointer_add(bp, i, loc)?;
        Ok((p, fp))
    }

    /// `p + delta` with the §6.5.6:8 in-bounds-or-one-past rule.
    fn pointer_add(&mut self, p: Pointer, delta: i64, loc: SourceLoc) -> EResult<Pointer> {
        self.check_live(p, loc)?;
        let len = self.objects[p.obj].cells.len() as i64;
        let off = p.off + delta;
        if off < 0 || off > len {
            return Err(self.ub(
                UbKind::PointerArithmeticOutOfBounds,
                loc,
                format!(
                    "offset {} of `{}` (size {}, one-past-the-end allowed)",
                    off,
                    self.object_name(p.obj),
                    len
                ),
            ));
        }
        Ok(Pointer { obj: p.obj, off })
    }

    fn apply_binop(&mut self, op: BinOp, l: Value, r: Value, loc: SourceLoc) -> EResult<Value> {
        use BinOp::*;
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => self.int_binop(op, a, b, loc),
            // Pointer arithmetic and comparison.
            (Value::Ptr(p), Value::Int(n)) if op == Add => {
                Ok(Value::Ptr(self.pointer_add(p, n, loc)?))
            }
            (Value::Int(n), Value::Ptr(p)) if op == Add => {
                Ok(Value::Ptr(self.pointer_add(p, n, loc)?))
            }
            (Value::Ptr(p), Value::Int(n)) if op == Sub => {
                Ok(Value::Ptr(self.pointer_add(p, -n, loc)?))
            }
            (Value::Ptr(a), Value::Ptr(b)) if op == Sub => {
                self.check_live(a, loc)?;
                self.check_live(b, loc)?;
                if a.obj != b.obj {
                    return Err(self.ub(
                        UbKind::PointerSubtractionDifferentObjects,
                        loc,
                        format!(
                            "pointers into `{}` and `{}`",
                            self.object_name(a.obj),
                            self.object_name(b.obj)
                        ),
                    ));
                }
                Ok(Value::Int(a.off - b.off))
            }
            (Value::Ptr(a), Value::Ptr(b)) if matches!(op, Lt | Le | Gt | Ge) => {
                self.check_live(a, loc)?;
                self.check_live(b, loc)?;
                if a.obj != b.obj {
                    return Err(self.ub(
                        UbKind::PointerCompareDifferentObjects,
                        loc,
                        format!(
                            "pointers into `{}` and `{}`",
                            self.object_name(a.obj),
                            self.object_name(b.obj)
                        ),
                    ));
                }
                let t = match op {
                    Lt => a.off < b.off,
                    Le => a.off <= b.off,
                    Gt => a.off > b.off,
                    _ => a.off >= b.off,
                };
                Ok(Value::Int(t as i64))
            }
            (Value::Ptr(a), Value::Ptr(b)) if matches!(op, Eq | Ne) => {
                self.check_live(a, loc)?;
                self.check_live(b, loc)?;
                let same = a == b;
                Ok(Value::Int((if op == Eq { same } else { !same }) as i64))
            }
            (Value::Ptr(p), Value::Int(n)) | (Value::Int(n), Value::Ptr(p))
                if matches!(op, Eq | Ne) =>
            {
                self.check_live(p, loc)?;
                // A valid pointer never equals the null constant; comparing
                // with a nonzero integer is outside the subset's types.
                if n != 0 {
                    return Err(Stop::Unsupported(
                        "comparison of a pointer with a nonzero integer".into(),
                        loc,
                    ));
                }
                Ok(Value::Int((op == Ne) as i64))
            }
            _ => Err(Stop::Unsupported(
                "operator applied to incompatible operand types".into(),
                loc,
            )),
        }
    }

    fn int_binop(&self, op: BinOp, a: i64, b: i64, loc: SourceLoc) -> EResult<Value> {
        use BinOp::*;
        let wide = match op {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div | Rem => {
                if b == 0 {
                    let kind = if op == Div {
                        UbKind::DivisionByZero
                    } else {
                        UbKind::ModuloByZero
                    };
                    return Err(self.ub(kind, loc, format!("{a} {} 0", symbol(op))));
                }
                if a == INT_MIN && b == -1 {
                    return Err(self.ub(
                        UbKind::DivisionOverflow,
                        loc,
                        format!("{a} {} -1 is not representable", symbol(op)),
                    ));
                }
                if op == Div {
                    a / b
                } else {
                    a % b
                }
            }
            Shl | Shr => {
                if b < 0 {
                    return Err(self.ub(
                        UbKind::ShiftByNegative,
                        loc,
                        format!("shift amount {b} is negative"),
                    ));
                }
                if b >= INT_WIDTH {
                    return Err(self.ub(
                        UbKind::ShiftTooFar,
                        loc,
                        format!("shift amount {b} >= width {INT_WIDTH}"),
                    ));
                }
                if op == Shl {
                    if a < 0 {
                        return Err(self.ub(
                            UbKind::ShiftOfNegative,
                            loc,
                            format!("left shift of negative value {a}"),
                        ));
                    }
                    let r = a << b;
                    if r > INT_MAX {
                        return Err(self.ub(
                            UbKind::ShiftOverflow,
                            loc,
                            format!("{a} << {b} is not representable in int"),
                        ));
                    }
                    r
                } else {
                    // Right shift of a negative value is implementation-
                    // defined, not undefined (§6.5.7:5); model arithmetic
                    // shift like every mainstream implementation.
                    a >> b
                }
            }
            Lt => (a < b) as i64,
            Le => (a <= b) as i64,
            Gt => (a > b) as i64,
            Ge => (a >= b) as i64,
            Eq => (a == b) as i64,
            Ne => (a != b) as i64,
            BitAnd => ((a as i32) & (b as i32)) as i64,
            BitXor => ((a as i32) ^ (b as i32)) as i64,
            BitOr => ((a as i32) | (b as i32)) as i64,
        };
        if !(INT_MIN..=INT_MAX).contains(&wide) {
            return Err(self.ub(
                UbKind::SignedOverflow,
                loc,
                format!("{a} {} {b} is not representable in int", symbol(op)),
            ));
        }
        Ok(Value::Int(wide))
    }

    /// Whether `e` is an integer constant expression (§6.6:6) within the
    /// subset: built only from constants and arithmetic on them.
    fn is_constant_expr(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::IntLit(_) => true,
            ExprKind::Unary(_, a) => Self::is_constant_expr(a),
            ExprKind::Binary(_, a, b) | ExprKind::LogicalAnd(a, b) | ExprKind::LogicalOr(a, b) => {
                Self::is_constant_expr(a) && Self::is_constant_expr(b)
            }
            ExprKind::Conditional(c, t, f) => {
                Self::is_constant_expr(c) && Self::is_constant_expr(t) && Self::is_constant_expr(f)
            }
            _ => false,
        }
    }

    /// An array designator is not a modifiable lvalue (§6.3.2.1:1);
    /// `a = …` and `a++` on an array name are rejected rather than
    /// silently treated as element-0 stores. Spellings through `&a`
    /// (`*&a`, `(&a)[0]`) are already rejected when `&a` is evaluated.
    fn check_modifiable(&self, place: &Expr, p: Pointer, loc: SourceLoc) -> EResult<()> {
        if matches!(place.kind, ExprKind::Ident(_)) && self.objects[p.obj].is_array {
            return Err(Stop::Unsupported(
                format!(
                    "array `{}` is not a modifiable lvalue",
                    self.object_name(p.obj)
                ),
                loc,
            ));
        }
        Ok(())
    }

    fn eval_assign(
        &mut self,
        place: &Expr,
        op: Option<BinOp>,
        rhs: &Expr,
        loc: SourceLoc,
    ) -> EResult<(Value, Footprint)> {
        let (p, pfp) = self.eval_place(place)?;
        self.check_modifiable(place, p, loc)?;
        let (rv, rfp) = self.eval(rhs)?;
        // Value computations of the two operands are unsequenced with each
        // other (§6.5.16:3)…
        let mut fp = self.combine_unsequenced(pfp, rfp, loc)?;
        let rv = self.use_value(rv, loc)?;
        let stored = match op {
            None => rv,
            Some(op) => {
                // Compound assignment reads the place once; that read is a
                // value computation sequenced before the update.
                let old = self.read_cell(p, loc, &mut fp)?;
                let old = self.use_value(old, loc)?;
                self.apply_binop(op, old, rv, loc)?
            }
        };
        // …while the update's side effect is sequenced only after those
        // value computations: it still conflicts with any *other* write to
        // the same scalar in either operand (`x = x++`).
        self.check_update_conflict(&fp, p, loc, "assignment to")?;
        self.write_cell(p, stored, loc, &mut fp)?;
        Ok((stored, fp))
    }

    /// §6.5:2 — the update side effect of an assignment or `++`/`--` is
    /// unsequenced with the value computations around it, so it conflicts
    /// with any other write to the same scalar in the operand footprint
    /// (`x = x++`, `a[(a[0]=0)]++`).
    fn check_update_conflict(
        &self,
        fp: &Footprint,
        p: Pointer,
        loc: SourceLoc,
        action: &str,
    ) -> EResult<()> {
        if fp.writes(p.obj, p.off) {
            return Err(self.ub(
                UbKind::UnsequencedSideEffect,
                loc,
                format!(
                    "{action} `{}` unsequenced with another side effect on it",
                    self.object_name(p.obj)
                ),
            ));
        }
        Ok(())
    }

    /// Shared engine for `++`/`--`; returns ((old, new), footprint).
    fn eval_incdec(
        &mut self,
        place: &Expr,
        delta: i64,
        loc: SourceLoc,
    ) -> EResult<((Value, Value), Footprint)> {
        let (p, mut fp) = self.eval_place(place)?;
        self.check_modifiable(place, p, loc)?;
        let old = self.read_cell(p, loc, &mut fp)?;
        let old = self.use_value(old, loc)?;
        let new = match old {
            Value::Int(n) => {
                let r = n + delta;
                if !(INT_MIN..=INT_MAX).contains(&r) {
                    return Err(self.ub(
                        UbKind::SignedOverflow,
                        loc,
                        format!(
                            "{n} {} 1 is not representable in int",
                            if delta > 0 { "+" } else { "-" }
                        ),
                    ));
                }
                Value::Int(r)
            }
            Value::Ptr(ptr) => Value::Ptr(self.pointer_add(ptr, delta, loc)?),
            Value::Missing(_) => unreachable!(),
        };
        self.check_update_conflict(
            &fp,
            p,
            loc,
            if delta > 0 {
                "increment of"
            } else {
                "decrement of"
            },
        )?;
        self.write_cell(p, new, loc, &mut fp)?;
        Ok(((old, new), fp))
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        loc: SourceLoc,
    ) -> EResult<(Value, Footprint)> {
        // Argument evaluations are unsequenced with each other
        // (§6.5.2.2:10), so their footprints combine pairwise.
        let mut vals = Vec::with_capacity(args.len());
        let mut fp = Footprint::default();
        for a in args {
            let (v, afp) = self.eval(a)?;
            fp = self.combine_unsequenced(fp, afp, loc)?;
            vals.push(self.use_value(v, a.loc)?);
        }
        if let Some(func) = self.unit.function(name) {
            if func.params.len() != vals.len() {
                return Err(self.ub(
                    UbKind::CallWrongArity,
                    loc,
                    format!(
                        "`{}` takes {} argument(s), called with {}",
                        name,
                        func.params.len(),
                        vals.len()
                    ),
                ));
            }
            // The callee's effects are indeterminately sequenced with the
            // rest of the caller's expression, not unsequenced: they do
            // not join the caller's footprint.
            let (ret, _) = self.call(func, vals, loc)?;
            return Ok((ret, fp));
        }
        match name {
            "malloc" => {
                if vals.len() != 1 {
                    return Err(self.ub(
                        UbKind::CallWrongArity,
                        loc,
                        format!("`malloc` takes 1 argument, called with {}", vals.len()),
                    ));
                }
                let n = self.as_int(vals[0], loc)?;
                if n < 0 {
                    return Err(self.ub(
                        UbKind::InvalidLibraryArgument,
                        loc,
                        format!("malloc({n}) with a negative size"),
                    ));
                }
                let obj = self.alloc(String::new(), n as usize, true, true);
                self.objects[obj].name = format!("heap object #{obj}");
                Ok((Value::Ptr(Pointer { obj, off: 0 }), fp))
            }
            "free" => {
                if vals.len() != 1 {
                    return Err(self.ub(
                        UbKind::CallWrongArity,
                        loc,
                        format!("`free` takes 1 argument, called with {}", vals.len()),
                    ));
                }
                match vals[0] {
                    Value::Int(0) => Ok((Value::Missing(UbKind::VoidValueUsed), fp)), // free(NULL)
                    Value::Int(n) => Err(self.ub(
                        UbKind::FreeNonHeapPointer,
                        loc,
                        format!("free() of integer value {n}"),
                    )),
                    Value::Ptr(p) => {
                        let object = &self.objects[p.obj];
                        if !object.heap {
                            return Err(self.ub(
                                UbKind::FreeNonHeapPointer,
                                loc,
                                format!("free() of `{}`, which is not heap-allocated", object.name),
                            ));
                        }
                        if !object.alive {
                            return Err(self.ub(
                                UbKind::DoubleFree,
                                loc,
                                format!("`{}` was already freed", object.name),
                            ));
                        }
                        if p.off != 0 {
                            return Err(self.ub(
                                UbKind::FreeInteriorPointer,
                                loc,
                                format!("free() of `{}` at interior offset {}", object.name, p.off),
                            ));
                        }
                        self.objects[p.obj].alive = false;
                        Ok((Value::Missing(UbKind::VoidValueUsed), fp))
                    }
                    Value::Missing(_) => unreachable!(),
                }
            }
            _ => Err(self.ub(
                UbKind::CallNonFunction,
                loc,
                format!("`{name}` does not designate a function in this translation unit"),
            )),
        }
    }

    // ----- statements -----

    fn call(
        &mut self,
        func: &'a Function,
        args: Vec<Value>,
        loc: SourceLoc,
    ) -> EResult<(Value, SourceLoc)> {
        if self.frames.len() >= self.limits.max_call_depth {
            return Err(Stop::Unsupported("call depth limit exceeded".into(), loc));
        }
        self.frames.push(Frame {
            func: func.name.clone(),
            returns_void: func.returns_void,
            scopes: vec![Vec::new()],
            created: Vec::new(),
        });
        for (param, arg) in func.params.iter().zip(args) {
            let obj = self.alloc(param.name.clone(), 1, false, false);
            self.objects[obj].cells[0] = Some(arg);
            self.frames
                .last_mut()
                .expect("frame just pushed")
                .scopes
                .last_mut()
                .expect("scope just pushed")
                .push((param.name.clone(), obj));
        }
        let mut result = (
            Value::Missing(if func.returns_void {
                UbKind::VoidValueUsed
            } else {
                UbKind::MissingReturnValueUsed
            }),
            func.loc,
        );
        let mut stopped = None;
        match self.exec_block(&func.body) {
            Ok(Flow::Return(v, l)) => result = (v, l),
            Ok(_) => {}
            Err(stop) => stopped = Some(stop),
        }
        // Lifetimes of the frame's automatic objects end now (§6.2.4:2),
        // even when unwinding on an error, so diagnostics stay accurate.
        let frame = self.frames.pop().expect("frame pushed above");
        for obj in frame.created {
            self.objects[obj].alive = false;
        }
        match stopped {
            Some(stop) => Err(stop),
            None => Ok(result),
        }
    }

    fn exec_block(&mut self, body: &'a [Stmt]) -> EResult<Flow> {
        self.frames
            .last_mut()
            .expect("active frame")
            .scopes
            .push(Vec::new());
        let mut flow = Flow::Normal;
        let mut stopped = None;
        for s in body {
            match self.exec_stmt(s) {
                Ok(Flow::Normal) => {}
                Ok(other) => {
                    flow = other;
                    break;
                }
                Err(stop) => {
                    stopped = Some(stop);
                    break;
                }
            }
        }
        // Leaving the block ends the lifetime of everything declared in it
        // (§6.2.4:6): pointers that escaped the block are now dangling.
        let scope = self
            .frames
            .last_mut()
            .expect("active frame")
            .scopes
            .pop()
            .expect("scope");
        for (_, obj) in scope {
            self.objects[obj].alive = false;
        }
        match stopped {
            Some(stop) => Err(stop),
            None => Ok(flow),
        }
    }

    /// Source position of a statement, for step-limit and engine-failure
    /// reports.
    fn stmt_loc(s: &Stmt) -> SourceLoc {
        match s {
            Stmt::Decl(d) => d.loc,
            Stmt::Expr(e) | Stmt::If(e, _, _) | Stmt::While(e, _) => e.loc,
            Stmt::For(init, cond, step, body) => init
                .as_deref()
                .map(Self::stmt_loc)
                .or_else(|| cond.as_ref().map(|e| e.loc))
                .or_else(|| step.as_ref().map(|e| e.loc))
                .unwrap_or_else(|| Self::stmt_loc(body)),
            Stmt::Return(_, loc)
            | Stmt::Break(loc)
            | Stmt::Continue(loc)
            | Stmt::Block(_, loc)
            | Stmt::Empty(loc) => *loc,
        }
    }

    fn exec_stmt(&mut self, s: &'a Stmt) -> EResult<Flow> {
        // Statements count toward the step limit too, so that loops whose
        // iterations evaluate no expressions (`for (;;) ;`) still hit
        // `max_steps` instead of spinning forever.
        self.tick(Self::stmt_loc(s))?;
        match s {
            Stmt::Empty(_) => Ok(Flow::Normal),
            Stmt::Decl(d) => {
                self.exec_decl(d)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                // A full expression: its footprint dies at the sequence
                // point that ends the statement (§6.8:4).
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                let (v, _) = self.eval(cond)?;
                if self.truthy(v, cond.loc)? {
                    self.exec_stmt(then)
                } else if let Some(els) = els {
                    self.exec_stmt(els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(cond, body) => loop {
                let (v, _) = self.eval(cond)?;
                if !self.truthy(v, cond.loc)? {
                    return Ok(Flow::Normal);
                }
                match self.exec_stmt(body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return(v, l) => return Ok(Flow::Return(v, l)),
                    Flow::Normal | Flow::Continue => {}
                }
            },
            Stmt::For(init, cond, step, body) => {
                // The init declaration's scope is the whole loop.
                self.frames
                    .last_mut()
                    .expect("active frame")
                    .scopes
                    .push(Vec::new());
                let result = self.exec_for(init.as_deref(), cond.as_ref(), step.as_ref(), body);
                let scope = self
                    .frames
                    .last_mut()
                    .expect("active frame")
                    .scopes
                    .pop()
                    .expect("scope");
                for (_, obj) in scope {
                    self.objects[obj].alive = false;
                }
                result
            }
            Stmt::Return(e, loc) => {
                let v = match e {
                    Some(e) => {
                        let (v, _) = self.eval(e)?;
                        self.use_value(v, *loc)?
                    }
                    // An explicit `return;` in a value-returning function
                    // carries §6.9.1:12's explicit-return form (catalog
                    // entry 78), distinct from reaching the closing brace;
                    // in a `void` function its (nonexistent) value is a
                    // void expression's (§6.3.2.2:1).
                    None => {
                        let void = self.frames.last().is_some_and(|f| f.returns_void);
                        Value::Missing(if void {
                            UbKind::VoidValueUsed
                        } else {
                            UbKind::ReturnWithoutValue
                        })
                    }
                };
                Ok(Flow::Return(v, *loc))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(body, _) => self.exec_block(body),
        }
    }

    fn exec_for(
        &mut self,
        init: Option<&'a Stmt>,
        cond: Option<&'a Expr>,
        step: Option<&'a Expr>,
        body: &'a Stmt,
    ) -> EResult<Flow> {
        if let Some(init) = init {
            self.exec_stmt(init)?;
        }
        loop {
            if let Some(cond) = cond {
                let (v, _) = self.eval(cond)?;
                if !self.truthy(v, cond.loc)? {
                    return Ok(Flow::Normal);
                }
            }
            match self.exec_stmt(body)? {
                Flow::Break => return Ok(Flow::Normal),
                Flow::Return(v, l) => return Ok(Flow::Return(v, l)),
                Flow::Normal | Flow::Continue => {}
            }
            if let Some(step) = step {
                self.eval(step)?;
            }
        }
    }

    fn exec_decl(&mut self, d: &'a Decl) -> EResult<()> {
        let in_scope = self
            .frames
            .last()
            .expect("active frame")
            .scopes
            .last()
            .expect("scope")
            .iter()
            .any(|(n, _)| *n == d.name);
        if in_scope {
            return Err(Stop::Unsupported(
                format!("redeclaration of `{}` in the same scope", d.name),
                d.loc,
            ));
        }
        let cells = match &d.array_size {
            None => 1,
            Some(size) => {
                // A constant non-positive size is the *static* form of the
                // defect (§6.7.6.2:1); a computed one is the VLA form
                // (§6.7.6.2:5). `-1` or `1-2` are integer constant
                // expressions even though they are not literal tokens.
                let constant = Self::is_constant_expr(size);
                let (v, _) = self.eval(size)?;
                let n = self.as_int(v, size.loc)?;
                if n <= 0 {
                    let kind = if constant {
                        UbKind::ArraySizeNotPositive
                    } else {
                        UbKind::VlaSizeNotPositive
                    };
                    return Err(self.ub(
                        kind,
                        d.loc,
                        format!("array `{}` declared with size {n}", d.name),
                    ));
                }
                n as usize
            }
        };
        let obj = self.alloc(d.name.clone(), cells, false, d.array_size.is_some());
        // The declared identifier's scope begins at the end of its
        // declarator (§6.2.1:7) — *before* the initializer, so that
        // `int x = x;` reads the new, indeterminate x, not an outer one.
        self.frames
            .last_mut()
            .expect("active frame")
            .scopes
            .last_mut()
            .expect("scope")
            .push((d.name.clone(), obj));
        if let Some(init) = &d.init {
            let (v, _) = self.eval(init)?;
            let v = self.use_value(v, init.loc)?;
            self.objects[obj].cells[0] = Some(v);
        }
        if let Some(items) = &d.array_init {
            if items.len() > cells {
                return Err(Stop::Unsupported(
                    format!(
                        "excess initializers for `{}` (array size {}, {} initializers)",
                        d.name,
                        cells,
                        items.len()
                    ),
                    d.loc,
                ));
            }
            for (i, item) in items.iter().enumerate() {
                let (v, _) = self.eval(item)?;
                let v = self.use_value(v, item.loc)?;
                self.objects[obj].cells[i] = Some(v);
            }
            // Remaining elements are initialized to zero (§6.7.9:21).
            for i in items.len()..cells {
                self.objects[obj].cells[i] = Some(Value::Int(0));
            }
        }
        Ok(())
    }
}

fn symbol(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitXor => "^",
        BitOr => "|",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Outcome {
        let unit = parse(src).unwrap();
        Interp::new(&unit, Limits::default()).run_main()
    }

    fn ub_kind(src: &str) -> UbKind {
        match run(src) {
            Outcome::Undefined(e) => e.kind(),
            other => panic!("expected UB for {src:?}, got {other:?}"),
        }
    }

    #[test]
    fn defined_programs_complete() {
        assert_eq!(
            run("int main(void) { return 41 + 1; }").exit_code(),
            Some(42)
        );
        assert_eq!(
            run("int sq(int x) { return x * x; } int main(void) { return sq(7); }").exit_code(),
            Some(49)
        );
        assert_eq!(
            run("int main(void) { int s = 0; for (int i = 1; i <= 4; i++) s += i; return s; }")
                .exit_code(),
            Some(10)
        );
    }

    #[test]
    fn falling_off_main_returns_zero() {
        assert_eq!(run("int main(void) { 1 + 1; }").exit_code(), Some(0));
    }

    #[test]
    fn unsequenced_writes() {
        assert_eq!(
            ub_kind("int main(void) { int x = 0; x = x++ + 1; return x; }"),
            UbKind::UnsequencedSideEffect
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 0; return x + (x = 1); }"),
            UbKind::UnsequencedSideEffect
        );
        assert_eq!(
            ub_kind("int main(void) { int i = 0; int a[3] = {0, 0, 0}; a[i++] = i; return 0; }"),
            UbKind::UnsequencedSideEffect
        );
    }

    #[test]
    fn sequenced_siblings_are_fine() {
        assert_eq!(
            run("int main(void) { int x = 1; x = x + 1; return x; }").exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int x = 1; x += x; return x; }").exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int x = 0; return (x = 1, x + 1); }").exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int x = 0; return (x = 1) && (x = 2); }").exit_code(),
            Some(1)
        );
    }

    #[test]
    fn arithmetic_family() {
        assert_eq!(
            ub_kind("int main(void) { return 1 / 0; }"),
            UbKind::DivisionByZero
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 % 0; }"),
            UbKind::ModuloByZero
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 2147483647; return x + 1; }"),
            UbKind::SignedOverflow
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 0 - 2147483647 - 1; return x / -1; }"),
            UbKind::DivisionOverflow
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << 32; }"),
            UbKind::ShiftTooFar
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << -1; }"),
            UbKind::ShiftByNegative
        );
        assert_eq!(
            ub_kind("int main(void) { return -1 << 1; }"),
            UbKind::ShiftOfNegative
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << 31; }"),
            UbKind::ShiftOverflow
        );
    }

    #[test]
    fn memory_family() {
        assert_eq!(
            ub_kind("int main(void) { int a[3] = {1, 2, 3}; return a[3]; }"),
            UbKind::OutOfBoundsRead
        );
        assert_eq!(
            ub_kind("int main(void) { int a[2]; a[5] = 1; return 0; }"),
            UbKind::PointerArithmeticOutOfBounds
        );
        assert_eq!(
            ub_kind("int main(void) { int x; return x; }"),
            UbKind::ReadIndeterminate
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = 0; return *p; }"),
            UbKind::NullDereference
        );
    }

    #[test]
    fn lifetime_family() {
        assert_eq!(
            ub_kind(
                "int *escape(void) { int local = 5; return &local; }\n\
                 int main(void) { int *p = escape(); return *p; }"
            ),
            UbKind::DeadObjectAccess
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(2); free(p); return *p; }"),
            UbKind::DeadObjectAccess
        );
    }

    #[test]
    fn allocation_family() {
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(1); free(p); free(p); return 0; }"),
            UbKind::DoubleFree
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 0; free(&x); return 0; }"),
            UbKind::FreeNonHeapPointer
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(2); free(p + 1); return 0; }"),
            UbKind::FreeInteriorPointer
        );
        assert_eq!(
            run(
                "int main(void) { int *p = malloc(2); p[0] = 7; int v = p[0]; free(p); return v; }"
            )
            .exit_code(),
            Some(7)
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(2); return p[0]; }"),
            UbKind::ReadIndeterminate
        );
    }

    #[test]
    fn call_family() {
        assert_eq!(
            ub_kind("int f(int a) { return a; } int main(void) { return f(1, 2); }"),
            UbKind::CallWrongArity
        );
        assert_eq!(
            ub_kind("int f(void) { return 0; } int main(void) { int x = g(); return x; }"),
            UbKind::CallNonFunction
        );
        assert_eq!(
            ub_kind("int f(int a) { if (a) return 1; } int main(void) { return f(0) + 1; }"),
            UbKind::MissingReturnValueUsed
        );
    }

    #[test]
    fn vla_family() {
        assert_eq!(
            ub_kind("int main(void) { int n = 0; int a[n]; return 0; }"),
            UbKind::VlaSizeNotPositive
        );
        assert_eq!(
            ub_kind("int main(void) { int a[0]; return 0; }"),
            UbKind::ArraySizeNotPositive
        );
    }

    #[test]
    fn pointer_relations() {
        assert_eq!(
            ub_kind("int main(void) { int a; int b; return &a < &b; }"),
            UbKind::PointerCompareDifferentObjects
        );
        assert_eq!(
            ub_kind("int main(void) { int a; int b; return &a - &b; }"),
            UbKind::PointerSubtractionDifferentObjects
        );
        assert_eq!(
            run("int main(void) { int a[4]; int *p = &a[1]; int *q = &a[3]; return q - p; }")
                .exit_code(),
            Some(2)
        );
    }

    #[test]
    fn loops_hit_the_step_limit_not_the_stack() {
        // Including loops whose iterations evaluate no expressions at all:
        // every statement and every `for` iteration must tick.
        for src in [
            "int main(void) { while (1) { } return 0; }",
            "int main(void) { for (;;) { } return 0; }",
            "int main(void) { for (;;) ; return 0; }",
            "int main(void) { for (;;) { ; } return 0; }",
        ] {
            let unit = parse(src).unwrap();
            let outcome = Interp::new(
                &unit,
                Limits {
                    max_steps: 10_000,
                    max_call_depth: 16,
                },
            )
            .run_main();
            assert!(
                matches!(outcome, Outcome::Unsupported { .. }),
                "{src}: {outcome:?}"
            );
        }
    }

    #[test]
    fn incdec_update_conflicts_with_writes_in_its_operand() {
        // The ++ side effect and the subscript's assignment are two
        // unsequenced side effects on a[0], exactly like `a[(a[0]=0)] = 7`.
        assert_eq!(
            ub_kind("int main(void) { int a[1]; a[(a[0]=0)]++; return a[0]; }"),
            UbKind::UnsequencedSideEffect
        );
    }

    #[test]
    fn negative_constant_array_size_is_the_static_form() {
        // Any integer constant expression selects the static form, not
        // just a literal token.
        assert_eq!(
            ub_kind("int main(void) { int a[-1]; return 0; }"),
            UbKind::ArraySizeNotPositive
        );
        assert_eq!(
            ub_kind("int main(void) { int a[1-2]; return 0; }"),
            UbKind::ArraySizeNotPositive
        );
        assert_eq!(
            ub_kind("int main(void) { int n = -1; int a[n]; return 0; }"),
            UbKind::VlaSizeNotPositive
        );
    }

    #[test]
    fn address_of_array_designator_is_outside_the_semantics() {
        // `&a` is the non-decay case of §6.3.2.1:3; its array-pointer type
        // is outside the subset, so every spelling of a store through it
        // (`*&a`, `(&a)[0]`, `*(&a + 0)`) is rejected, not reinterpreted
        // as an element-0 store.
        for src in [
            "int main(void) { int a[2]; *&a = 5; return 0; }",
            "int main(void) { int a[2]; (&a)[0] = 5; return 0; }",
            "int main(void) { int a[2]; *(&a + 0) = 5; return 0; }",
        ] {
            let unit = parse(src).unwrap();
            let outcome = Interp::new(&unit, Limits::default()).run_main();
            assert!(
                matches!(outcome, Outcome::Unsupported { .. }),
                "{src}: {outcome:?}"
            );
        }
        // But `*&x` on a scalar stays a plain store.
        assert_eq!(
            run("int main(void) { int x; *&x = 5; return x; }").exit_code(),
            Some(5)
        );
    }

    #[test]
    fn plain_return_in_main_is_not_a_silent_exit_zero() {
        let outcome = run("int main(void) {\n  int x = 0;\n  return;\n}");
        let err = outcome.ub().expect("should be UB").clone();
        assert_eq!(err.kind(), UbKind::ReturnWithoutValue);
        // The report points at the `return;`, not at main's header.
        assert_eq!(err.loc().map(|l| l.line), Some(3));
        // Reaching the `}` still gets the implicit 0 (§5.1.2.2.3:1).
        assert_eq!(run("int main(void) { int x = 1; }").exit_code(), Some(0));
    }

    #[test]
    fn main_returning_a_pointer_is_outside_the_semantics() {
        let outcome = run("int main(void) { int x = 0; return &x; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn size_one_arrays_decay_like_any_array() {
        assert_eq!(
            run("int main(void) { int a[1]; a[0] = 5; return a[0]; }").exit_code(),
            Some(5)
        );
        assert_eq!(
            run("int main(void) { int n = 1; int a[n]; a[0] = 3; return *a; }").exit_code(),
            Some(3)
        );
    }

    #[test]
    fn shadowing_declaration_is_in_scope_in_its_own_initializer() {
        // §6.2.1:7: the inner x's scope starts before its initializer, so
        // `int x = x;` reads the new, indeterminate x.
        assert_eq!(
            ub_kind("int main(void) { int x = 1; { int x = x; return x; } }"),
            UbKind::ReadIndeterminate
        );
        // But an array *size* is part of the declarator: it still sees the
        // outer binding.
        assert_eq!(
            run("int main(void) { int n = 2; { int n[n]; n[1] = 9; return n[1]; } }").exit_code(),
            Some(9)
        );
    }

    #[test]
    fn array_designators_are_not_modifiable_lvalues() {
        let unit = parse("int main(void) { int a[2]; a = 5; return 0; }").unwrap();
        let outcome = Interp::new(&unit, Limits::default()).run_main();
        assert!(
            matches!(outcome, Outcome::Unsupported { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn diagnostics_carry_function_and_line() {
        let outcome = run("int main(void) {\n  int x = 1;\n  return x / 0;\n}");
        let err = outcome.ub().expect("should be UB").clone();
        assert_eq!(err.function(), Some("main"));
        assert_eq!(err.loc().map(|l| l.line), Some(3));
    }
}
