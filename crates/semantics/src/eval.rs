//! The evaluation engine: runs the AST and detects undefined behavior.
//!
//! The interpreter executes a translation unit starting from `main`,
//! maintaining exactly the state the paper's negative semantics needs to
//! get *stuck* on undefined programs:
//!
//! - **sequencing footprints** (§6.5:2) — every expression evaluation
//!   records the scalar reads and writes it performs into a shared
//!   footprint arena; at each unsequenced combination point (binary
//!   operands, call arguments) the two operand ranges are checked for
//!   conflicts, raising [`UbKind::UnsequencedSideEffect`];
//! - **object lifetimes** (§6.2.4) — block exit and `free` end lifetimes,
//!   so later uses of dangling pointers raise
//!   [`UbKind::DeadObjectAccess`], and bad `free`s raise the
//!   [`UbKind::FreeNonHeapPointer`] family;
//! - **initialization state** (§6.2.4:6) — every byte starts
//!   indeterminate, and a read touching one raises
//!   [`UbKind::ReadIndeterminate`];
//! - **value ranges** (§6.5:5) — every scalar is a typed [`CInt`] of the
//!   LP64 lattice in [`crate::ctype`]; arithmetic promotes and converts
//!   per §6.3.1 and is range-checked *at the operands' converted type*,
//!   raising [`UbKind::SignedOverflow`], [`UbKind::DivisionByZero`], and
//!   the per-width shift family — while unsigned wraparound evaluates as
//!   the defined behavior it is, and implementation-defined narrowing
//!   conversions are recorded as notes ([`Interp::notes`]), never
//!   verdicts;
//! - **bounds** (§6.5.6:8) — pointers carry their provenance (object and
//!   offset), so out-of-bounds arithmetic and accesses are caught exactly.
//!
//! Memory is **byte-addressable**, as in the paper's model: an object is
//! a byte array with a per-byte initialization bitmap and a
//! declared/effective element type; a [`Pointer`] is `(object, byte
//! offset, pointee type)`. A typed load or store moves `sizeof(T)`
//! little-endian bytes, pointer arithmetic scales by the pointee size
//! (§6.5.6:8 at byte granularity, one past the end preserved), and
//! `malloc(n)` allocates `n` **bytes** — `sizeof` and the allocator
//! finally agree. This makes the representation-level defects decidable:
//! a pointer conversion that misaligns its pointee raises
//! [`UbKind::MisalignedAccess`] (§6.3.2.3:7), a non-character access
//! through an lvalue incompatible with the object's declared (or, for
//! heap memory, store-imprinted effective) type raises
//! [`UbKind::AccessWrongEffectiveType`] (§6.5:7) — while `char`/`unsigned
//! char` lvalues may sweep any object's representation — and a read
//! touching *any* indeterminate byte raises
//! [`UbKind::ReadIndeterminate`], byte-precise for partially-initialized
//! wide objects. Stored pointers keep their provenance: they live in
//! per-object pointer slots rather than as numeric bytes, so examining a
//! pointer's representation bytewise is an engine limit, not a guess.
//! Effects inside a called function are treated as indeterminately
//! sequenced with respect to the caller's expression (C11 §6.5.2.2:10),
//! so they are not added to the caller's footprint.
//!
//! # Execution-core layout
//!
//! The engine is slot-resolved and allocation-free on its hot paths:
//!
//! - variable references were bound to frame-relative slots by
//!   [`crate::resolve`], so a lookup is `slots[frame.slot_base + slot]` —
//!   one array load, no name scan;
//! - frames share one `slots` stack and one `created`-objects stack
//!   (marks delimit each frame/block), so calls and blocks push no
//!   per-entry vectors;
//! - sequencing footprints live in one shared arena; full expressions
//!   truncate back to their mark at each sequence point;
//! - diagnostics borrow identifier spellings from the unit's interner and
//!   only allocate when an error report is actually built (the cold
//!   path).

use crate::ast::{BinOp, Decl, ExprId, ExprKind, Stmt, StmtId, TranslationUnit, Ty, UnaryOp};
use crate::bytecode::CodeUnit;
use crate::compile::{compile, CompiledUnit};
use crate::consteval::{self, ConstStop};
use crate::ctype::{CInt, IntTy, PTR_BYTES, SIZE_T};
use crate::intern::{kw, Symbol};
use crate::profile::ExecProfile;
use cundef_ub::{SourceLoc, UbError, UbKind};
use std::borrow::Cow;
use std::rc::Rc;

mod vm;

/// Every [`UbKind`] this evaluator can raise, in code order.
///
/// This is the evaluator's side of the workspace's detector registry: the
/// catalog's `detected_by` links are checked (by the analysis crate's
/// invariant tests) against this list and the static analyzer's, so a
/// link can never point at a detector that does not exist. A unit test
/// greps this file to keep the list honest in both directions.
pub fn detected_kinds() -> &'static [UbKind] {
    use UbKind::*;
    &[
        DivisionByZero,
        ModuloByZero,
        SignedOverflow,
        DivisionOverflow,
        ShiftByNegative,
        ShiftTooFar,
        ShiftOfNegative,
        ShiftOverflow,
        UnsequencedSideEffect,
        NullDereference,
        DeadObjectAccess,
        OutOfBoundsRead,
        OutOfBoundsWrite,
        PointerArithmeticOutOfBounds,
        PointerSubtractionDifferentObjects,
        PointerCompareDifferentObjects,
        ReadIndeterminate,
        MisalignedAccess,
        WriteToConst,
        AccessWrongEffectiveType,
        FreeNonHeapPointer,
        FreeInteriorPointer,
        DoubleFree,
        CallWrongArity,
        MissingReturnValueUsed,
        CallNonFunction,
        InvalidLibraryArgument,
        ArraySizeNotPositive,
        VlaSizeNotPositive,
        VoidValueUsed,
        ReturnWithoutValue,
        NonConstantCaseLabel,
        IncompleteTypeObject,
    ]
}

/// Resource bounds for one execution, so that the checker terminates on
/// looping inputs without claiming anything about them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of evaluation steps (statements + expression nodes).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_steps: 2_000_000,
            max_call_depth: 256,
        }
    }
}

/// Which execution engine [`Interp::run_main`] drives.
///
/// Both engines share the memory/object core (typed loads and stores,
/// lifetimes, footprints, conversions), so every diagnostic — kind,
/// position, detail text, notes — is identical between them; the
/// tree-walker is the reference semantics and the bytecode engine is the
/// fast path, checked against it by the engine-parity suite and the
/// differential fuzzer's fourth oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk the AST directly — the reference interpreter.
    Tree,
    /// Lower each function to flat bytecode once, then dispatch over the
    /// instruction stream (with tree fallback ops for constructs whose
    /// diagnostics need the full footprint machinery).
    #[default]
    Bytecode,
}

/// The type a pointer accesses memory through — its pointee.
///
/// This is what gives an access its *size* and *alignment* in the
/// byte-addressable model, and what the §6.5:7 effective-type check
/// compares against the accessed object's element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointeeTy {
    /// Pointer to an integer object: accesses move `sizeof(T)` bytes.
    Scalar(IntTy),
    /// Pointer to a pointer object: accesses move 8-byte pointer values.
    Ptr,
    /// `void *`: address-only; sizeless, so access and arithmetic
    /// through it are rejected.
    Void,
}

impl PointeeTy {
    /// Access size in bytes; `None` for the sizeless `void`.
    #[inline]
    fn size(self) -> Option<u64> {
        match self {
            PointeeTy::Scalar(t) => Some(t.size_bytes()),
            PointeeTy::Ptr => Some(PTR_BYTES),
            PointeeTy::Void => None,
        }
    }

    /// Alignment the pointee requires (§6.3.2.3:7). `void *` (like the
    /// character pointers) is 1: any address converts to it.
    #[inline]
    fn align(self) -> i64 {
        match self {
            PointeeTy::Scalar(t) => t.align_of() as i64,
            PointeeTy::Ptr => crate::ctype::PTR_ALIGN as i64,
            PointeeTy::Void => 1,
        }
    }

    /// Whether this is a character type — the §6.5:7 escape hatch that
    /// may alias any object's representation.
    #[inline]
    fn is_char(self) -> bool {
        matches!(self, PointeeTy::Scalar(IntTy::Char | IntTy::UChar))
    }

    /// Spelling for diagnostics.
    fn name(self) -> &'static str {
        match self {
            PointeeTy::Scalar(t) => t.name(),
            PointeeTy::Ptr => "pointer",
            PointeeTy::Void => "void",
        }
    }
}

/// A pointer value: an object identity, a **byte** offset, and the
/// pointee type the pointer accesses memory through.
///
/// Pointers carry provenance, never raw addresses, which is what lets the
/// engine decide §6.5.6:8 (bounds), §6.5.6:9 (same-object subtraction),
/// and §6.2.4 (lifetime) questions exactly; the pointee type is what
/// makes §6.3.2.3:7 (alignment) and §6.5:7 (effective types) decidable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pointer {
    /// Index of the pointed-to object in the interpreter's object table.
    pub obj: usize,
    /// Byte offset within (or one past the end of) the object.
    pub off: i64,
    /// The type this pointer reads and writes through.
    pub ty: PointeeTy,
}

impl Pointer {
    /// Whether two pointer values compare equal (§6.5.9:6): same object,
    /// same byte address — the pointee type does not participate
    /// (`(char *)&x == (void *)&x`).
    #[inline]
    fn same_address(self, other: Pointer) -> bool {
        self.obj == other.obj && self.off == other.off
    }
}

/// A runtime value in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A typed integer value of the LP64 lattice ([`CInt`] carries both
    /// the two's-complement bits and the C type, so every arithmetic
    /// operation promotes and converts at the right width).
    Int(CInt),
    /// A pointer with provenance.
    Ptr(Pointer),
    /// A value that does not exist: the result of a function that fell
    /// off its end (§6.9.1:12) or of a `void` function. Consuming it
    /// reports the carried [`UbKind`].
    Missing(UbKind),
}

/// The result of one checked execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program ran to completion and returned this exit value.
    Completed(i64),
    /// Execution ran into undefined behavior.
    Undefined(UbError),
    /// The checker gave up (resource limit or construct outside the
    /// modeled semantics). This says nothing about the program.
    Unsupported {
        /// What the engine could not handle.
        message: String,
        /// Where it stopped.
        loc: SourceLoc,
    },
}

impl Outcome {
    /// The undefined-behavior report, if this outcome is one.
    pub fn ub(&self) -> Option<&UbError> {
        match self {
            Outcome::Undefined(e) => Some(e),
            _ => None,
        }
    }

    /// The exit value, if the program completed.
    pub fn exit_code(&self) -> Option<i64> {
        match self {
            Outcome::Completed(v) => Some(*v),
            _ => None,
        }
    }
}

/// Sentinel in the slot stack for "declaration not yet executed".
const SLOT_NONE: usize = usize::MAX;

// ----- epoch-tagged object references -----
//
// An object reference packs a slab slot index (low 32 bits) with the
// slot's generation (high 32 bits). Retired objects stay in place —
// diagnostics about the common un-recycled dangling pointer read the
// dead object directly — until `alloc` recycles their slot for a new
// object, bumping the slot's epoch. A stale reference then misses on
// the epoch compare (O(1) "this object is dead") and resolves through
// the tombstone record of its original occupant, so dangling-pointer
// reports keep the original name even after the storage was reused.
// The packing assumes 64-bit `usize`, like the LP64 target the engine
// models.

/// Slab slot index of a packed object reference.
#[inline]
fn obj_slot(r: usize) -> usize {
    r & 0xFFFF_FFFF
}

/// Generation tag of a packed object reference.
#[inline]
fn obj_epoch(r: usize) -> u32 {
    (r >> 32) as u32
}

/// Pack a slab slot and its current epoch into an object reference.
#[inline]
fn obj_ref(slot: usize, epoch: u32) -> usize {
    slot | ((epoch as usize) << 32)
}

/// The previous occupant of a recycled slab slot: everything a stale
/// reference can still legitimately ask about. Accesses are dead on
/// arrival (epoch mismatch), but the *diagnostic* must name the
/// original object, an array designator must still decay, and `sizeof`
/// must still see the original extent.
struct Tombstone {
    slot: u32,
    epoch: u32,
    name: ObjName,
    heap: bool,
    is_array: bool,
    elem: Elem,
    size: u32,
}

/// Memory budget for one object, in bytes. With 64-bit sizes a program
/// can ask for absurd allocations (`long n = 1L << 40; int a[n];`); the
/// checker gives up rather than trying to model them.
const MAX_BYTES: i128 = 1 << 26;

/// Why evaluation stopped early (internal control flow).
enum Stop {
    Ub(UbError),
    Unsupported(String, SourceLoc),
}

/// Errors travel boxed: `Stop` is ~10 words of report text, and an
/// unboxed error variant would widen every `Result` the evaluator
/// returns — a memcpy per expression node on the hot path.
type EResult<T> = Result<T, Box<Stop>>;

/// Cold-path constructor for engine-limitation stops.
#[cold]
fn stop_unsupported(message: impl Into<String>, loc: SourceLoc) -> Box<Stop> {
    Box::new(Stop::Unsupported(message.into(), loc))
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    /// A `return`, carrying the value and the statement's position so
    /// reports about the returned value can point at the `return` itself.
    Return(Value, SourceLoc),
    /// A `goto` in flight: it unwinds enclosing statements (ending block
    /// lifetimes on the way out, §6.2.4:6) until it reaches a block that
    /// contains the target label, which re-enters at the label.
    Goto(Symbol, SourceLoc),
}

/// One byte-range access performed during an expression evaluation,
/// recorded in the shared footprint arena — packed into one word so
/// footprint pushes are a single store: the write flag in bit 0, the
/// log2 of the access size (1/2/4/8 bytes) in bits 1..=2, the byte
/// offset in bits 3..=30 (offsets are bounded by [`MAX_BYTES`]), and the
/// object index in the high bits. The §6.5:2 conflict test is a
/// same-object check plus a byte-range overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Access(u64);

impl Access {
    /// `obj` is the *slab slot* of the accessed object, not a packed
    /// epoch reference: footprints live only within one full
    /// expression, and `alloc` refuses to recycle any slot present in
    /// the live footprint, so a slot identifies its object unambiguously
    /// for the lifetime of every entry.
    #[inline]
    fn new(obj: usize, off: i64, size: u64, write: bool) -> Access {
        debug_assert!(size.is_power_of_two() && size <= 8);
        Access(
            ((obj as u64) << 31)
                | ((off as u64) << 3)
                | ((size.trailing_zeros() as u64) << 1)
                | write as u64,
        )
    }

    /// The accessed object, for diagnostics.
    #[inline]
    fn obj(self) -> usize {
        (self.0 >> 31) as usize
    }

    /// Byte offset of the access within its object.
    #[inline]
    fn off(self) -> u64 {
        (self.0 >> 3) & 0x0FFF_FFFF
    }

    /// Access size in bytes.
    #[inline]
    fn size(self) -> u64 {
        1 << ((self.0 >> 1) & 3)
    }

    #[inline]
    fn is_write(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether two accesses touch overlapping bytes of the same object —
    /// the byte-granular "same scalar object" test of §6.5:2 (a `char`
    /// store into one byte of an `int` conflicts with the `int` access).
    #[inline]
    fn overlaps(self, other: Access) -> bool {
        (self.0 ^ other.0) >> 31 == 0
            && self.off() < other.off() + other.size()
            && other.off() < self.off() + self.size()
    }
}

/// The byte storage of one object: data plus a per-byte initialization
/// bitmap. A dedicated inline variant for objects of at most 8 bytes
/// (every scalar) avoids a heap allocation per declaration and lets
/// whole-object loads/stores run on a single word.
enum Bytes {
    /// Objects of at most 8 bytes: one little-endian data word and a
    /// byte of per-byte init bits.
    Small { data: [u8; 8], init: u8, len: u8 },
    /// Larger objects: heap storage with a u64-chunked init bitmap.
    Big { data: Vec<u8>, init: Vec<u64> },
}

impl Bytes {
    fn new(len: usize) -> Bytes {
        if len <= 8 {
            Bytes::Small {
                data: [0; 8],
                init: 0,
                len: len as u8,
            }
        } else {
            Bytes::Big {
                data: vec![0; len],
                init: vec![0; len.div_ceil(64)],
            }
        }
    }

    /// Object size in bytes.
    #[inline]
    fn len(&self) -> usize {
        match self {
            Bytes::Small { len, .. } => *len as usize,
            Bytes::Big { data, .. } => data.len(),
        }
    }

    /// Reinitialize this storage for a recycled object of `len` bytes:
    /// all bytes zero, all init bits clear. A `Big` reused as `Big`
    /// keeps both vector allocations — the point of slab recycling.
    fn reset(&mut self, len: usize) {
        match self {
            Bytes::Big { data, init } if len > 8 => {
                data.clear();
                data.resize(len, 0);
                init.clear();
                init.resize(len.div_ceil(64), 0);
            }
            _ => *self = Bytes::new(len),
        }
    }

    /// Whether every byte of `[off, off + n)` is initialized (n ≤ 8).
    #[inline]
    fn all_init(&self, off: usize, n: usize) -> bool {
        match self {
            Bytes::Small { init, .. } => {
                let m = (((1u16 << n) - 1) as u8) << off;
                init & m == m
            }
            Bytes::Big { init, .. } => (off..off + n).all(|i| init[i / 64] >> (i % 64) & 1 == 1),
        }
    }

    /// Whether any byte of `[off, off + n)` is initialized — used to
    /// keep the wholly-indeterminate diagnostic distinct from the
    /// byte-precise partial one.
    fn any_init(&self, off: usize, n: usize) -> bool {
        (off..off + n).any(|i| self.all_init(i, 1))
    }

    /// First uninitialized byte offset in `[off, off + n)`.
    fn first_uninit(&self, off: usize, n: usize) -> Option<usize> {
        (off..off + n).find(|&i| !self.all_init(i, 1))
    }

    /// Mark `[off, off + n)` initialized. `Small` objects are at most 8
    /// bytes, so the mask arm never sees `n > 8`; `Big` runs may be any
    /// length (array zero-fill).
    #[inline]
    fn mark_init(&mut self, off: usize, n: usize) {
        if n == 0 {
            return;
        }
        match self {
            Bytes::Small { init, .. } => *init |= (((1u16 << n) - 1) as u8) << off,
            Bytes::Big { init, .. } => {
                for i in off..off + n {
                    init[i / 64] |= 1 << (i % 64);
                }
            }
        }
    }

    /// Mark `[off, off + n)` indeterminate again (a partially
    /// overwritten pointer slot loses its remaining bytes).
    fn mark_uninit(&mut self, off: usize, n: usize) {
        match self {
            Bytes::Small { init, .. } => *init &= !((((1u16 << n) - 1) as u8) << off),
            Bytes::Big { init, .. } => {
                for i in off..off + n {
                    init[i / 64] &= !(1 << (i % 64));
                }
            }
        }
    }

    /// One-shot whole-object scalar read: `Some(bits)` iff the object
    /// is exactly `n` bytes, small, and fully initialized — the three
    /// checks a slot load performs, in one discriminant test.
    #[inline]
    fn word_init(&self, n: usize) -> Option<u64> {
        if let Bytes::Small { data, init, len } = self {
            let m = ((1u16 << n) - 1) as u8;
            if *len as usize == n && init & m == m {
                let word = u64::from_le_bytes(*data);
                return Some(if n == 8 {
                    word
                } else {
                    word & ((1u64 << (n * 8)) - 1)
                });
            }
        }
        None
    }

    /// One raw data byte (fused byte sweep); bounds and initialization
    /// were checked by the caller.
    #[inline]
    fn get_byte(&self, i: usize) -> u8 {
        match self {
            Bytes::Small { data, .. } => data[i],
            Bytes::Big { data, .. } => data[i],
        }
    }

    /// Set one raw data byte without touching init bits — the fused
    /// byte sweep marks its whole range initialized at the end.
    #[inline]
    fn set_byte(&mut self, i: usize, b: u8) {
        match self {
            Bytes::Small { data, .. } => data[i] = b,
            Bytes::Big { data, .. } => data[i] = b,
        }
    }

    /// Load `n` (≤ 8) bytes at `off`, little-endian, into the low bits.
    /// Bounds and initialization were checked by the caller.
    #[inline]
    fn load(&self, off: usize, n: usize) -> u64 {
        match self {
            Bytes::Small { data, .. } => {
                let word = u64::from_le_bytes(*data) >> (off * 8);
                if n == 8 {
                    word
                } else {
                    word & ((1u64 << (n * 8)) - 1)
                }
            }
            Bytes::Big { data, .. } => {
                let mut buf = [0u8; 8];
                buf[..n].copy_from_slice(&data[off..off + n]);
                u64::from_le_bytes(buf)
            }
        }
    }

    /// Store the low `n` (≤ 8) bytes of `bits` at `off`, little-endian,
    /// marking them initialized.
    #[inline]
    fn store(&mut self, off: usize, n: usize, bits: u64) {
        match self {
            Bytes::Small { data, .. } => {
                let mask = if n == 8 {
                    u64::MAX
                } else {
                    ((1u64 << (n * 8)) - 1) << (off * 8)
                };
                let word = u64::from_le_bytes(*data);
                *data = ((word & !mask) | ((bits << (off * 8)) & mask)).to_le_bytes();
            }
            Bytes::Big { data, .. } => {
                data[off..off + n].copy_from_slice(&bits.to_le_bytes()[..n]);
            }
        }
        self.mark_init(off, n);
    }
}

/// How an object is named in diagnostics; rendered lazily so the hot
/// path never formats or clones a string.
#[derive(Clone, Copy)]
enum ObjName {
    /// A declared identifier, spelled via the unit's interner.
    Sym(Symbol),
    /// An anonymous heap allocation, shown as `heap object #<serial>`.
    /// The serial is the object's allocation-order number, assigned by
    /// [`Interp::alloc`] — identical to the slab index it would have
    /// had without recycling, so recycling never renumbers reports.
    Heap(u64),
}

/// The declared (or, for heap memory, *effective*) element type of an
/// object — the type the §6.5:7 aliasing check compares every
/// non-character access against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Elem {
    /// Elements of this integer type.
    Scalar(IntTy),
    /// Pointer elements; carries the declared pointee so pointer values
    /// stored here adopt it (the implicit conversion of assignment,
    /// §6.5.16.1 — and §6.3.2.3:7 checks alignment at that adoption).
    Ptr(PointeeTy),
    /// Heap memory with no effective type yet (§6.5:6): the next
    /// non-character store imprints its type.
    Untyped,
}

impl Elem {
    /// Element size in bytes (`Untyped` heap memory is byte-granular).
    fn size(&self) -> u64 {
        match self {
            Elem::Scalar(t) => t.size_bytes(),
            Elem::Ptr(_) => PTR_BYTES,
            Elem::Untyped => 1,
        }
    }

    /// The pointee type a designator (or decayed array) of this object
    /// accesses through.
    fn pointee(&self) -> PointeeTy {
        match self {
            Elem::Scalar(t) => PointeeTy::Scalar(*t),
            Elem::Ptr(_) => PointeeTy::Ptr,
            // Heap objects have no designators; unreachable in practice.
            Elem::Untyped => PointeeTy::Scalar(IntTy::UChar),
        }
    }

    /// Spelling for diagnostics.
    fn name(&self) -> &'static str {
        match self {
            Elem::Scalar(t) => t.name(),
            Elem::Ptr(_) => "pointer",
            Elem::Untyped => "untyped",
        }
    }
}

/// §6.5:7 — may an lvalue of type `access` touch an object whose
/// declared/effective element type is `elem`? Character-typed lvalues
/// may alias anything; otherwise the access type must be the element
/// type or its signed/unsigned counterpart, and pointer lvalues only
/// touch pointer elements.
fn access_allowed(access: PointeeTy, elem: &Elem) -> bool {
    match access {
        PointeeTy::Scalar(IntTy::Char | IntTy::UChar) => true,
        PointeeTy::Scalar(t) => match elem {
            Elem::Scalar(u) => t == *u || t.to_unsigned() == u.to_unsigned(),
            Elem::Ptr(_) => false,
            Elem::Untyped => true,
        },
        PointeeTy::Ptr => matches!(elem, Elem::Ptr(_) | Elem::Untyped),
        PointeeTy::Void => false,
    }
}

/// Type classification of a `sizeof` operand.
enum SizeofTy {
    /// An integer type of the lattice.
    Scalar(IntTy),
    /// Any object-pointer type (all 8 bytes on LP64).
    Pointer,
    /// An undecayed array designator: total size in bytes.
    Bytes(u64),
}

/// One memory object: a byte array with a per-byte init bitmap, a
/// lifetime, and a declared (or effective) element type.
struct Object {
    bytes: Bytes,
    /// Pointer values stored into this object through pointer lvalues,
    /// keyed by byte offset. Provenance pointers have no numeric
    /// representation, so their 8 bytes live out-of-band here; loads
    /// through pointer lvalues return them verbatim, and any scalar
    /// store overlapping a slot destroys it (the bytes outside the new
    /// store go indeterminate). Almost always empty.
    ptr_slots: Vec<(u32, Value)>,
    alive: bool,
    heap: bool,
    /// Declared element type — or, for heap objects, the effective type
    /// imprinted by the last non-character store (§6.5:6).
    elem: Elem,
    /// Whether this is an array object (its designator decays, §6.3.2.1:3).
    is_array: bool,
    /// Whether the object was *defined* with a const-qualified type:
    /// modifying it through any lvalue is UB (§6.7.3:6), not just through
    /// the declared name.
    is_const: bool,
    /// Display name for diagnostics.
    name: ObjName,
    /// Generation of this slab slot. A packed reference resolves to
    /// this object only while the epochs agree; after the slot is
    /// recycled, stale references fall through to the tombstone record.
    epoch: u32,
}

struct Frame {
    /// Index of the executing function in the unit.
    func: u32,
    /// Whether the executing function returns `void`, cached at call time
    /// so `return;` can classify itself without rescanning the unit.
    returns_void: bool,
    /// Base of this frame's region of the shared slot stack.
    slot_base: usize,
    /// Logical calls this physical frame absorbed via in-place self-tail
    /// calls; subtracted from `Interp::tail_depth` when the frame pops.
    tail_calls: u32,
}

/// One parameter's precomputed binding recipe.
#[derive(Clone, Copy)]
struct ParamPlan {
    /// The parameter's identifier, for the object's diagnostic name.
    sym: Symbol,
    /// Declared element type, derived from the AST once per function.
    elem: Elem,
    /// Object size in bytes.
    size: u32,
    /// `Some(t)` when a `Value::Int` argument can take the one-word
    /// converted store (scalar, non-`_Bool`) instead of the typed core.
    scalar_fast: Option<IntTy>,
}

/// Precomputed frame descriptor for one function: slot count and the
/// parameter recipes, so a call binds its frame with stack-pointer
/// bumps and recycled objects instead of re-deriving element types and
/// sizes from the AST on every invocation. Built once per interpreter,
/// serving both engines identically.
struct FramePlan {
    n_slots: u32,
    params: Vec<ParamPlan>,
}

/// The interpreter for one translation unit.
///
/// # Examples
///
/// ```
/// use cundef_semantics::{parser, Interp, Limits};
///
/// let unit = parser::parse("int main(void) { return 2 + 2; }").unwrap();
/// let outcome = Interp::new(&unit, Limits::default()).run_main();
/// assert_eq!(outcome.exit_code(), Some(4));
/// ```
pub struct Interp<'a> {
    unit: &'a TranslationUnit,
    limits: Limits,
    /// The object slab: live and retired objects, indexed by slot.
    /// Retired objects stay in place (their slot queued on
    /// `free_slots`) so stale pointers keep reading exact diagnostics;
    /// `alloc` recycles queued slots, bumping the epoch and recording a
    /// tombstone for the previous occupant.
    objects: Vec<Object>,
    /// Slots of retired objects available for recycling.
    free_slots: Vec<u32>,
    /// Previous occupants of recycled slots, looked up (cold, terminal
    /// diagnostics only) when a stale reference misses its epoch.
    tombstones: Vec<Tombstone>,
    /// Total `alloc` calls — the allocation-order serial for heap
    /// object names (equal to the slab index recycling would have used).
    alloc_count: u64,
    /// Per-function frame descriptors, indexed like `unit.functions`.
    frame_plans: Vec<FramePlan>,
    /// High-water mark of the slot stack, for the frame-pool telemetry:
    /// a call at or under the mark reuses pooled frame storage.
    slots_high_water: usize,
    frames: Vec<Frame>,
    /// Logical call depth carried by in-place self-tail calls
    /// ([`crate::bytecode::Op::TailSelf`]): each reuse deepens the
    /// logical chain without pushing a [`Frame`], so the depth limit
    /// compares `frames.len() + tail_depth`. Unwound per frame via
    /// [`Frame::tail_calls`].
    tail_depth: usize,
    /// Shared slot stack: each frame owns `slots[frame.slot_base..]` up
    /// to its function's `n_slots`. Entries are object indices or
    /// [`SLOT_NONE`].
    slots: Vec<usize>,
    /// Shared stack of automatic (non-heap) objects, for lifetime
    /// termination; frames and blocks remember their base and kill the
    /// suffix on exit.
    created: Vec<usize>,
    /// Shared footprint arena; full expressions truncate to their mark at
    /// each sequence point.
    fp: Vec<Access>,
    /// Shared argument-passing stack, so calls don't allocate a `Vec`.
    args: Vec<Value>,
    /// Case-label values, folded once per label (§6.8.4.2:3 makes them
    /// translation-time constants) so a switch inside a loop does not
    /// re-walk its constant expressions on every dispatch.
    case_values: std::collections::HashMap<u32, CInt>,
    /// Implementation-defined conversion notes (§6.3.1.3:3): a narrowing
    /// conversion to a signed type that cannot represent the value is
    /// not undefined — the engine wraps two's-complement and records
    /// what it did, once per source position.
    notes: Vec<(SourceLoc, String)>,
    steps: u64,
    /// Which driver executes function bodies.
    engine: Engine,
    /// The lowered program, compiled on first use (or adopted from a
    /// caller-provided [`CompiledUnit`]).
    code: Option<Rc<CodeUnit>>,
    /// The bytecode engine's operand stack, allocated once and reused
    /// across calls (frames remember their base).
    vstack: Vec<Value>,
    /// `created`-stack marks for the bytecode engine's scope ops.
    scope_marks: Vec<usize>,
    /// Execution telemetry, collected only when enabled: the dispatch
    /// loop is monomorphized over it, so the disabled path carries no
    /// counter code.
    prof: ExecProfile,
    /// Whether [`Interp::enable_profiling`] was called.
    profile_enabled: bool,
}

impl<'a> Interp<'a> {
    /// Create an interpreter for `unit` with the given resource limits
    /// and the default engine.
    pub fn new(unit: &'a TranslationUnit, limits: Limits) -> Interp<'a> {
        Interp::with_engine(unit, limits, Engine::default())
    }

    /// Create an interpreter driving the given [`Engine`].
    pub fn with_engine(unit: &'a TranslationUnit, limits: Limits, engine: Engine) -> Interp<'a> {
        // Frame descriptors, one per function: everything `call` needs
        // that depends only on the declaration, computed once instead of
        // per call. `scalar_fast` pre-answers "can an integer argument
        // skip the typed store?" (fresh object, non-`_Bool` scalar).
        let frame_plans = unit
            .functions
            .iter()
            .map(|func| FramePlan {
                n_slots: func.n_slots,
                params: func
                    .params
                    .iter()
                    .map(|param| {
                        let elem = elem_of_ty(&param.ty);
                        let scalar_fast = match elem {
                            Elem::Scalar(t) if t != IntTy::Bool => Some(t),
                            _ => None,
                        };
                        ParamPlan {
                            sym: param.name,
                            elem,
                            size: elem.size() as u32,
                            scalar_fast,
                        }
                    })
                    .collect(),
            })
            .collect();
        Interp {
            unit,
            limits,
            objects: Vec::new(),
            free_slots: Vec::new(),
            tombstones: Vec::new(),
            alloc_count: 0,
            frame_plans,
            slots_high_water: 0,
            frames: Vec::new(),
            tail_depth: 0,
            slots: Vec::new(),
            created: Vec::new(),
            fp: Vec::new(),
            args: Vec::new(),
            case_values: std::collections::HashMap::new(),
            notes: Vec::new(),
            steps: 0,
            engine,
            code: None,
            vstack: Vec::with_capacity(64),
            scope_marks: Vec::with_capacity(16),
            prof: ExecProfile::default(),
            profile_enabled: false,
        }
    }

    /// Turn on execution telemetry for this interpreter (`--profile`).
    /// Counters accumulate across the whole run and are read back with
    /// [`Interp::profile`].
    pub fn enable_profiling(&mut self) {
        self.profile_enabled = true;
    }

    /// The collected [`ExecProfile`], if profiling was enabled (with
    /// the final step count folded in); `None` otherwise.
    pub fn profile(&self) -> Option<ExecProfile> {
        self.profile_enabled.then(|| {
            let mut p = self.prof.clone();
            p.steps = self.steps;
            p
        })
    }

    /// The implementation-defined conversion notes collected so far, in
    /// execution order: `(position, rendered description)` pairs. These
    /// are diagnostics about *defined* behavior (this implementation's
    /// §6.3.1.3:3 choice), so they ride alongside the [`Outcome`] rather
    /// than inside it.
    pub fn notes(&self) -> &[(SourceLoc, String)] {
        &self.notes
    }

    /// Execute the program from `main` and report what happened.
    /// Implementation-defined conversion notes accumulate on the
    /// interpreter and can be read through [`Interp::notes`] afterwards.
    ///
    /// Under [`Engine::Bytecode`] the unit is lowered on first use; use
    /// [`Interp::run_main_compiled`] to reuse an existing lowering.
    pub fn run_main(&mut self) -> Outcome {
        if self.engine == Engine::Bytecode && self.code.is_none() {
            self.code = Some(Rc::new(compile(self.unit)));
        }
        let main_idx = self
            .unit
            .func_by_symbol
            .get(kw::MAIN.index())
            .copied()
            .flatten();
        let Some(main_idx) = main_idx else {
            return Outcome::Unsupported {
                message: "translation unit defines no `main` function".into(),
                loc: SourceLoc::default(),
            };
        };
        let main = &self.unit.functions[main_idx as usize];
        if !main.params.is_empty() {
            return Outcome::Unsupported {
                message: "only `int main(void)` is supported as the entry point".into(),
                loc: main.loc,
            };
        }
        let loc = main.loc;
        match self.call(main_idx, self.args.len(), loc) {
            // An explicit `return;` leaves `main` without a value, and the
            // host environment uses that value as the termination status
            // (§5.1.2.2.3:1 covers only reaching the closing `}`).
            Ok((Value::Missing(UbKind::ReturnWithoutValue), loc)) => Outcome::Undefined(
                UbError::new(UbKind::ReturnWithoutValue)
                    .at(loc)
                    .in_function("main")
                    .with_detail(
                        "`return;` in `main`, whose value the host uses as the termination status",
                    ),
            ),
            // Reaching the `}` of `main` returns 0 (C11 §5.1.2.2.3:1).
            Ok((Value::Missing(_), _)) => Outcome::Completed(0),
            // `main` returns `int`, so the math value fits an i64.
            Ok((Value::Int(v), _)) => Outcome::Completed(v.math() as i64),
            // `main` returns `int`; a pointer coming back is an ill-typed
            // program outside the modeled semantics, not an exit code.
            Ok((Value::Ptr(_), loc)) => Outcome::Unsupported {
                message: "`main` returned a pointer, but is declared to return `int`".into(),
                loc,
            },
            Err(stop) => match *stop {
                Stop::Ub(e) => Outcome::Undefined(e),
                Stop::Unsupported(message, loc) => Outcome::Unsupported { message, loc },
            },
        }
    }

    /// Execute the program from `main` through a pre-lowered
    /// [`CompiledUnit`] (which must have been produced from this
    /// interpreter's translation unit). This is the compile-vs-execute
    /// split the `exec/*` benchmarks measure; the engine is forced to
    /// [`Engine::Bytecode`].
    pub fn run_main_compiled(&mut self, compiled: &CompiledUnit) -> Outcome {
        self.engine = Engine::Bytecode;
        self.code = Some(Rc::clone(&compiled.code));
        self.run_main()
    }

    // ----- plumbing -----

    fn tick(&mut self, loc: SourceLoc) -> EResult<()> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(stop_unsupported("evaluation step limit exceeded", loc));
        }
        Ok(())
    }

    /// Spelling of an interned identifier.
    #[inline]
    fn name(&self, sym: Symbol) -> &str {
        self.unit.interner.resolve(sym)
    }

    /// Name of the executing function, borrowed from the interner.
    fn func_name(&self) -> &str {
        self.frames
            .last()
            .map(|f| self.name(self.unit.functions[f.func as usize].name))
            .unwrap_or("")
    }

    /// Build an undefined-behavior stop. This is the cold path: only here
    /// are the function name and object names rendered into owned
    /// strings for the report.
    #[cold]
    fn ub(&self, kind: UbKind, loc: SourceLoc, detail: impl Into<String>) -> Box<Stop> {
        Box::new(Stop::Ub(
            UbError::new(kind)
                .at(loc)
                .in_function(self.func_name())
                .with_detail(detail.into()),
        ))
    }

    /// Display name of an object, borrowed for declared identifiers and
    /// formatted only for anonymous heap blocks. Stale references
    /// (recycled slot) resolve through the tombstone, so a dangling
    /// diagnostic always names the *original* object.
    fn object_name(&self, obj: usize) -> Cow<'_, str> {
        let name = match self.resolved(obj) {
            Some(o) => o.name,
            None => self.tombstone(obj).name,
        };
        match name {
            ObjName::Sym(sym) => Cow::Borrowed(self.name(sym)),
            ObjName::Heap(serial) => Cow::Owned(format!("heap object #{serial}")),
        }
    }

    /// Object bound to a resolved slot in the current frame, if its
    /// declaration has executed.
    #[inline]
    fn slot_object(&self, slot: crate::ast::SlotId) -> Option<usize> {
        let frame = self.frames.last().expect("active frame");
        match self.slots[frame.slot_base + slot.index()] {
            SLOT_NONE => None,
            obj => Some(obj),
        }
    }

    /// Allocate an object of `size` bytes, returning a packed reference
    /// (slot + current epoch). Retired slots are recycled in preference
    /// to growing the slab: the outgoing occupant leaves a [`Tombstone`]
    /// and the slot's epoch advances, so every stale reference still
    /// resolves to exact diagnostics while the byte storage is reused.
    ///
    /// A queued slot is skipped (fresh push instead) while it appears in
    /// the live footprint arena: `fp` entries carry bare slots, so
    /// recycling one mid-full-expression would both alias the epoch
    /// packing in [`Access`] and misname the access in an unsequenced
    /// diagnostic. The skipped slot stays queued for the next sequence
    /// point.
    fn alloc(
        &mut self,
        name: ObjName,
        size: usize,
        heap: bool,
        is_array: bool,
        elem: Elem,
    ) -> usize {
        // Heap blocks are named by allocation order — identical to the
        // slab index they carried before recycling existed, so the
        // rendered `heap object #N` text is unchanged.
        let name = if heap {
            ObjName::Heap(self.alloc_count)
        } else {
            name
        };
        self.alloc_count += 1;
        let recycle = match self.free_slots.last() {
            Some(&s) if !self.fp.iter().any(|a| a.obj() == s as usize) => {
                Some(self.free_slots.pop().expect("checked above") as usize)
            }
            _ => None,
        };
        let r = if let Some(slot) = recycle {
            let o = &mut self.objects[slot];
            debug_assert!(!o.alive, "recycling a live slot");
            self.tombstones.push(Tombstone {
                slot: slot as u32,
                epoch: o.epoch,
                name: o.name,
                heap: o.heap,
                is_array: o.is_array,
                elem: o.elem,
                size: o.bytes.len() as u32,
            });
            o.epoch += 1;
            o.bytes.reset(size);
            o.ptr_slots.clear();
            o.alive = true;
            o.heap = heap;
            o.is_array = is_array;
            o.is_const = false;
            o.elem = elem;
            o.name = name;
            if self.profile_enabled {
                self.prof.arena_recycles += 1;
            }
            obj_ref(slot, o.epoch)
        } else {
            let slot = self.objects.len();
            self.objects.push(Object {
                bytes: Bytes::new(size),
                ptr_slots: Vec::new(),
                alive: true,
                heap,
                is_array,
                is_const: false,
                elem,
                name,
                epoch: 0,
            });
            if self.profile_enabled {
                self.prof.arena_misses += 1;
            }
            obj_ref(slot, 0)
        };
        if !heap {
            self.created.push(r);
        }
        if self.profile_enabled {
            self.prof.note_alloc(size, heap);
        }
        r
    }

    /// Queue a retired slot for recycling. Epoch saturation (a slot
    /// recycled `u32::MAX` times) silently leaks the slot instead of
    /// letting its next incarnation alias older stale references.
    #[inline]
    fn retire_slot(&mut self, slot: usize) {
        debug_assert!(!self.objects[slot].alive, "retiring a live slot");
        debug_assert!(
            !self.free_slots.contains(&(slot as u32)),
            "double-retire of slot {slot}"
        );
        if self.objects[slot].epoch != u32::MAX {
            self.free_slots.push(slot as u32);
        }
    }

    /// The object a packed reference denotes, if the reference is
    /// current (its epoch matches the slot's). `None` means the slot was
    /// recycled since the reference was formed — the cold diagnostic
    /// paths then consult the tombstone record instead.
    #[inline]
    fn resolved(&self, r: usize) -> Option<&Object> {
        let o = &self.objects[obj_slot(r)];
        (o.epoch == obj_epoch(r)).then_some(o)
    }

    /// Tombstone for a stale reference. Every epoch bump records one, so
    /// a reference that fails [`Interp::resolved`] always finds its
    /// original object's facts here.
    #[cold]
    fn tombstone(&self, r: usize) -> &Tombstone {
        self.tombstones
            .iter()
            .find(|t| t.slot as usize == obj_slot(r) && t.epoch == obj_epoch(r))
            .expect("stale reference has a tombstone")
    }

    /// Is the referenced object within its lifetime? Stale references
    /// (recycled slot) are dead by definition — the O(1) epoch mismatch
    /// replaces keeping the object around forever.
    #[inline]
    fn obj_is_alive(&self, r: usize) -> bool {
        self.resolved(r).is_some_and(|o| o.alive)
    }

    /// Array-ness of the referenced object, stale-safe: decay of a
    /// designator whose object has been recycled still answers from the
    /// tombstone (decay itself is not an access, so it must not change
    /// behavior when the slot is reused).
    #[inline]
    fn obj_is_array(&self, r: usize) -> bool {
        match self.resolved(r) {
            Some(o) => o.is_array,
            None => self.tombstone(r).is_array,
        }
    }

    /// Element type of the referenced object, stale-safe.
    #[inline]
    fn obj_elem(&self, r: usize) -> Elem {
        match self.resolved(r) {
            Some(o) => o.elem,
            None => self.tombstone(r).elem,
        }
    }

    /// Byte size of the referenced object, stale-safe (`sizeof` of a
    /// dead array designator is still defined).
    #[inline]
    fn obj_len(&self, r: usize) -> usize {
        match self.resolved(r) {
            Some(o) => o.bytes.len(),
            None => self.tombstone(r).size as usize,
        }
    }

    /// Re-pack a bare footprint slot into a current reference. Sound
    /// because `alloc` refuses to recycle slots present in the live
    /// footprint arena: an `fp` slot's epoch is always current.
    #[inline]
    fn current_ref(&self, slot: usize) -> usize {
        obj_ref(slot, self.objects[slot].epoch)
    }

    /// The pointer a designator of `obj` denotes: offset 0, accessed
    /// through the object's own element type.
    #[inline]
    fn designator_pointer(&self, obj: usize) -> Pointer {
        Pointer {
            obj,
            off: 0,
            ty: self.obj_elem(obj).pointee(),
        }
    }

    /// Record an implementation-defined conversion note, once per source
    /// position (a conversion inside a loop would otherwise flood the
    /// report).
    #[cold]
    fn note(&mut self, loc: SourceLoc, message: String) {
        if !self.notes.iter().any(|(l, _)| *l == loc) {
            self.notes.push((loc, message));
        }
    }

    /// Convert an integer value to `ty` (§6.3.1.3), recording a note when
    /// the conversion is implementation-defined (§6.3.1.3:3).
    #[inline]
    fn convert_int(&mut self, c: CInt, ty: IntTy, loc: SourceLoc) -> CInt {
        if c.ty == ty {
            // Same type: the representation invariant (bits already
            // truncated to the width) makes conversion the identity,
            // and an in-range value is never implementation-defined.
            return c;
        }
        let (out, impl_defined) = c.convert(ty);
        if impl_defined {
            self.note(
                loc,
                format!(
                    "implementation-defined: {} converted to `{}` yields {} \
                     (value does not fit; two's-complement wrap)",
                    c.math(),
                    ty.name(),
                    out.math()
                ),
            );
        }
        out
    }

    /// Convert a pointer to pointee type `to` (§6.3.2.3:7): undefined at
    /// the conversion itself when the pointer is not suitably aligned
    /// for the new pointee. Casts, assignment adoption, argument
    /// passing, and returns all funnel through here.
    fn convert_pointer(&self, p: Pointer, to: PointeeTy, loc: SourceLoc) -> EResult<Pointer> {
        let align = to.align();
        if align > 1 && p.off % align != 0 {
            return Err(self.ub(
                UbKind::MisalignedAccess,
                loc,
                format!(
                    "pointer to byte offset {} of `{}` converted to `{} *`, \
                     which requires {}-byte alignment",
                    p.off,
                    self.object_name(p.obj),
                    to.name(),
                    align
                ),
            ));
        }
        Ok(Pointer {
            obj: p.obj,
            off: p.off,
            ty: to,
        })
    }

    /// End the lifetime of every automatic object created at or after
    /// `base` (block or frame exit, §6.2.4:2/:6).
    fn kill_created_from(&mut self, base: usize) {
        for i in base..self.created.len() {
            let slot = obj_slot(self.created[i]);
            self.objects[slot].alive = false;
            if self.profile_enabled {
                self.prof
                    .note_dealloc(self.objects[slot].bytes.len(), false);
            }
            // The slot is immediately recyclable: `created` refs are
            // current by construction (an automatic object's slot cannot
            // be recycled while it is alive).
            self.retire_slot(slot);
        }
        self.created.truncate(base);
    }

    // ----- checked memory access -----

    fn check_live(&self, p: Pointer, loc: SourceLoc) -> EResult<()> {
        if !self.obj_is_alive(p.obj) {
            return Err(self.ub(
                UbKind::DeadObjectAccess,
                loc,
                format!(
                    "object `{}` is outside its lifetime",
                    self.object_name(p.obj)
                ),
            ));
        }
        Ok(())
    }

    /// Shared validity checks for a typed access of `size` bytes through
    /// `p`: lifetime, alignment (§6.3.2.3:7, belt and braces — the
    /// conversion that misaligned the pointer already reported), bounds
    /// (§6.5.6:8), and the §6.5:7 effective-type rule. Returns the byte
    /// offset, validated.
    fn check_access(&self, p: Pointer, size: u64, write: bool, loc: SourceLoc) -> EResult<usize> {
        self.check_live(p, loc)?;
        let align = p.ty.align();
        if align > 1 && p.off % align != 0 {
            return Err(self.ub(
                UbKind::MisalignedAccess,
                loc,
                format!(
                    "`{}` access at byte offset {} of `{}`, which requires \
                     {}-byte alignment",
                    p.ty.name(),
                    p.off,
                    self.object_name(p.obj),
                    align
                ),
            ));
        }
        // `check_live` passed, so the reference is current: bare-slot
        // indexing is sound from here on.
        let obj = &self.objects[obj_slot(p.obj)];
        let len = obj.bytes.len() as i64;
        if p.off < 0 || p.off + size as i64 > len {
            let kind = if write {
                UbKind::OutOfBoundsWrite
            } else {
                UbKind::OutOfBoundsRead
            };
            return Err(self.ub(
                kind,
                loc,
                format!(
                    "{} of {} byte(s) at byte offset {} of `{}` ({} bytes)",
                    if write { "write" } else { "read" },
                    size,
                    p.off,
                    self.object_name(p.obj),
                    len
                ),
            ));
        }
        // §6.5:7 — non-character lvalues must agree with the object's
        // declared (or heap-effective) type. Writes to heap memory
        // *imprint* instead (handled by the caller).
        if !(access_allowed(p.ty, &obj.elem) || (write && obj.heap)) {
            return Err(self.ub(
                UbKind::AccessWrongEffectiveType,
                loc,
                format!(
                    "`{}` lvalue accesses `{}`, whose {} type is `{}`",
                    p.ty.name(),
                    self.object_name(p.obj),
                    if obj.heap { "effective" } else { "declared" },
                    obj.elem.name()
                ),
            ));
        }
        Ok(p.off as usize)
    }

    /// A typed load: read `sizeof(T)` little-endian bytes through `p`.
    /// Reads touching any indeterminate byte raise
    /// [`UbKind::ReadIndeterminate`] — byte-precise for
    /// partially-initialized wide objects.
    fn read_typed(&mut self, p: Pointer, loc: SourceLoc) -> EResult<Value> {
        let Some(size) = p.ty.size() else {
            return Err(stop_unsupported("dereference of a `void *`", loc));
        };
        let off = self.check_access(p, size, false, loc)?;
        let n = size as usize;
        let slot = obj_slot(p.obj);
        let obj = &self.objects[slot];
        if p.ty == PointeeTy::Ptr {
            // A stored pointer's bytes live out-of-band in its slot.
            if let Some(&(_, v)) = obj.ptr_slots.iter().find(|(o, _)| *o as i64 == p.off) {
                self.fp.push(Access::new(slot, p.off, size, false));
                return Ok(v);
            }
            if obj.ptr_slots.iter().any(|(o, _)| {
                let s = *o as i64;
                s < p.off + 8 && p.off < s + 8
            }) {
                return Err(stop_unsupported(
                    "reading a pointer that straddles another stored pointer's \
                     representation is outside the modeled semantics",
                    loc,
                ));
            }
            if !obj.bytes.all_init(off, n) {
                return Err(self.uninit_read(p, n, loc));
            }
            // All-zero bytes are the null pointer (array zero-fill);
            // anything else would need a numeric pointer representation.
            return if obj.bytes.load(off, n) == 0 {
                self.fp.push(Access::new(slot, p.off, size, false));
                Ok(Value::Int(CInt::int(0)))
            } else {
                Err(stop_unsupported(
                    "reassembling a pointer from integer bytes is outside the \
                     modeled semantics",
                    loc,
                ))
            };
        }
        // Scalar load. Bytes belonging to a stored pointer have no
        // numeric value to hand out — not even to a char sweep.
        if !obj.ptr_slots.is_empty()
            && obj.ptr_slots.iter().any(|(o, _)| {
                let s = *o as i64;
                s < p.off + size as i64 && p.off < s + 8
            })
        {
            return Err(stop_unsupported(
                "reading the byte representation of a stored pointer is outside \
                 the modeled semantics (pointers have no numeric address here)",
                loc,
            ));
        }
        if !obj.bytes.all_init(off, n) {
            return Err(self.uninit_read(p, n, loc));
        }
        let bits = obj.bytes.load(off, n);
        let PointeeTy::Scalar(t) = p.ty else {
            unreachable!("Ptr and Void handled above")
        };
        if t == IntTy::Bool && bits > 1 {
            // §6.2.6.1:5 — a `_Bool` object whose byte is neither 0 nor
            // 1 (planted through a char-lvalue write) is a trap
            // representation: padding bits are set, and reading it
            // through a `_Bool` lvalue is undefined. Native compilers
            // hand the raw byte back, so masking to the value bit here
            // would silently diverge from real executions.
            return Err(self.ub(
                UbKind::ReadIndeterminate,
                loc,
                format!(
                    "`{}` read as `_Bool` holds the trap representation {:#04x} \
                     (only 0 and 1 represent values)",
                    self.object_name(p.obj),
                    bits
                ),
            ));
        }
        self.fp.push(Access::new(slot, p.off, size, false));
        Ok(Value::Int(CInt::from_bits(bits, t)))
    }

    /// Build the [`UbKind::ReadIndeterminate`] report for a read of `n`
    /// bytes through `p`: the classic wording when the object's bytes are
    /// wholly indeterminate, a byte-precise one when only part of a wide
    /// object was initialized.
    #[cold]
    fn uninit_read(&self, p: Pointer, n: usize, loc: SourceLoc) -> Box<Stop> {
        let obj = &self.objects[obj_slot(p.obj)];
        let off = p.off as usize;
        let detail = if obj.bytes.any_init(off, n) {
            // Read-relative index: byte 0 is the first byte the read
            // touches, wherever in the object it starts.
            let first = obj.bytes.first_uninit(off, n).unwrap_or(off) - off;
            format!(
                "`{}` is only partly initialized: byte {} of the {}-byte read \
                 at byte offset {} is indeterminate",
                self.object_name(p.obj),
                first,
                n,
                p.off
            )
        } else {
            format!("`{}` holds an indeterminate value", self.object_name(p.obj))
        };
        self.ub(UbKind::ReadIndeterminate, loc, detail)
    }

    /// A typed store: write `sizeof(T)` little-endian bytes through `p`,
    /// converting the value to the lvalue's type first (§6.5.16.1:2).
    /// Returns the converted value — which is also the value of an
    /// assignment expression (§6.5.16:3).
    fn write_typed(&mut self, p: Pointer, v: Value, loc: SourceLoc) -> EResult<Value> {
        let Some(size) = p.ty.size() else {
            return Err(stop_unsupported("store through a `void *`", loc));
        };
        let off = self.check_access(p, size, true, loc)?;
        let slot = obj_slot(p.obj);
        if self.objects[slot].is_const {
            // §6.7.3:6 — the object was *defined* const; the lvalue used
            // for the store does not matter.
            return Err(self.ub(
                UbKind::WriteToConst,
                loc,
                format!(
                    "write to `{}`, which is defined with a const-qualified type",
                    self.object_name(p.obj)
                ),
            ));
        }
        let n = size as usize;
        match p.ty {
            PointeeTy::Scalar(t) => {
                let stored = match v {
                    Value::Int(c) => self.convert_int(c, t, loc),
                    Value::Ptr(_) => {
                        return Err(stop_unsupported(
                            "storing a pointer through a non-pointer lvalue is \
                             outside the modeled semantics",
                            loc,
                        ))
                    }
                    Value::Missing(_) => unreachable!("callers filter Missing"),
                };
                // A non-character store imprints heap memory's effective
                // type (§6.5:6); character stores leave it alone.
                if self.objects[slot].heap && !p.ty.is_char() {
                    self.objects[slot].elem = Elem::Scalar(t);
                }
                self.clear_ptr_slots(slot, p.off, size);
                self.objects[slot].bytes.store(off, n, stored.bits());
                self.fp.push(Access::new(slot, p.off, size, true));
                Ok(Value::Int(stored))
            }
            PointeeTy::Ptr => {
                let stored = match v {
                    // Storing into *declared* pointer cells adopts the
                    // declared pointee (the implicit conversion of
                    // §6.5.16.1, alignment-checked per §6.3.2.3:7); heap
                    // cells keep the stored pointer's own type.
                    Value::Ptr(q) => match self.objects[slot].elem {
                        Elem::Ptr(pt) if !self.objects[slot].heap => {
                            Value::Ptr(self.convert_pointer(q, pt, loc)?)
                        }
                        _ => Value::Ptr(q),
                    },
                    // The null pointer constant — or an integer in a
                    // pointer cell, reported if ever used as a pointer.
                    other => other,
                };
                if self.objects[slot].heap {
                    self.objects[slot].elem = Elem::Ptr(PointeeTy::Void);
                }
                self.clear_ptr_slots(slot, p.off, size);
                self.objects[slot].bytes.store(off, n, 0);
                if !matches!(stored, Value::Int(c) if c.is_zero()) {
                    self.objects[slot].ptr_slots.push((p.off as u32, stored));
                }
                self.fp.push(Access::new(slot, p.off, size, true));
                Ok(stored)
            }
            PointeeTy::Void => unreachable!("sizeless access rejected above"),
        }
    }

    /// Destroy any stored-pointer slot whose 8-byte range overlaps the
    /// store `[off, off + size)`: the overwritten pointer cannot be
    /// reconstructed, so its bytes outside the new store go
    /// indeterminate. `obj` is a bare slab slot (callers have already
    /// validated the access).
    fn clear_ptr_slots(&mut self, obj: usize, off: i64, size: u64) {
        if self.objects[obj].ptr_slots.is_empty() {
            return;
        }
        let (start, end) = (off, off + size as i64);
        let mut dead = Vec::new();
        self.objects[obj].ptr_slots.retain(|(o, _)| {
            let s = *o as i64;
            let overlaps = s < end && start < s + 8;
            if overlaps {
                dead.push(s);
            }
            !overlaps
        });
        for s in dead {
            self.objects[obj].bytes.mark_uninit(s as usize, 8);
        }
    }

    // ----- sequencing -----

    /// §6.5:2 at an unsequenced combination point: the accesses in
    /// `fp[a_start..mid]` (first operand) and `fp[mid..]` (second
    /// operand) conflict if a write on one side pairs with any access of
    /// the same scalar on the other. The merged footprint is simply the
    /// whole range — the arena already holds both sides back to back.
    fn check_unsequenced(&self, a_start: usize, mid: usize, loc: SourceLoc) -> EResult<()> {
        let (a, b) = self.fp[a_start..].split_at(mid - a_start);
        for &x in a {
            for &y in b {
                if x.overlaps(y) && (x.is_write() || y.is_write()) {
                    return Err(self.ub(
                        UbKind::UnsequencedSideEffect,
                        loc,
                        format!(
                            "unsequenced accesses to `{}`",
                            // fp slots are bare and current (alloc skips
                            // slots in the live footprint), so re-pack.
                            self.object_name(self.current_ref(x.obj()))
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// §6.5:2 — the update side effect of an assignment or `++`/`--` is
    /// unsequenced with the value computations around it, so it conflicts
    /// with any other write to the same scalar in the operand footprint
    /// (`x = x++`, `a[(a[0]=0)]++`).
    fn check_update_conflict(
        &self,
        fp_start: usize,
        p: Pointer,
        loc: SourceLoc,
        action: &str,
    ) -> EResult<()> {
        let probe = Access::new(obj_slot(p.obj), p.off, p.ty.size().unwrap_or(1), true);
        if self.fp[fp_start..]
            .iter()
            .any(|&a| a.is_write() && a.overlaps(probe))
        {
            return Err(self.ub(
                UbKind::UnsequencedSideEffect,
                loc,
                format!(
                    "{action} `{}` unsequenced with another side effect on it",
                    self.object_name(p.obj)
                ),
            ));
        }
        Ok(())
    }

    // ----- values -----

    /// Consume a value: `Missing` poison reports its deferred kind here.
    fn use_value(&self, v: Value, loc: SourceLoc) -> EResult<Value> {
        match v {
            Value::Missing(kind) => Err(self.ub(kind, loc, "use of a value that does not exist")),
            v => Ok(v),
        }
    }

    fn as_int(&self, v: Value, loc: SourceLoc) -> EResult<CInt> {
        match self.use_value(v, loc)? {
            Value::Int(c) => Ok(c),
            Value::Ptr(_) => Err(stop_unsupported(
                "expected an integer, found a pointer",
                loc,
            )),
            Value::Missing(_) => unreachable!("use_value filters Missing"),
        }
    }

    fn truthy(&self, v: Value, loc: SourceLoc) -> EResult<bool> {
        match self.use_value(v, loc)? {
            Value::Int(c) => Ok(!c.is_zero()),
            Value::Ptr(p) => {
                // Using a dangling pointer value, even just for its truth
                // value, is UB (§6.2.4:2).
                self.check_live(p, loc)?;
                Ok(true)
            }
            Value::Missing(_) => unreachable!(),
        }
    }

    // ----- expression evaluation -----

    /// Evaluate a *full expression* (§6.8:4): its footprint dies at the
    /// sequence point that ends it.
    fn eval_full(&mut self, e: ExprId) -> EResult<Value> {
        let mark = self.fp.len();
        let v = self.eval(e)?;
        self.fp.truncate(mark);
        Ok(v)
    }

    fn eval(&mut self, e: ExprId) -> EResult<Value> {
        let unit = self.unit;
        let expr = unit.expr(e);
        let loc = expr.loc;
        self.tick(loc)?;
        match &expr.kind {
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::Ident(sym) => Err(stop_unsupported(
                format!("use of undeclared identifier `{}`", self.name(*sym)),
                loc,
            )),
            ExprKind::Slot(slot, sym) => {
                let Some(obj) = self.slot_object(*slot) else {
                    return Err(stop_unsupported(
                        format!(
                            "use of `{}` before its declaration executed",
                            self.name(*sym)
                        ),
                        loc,
                    ));
                };
                if self.obj_is_array(obj) {
                    // Array designators decay to a pointer to the first
                    // element (§6.3.2.1:3); no byte is read.
                    return Ok(Value::Ptr(self.designator_pointer(obj)));
                }
                let p = self.designator_pointer(obj);
                self.read_typed(p, loc)
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(*inner)?;
                let v = self.use_value(v, loc)?;
                let out = match (op, v) {
                    (UnaryOp::Neg, Value::Int(n)) => match consteval::neg(n) {
                        Ok(r) => Value::Int(r),
                        Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
                    },
                    (UnaryOp::Not, v) => {
                        let t = self.truthy(v, loc)?;
                        Value::Int(CInt::int(if t { 0 } else { 1 }))
                    }
                    (UnaryOp::BitNot, Value::Int(n)) => match consteval::bit_not(n) {
                        Ok(r) => Value::Int(r),
                        Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
                    },
                    (UnaryOp::Neg | UnaryOp::BitNot, Value::Ptr(_)) => {
                        return Err(stop_unsupported(
                            "arithmetic unary operator applied to a pointer",
                            loc,
                        ))
                    }
                    (_, Value::Missing(_)) => unreachable!(),
                };
                Ok(out)
            }
            ExprKind::SizeofType(ty) => match consteval::size_of_ty(ty) {
                Some(n) => Ok(Value::Int(CInt::new(n as i128, SIZE_T))),
                None => Err(stop_unsupported(
                    "`sizeof` applied to the incomplete type `void`",
                    loc,
                )),
            },
            ExprKind::SizeofExpr(inner) => {
                // The operand is not evaluated (§6.5.3.4:2); only its
                // type is computed.
                match self.sizeof_expr_bytes(*inner) {
                    Some(n) => Ok(Value::Int(CInt::new(n as i128, SIZE_T))),
                    None => Err(stop_unsupported(
                        "the type of this `sizeof` operand is outside the modeled semantics",
                        loc,
                    )),
                }
            }
            ExprKind::Binary(op, l, r) => {
                let start = self.fp.len();
                let lv = self.eval(*l)?;
                let mid = self.fp.len();
                let rv = self.eval(*r)?;
                self.check_unsequenced(start, mid, loc)?;
                let lv = self.use_value(lv, loc)?;
                let rv = self.use_value(rv, loc)?;
                self.apply_binop(*op, lv, rv, loc)
            }
            ExprKind::LogicalAnd(l, r) => {
                let lv = self.eval(*l)?;
                // Sequence point after the first operand (§6.5.13:4).
                if !self.truthy(lv, loc)? {
                    return Ok(Value::Int(CInt::int(0)));
                }
                let rv = self.eval(*r)?;
                let t = self.truthy(rv, loc)?;
                Ok(Value::Int(CInt::int(t as i64)))
            }
            ExprKind::LogicalOr(l, r) => {
                let lv = self.eval(*l)?;
                if self.truthy(lv, loc)? {
                    return Ok(Value::Int(CInt::int(1)));
                }
                let rv = self.eval(*r)?;
                let t = self.truthy(rv, loc)?;
                Ok(Value::Int(CInt::int(t as i64)))
            }
            ExprKind::Conditional(c, t, f) => {
                let cv = self.eval(*c)?;
                let branch = if self.truthy(cv, loc)? { *t } else { *f };
                let v = self.eval(branch)?;
                // §6.5.15:5 — with arithmetic operands the result has
                // the *common* type of both branches, even though only
                // one is evaluated: `1 ? -1 : 0u` is UINT_MAX, and
                // `0 ? 0 : (short)0` is an `int`. The branch types come
                // from the same no-eval type walk `sizeof` uses, so the
                // value and `sizeof(e ? a : b)` can never disagree.
                if let Value::Int(n) = v {
                    if let (Some(SizeofTy::Scalar(x)), Some(SizeofTy::Scalar(y))) = (
                        self.sizeof_ty_of(*t).map(decay),
                        self.sizeof_ty_of(*f).map(decay),
                    ) {
                        let common = IntTy::usual_arith(x, y);
                        return Ok(Value::Int(self.convert_int(n, common, loc)));
                    }
                }
                Ok(v)
            }
            ExprKind::Comma(l, r) => {
                self.eval(*l)?;
                self.eval(*r)
            }
            ExprKind::Assign(place, op, rhs) => self.eval_assign(*place, *op, *rhs, loc),
            ExprKind::PreIncDec(place, delta) => {
                let (_, new) = self.eval_incdec(*place, *delta, loc)?;
                Ok(new) // prefix yields the new value
            }
            ExprKind::PostIncDec(place, delta) => {
                let (old, _) = self.eval_incdec(*place, *delta, loc)?;
                Ok(old) // postfix yields the old value
            }
            ExprKind::Deref(inner) => {
                let p = self.eval_pointer(*inner, loc)?;
                self.read_typed(p, loc)
            }
            ExprKind::AddrOf(inner) => {
                let p = self.eval_place(*inner)?;
                // `&a` on an array designator is the one place an array
                // does not decay (§6.3.2.1:3); its result would have
                // array-pointer type, which the subset cannot express.
                // Reject it rather than silently meaning `&a[0]` — that
                // reinterpretation is what lets `*&a = 5` or `(&a)[0]`
                // dodge the modifiable-lvalue rule.
                if self.is_designator(*inner) && self.obj_is_array(p.obj) {
                    return Err(stop_unsupported(
                        format!(
                            "`&{}` has array-pointer type, which is outside the subset",
                            self.object_name(p.obj)
                        ),
                        loc,
                    ));
                }
                Ok(Value::Ptr(p))
            }
            ExprKind::Index(base, idx) => {
                let p = self.eval_index_place(*base, *idx, loc)?;
                self.read_typed(p, loc)
            }
            ExprKind::Call(name, args) => self.eval_call(*name, args, loc),
            ExprKind::Cast(ty, inner) => self.eval_cast(ty, *inner, loc),
        }
    }

    /// A cast `( type-name ) expr` (§6.5.4): integer conversion
    /// (§6.3.1.3, with a note when implementation-defined), pointer
    /// reinterpretation (§6.3.2.3:7 — misalignment is undefined *at the
    /// conversion*), or a value-discarding `(void)`.
    fn eval_cast(&mut self, ty: &Ty, inner: ExprId, loc: SourceLoc) -> EResult<Value> {
        let v = self.eval(inner)?;
        match ty {
            // `(void)e` discards the value (§6.3.2.2:2); the result is a
            // void expression whose (nonexistent) value must not be used.
            Ty::Void => Ok(Value::Missing(UbKind::VoidValueUsed)),
            Ty::Int(t) => match self.use_value(v, loc)? {
                Value::Int(c) => Ok(Value::Int(self.convert_int(c, *t, loc))),
                Value::Ptr(_) => Err(stop_unsupported(
                    "pointer-to-integer casts are outside the modeled semantics \
                     (pointers have no numeric address here)",
                    loc,
                )),
                Value::Missing(_) => unreachable!(),
            },
            Ty::Ptr(pointee) => match self.use_value(v, loc)? {
                // The null pointer constant converts to any pointer type
                // (§6.3.2.3:3).
                Value::Int(c) if c.is_zero() => Ok(Value::Int(CInt::int(0))),
                Value::Int(_) => Err(stop_unsupported(
                    "integer-to-pointer casts are outside the modeled semantics",
                    loc,
                )),
                Value::Ptr(p) => Ok(Value::Ptr(self.convert_pointer(
                    p,
                    pointee_of_ty(pointee),
                    loc,
                )?)),
                Value::Missing(_) => unreachable!(),
            },
        }
    }

    /// Whether `e` is a bare identifier reference (resolved or not) — the
    /// designator cases for the array-decay and modifiable-lvalue rules.
    fn is_designator(&self, e: ExprId) -> bool {
        matches!(
            self.unit.expr(e).kind,
            ExprKind::Ident(_) | ExprKind::Slot(_, _)
        )
    }

    /// The *type* of a `sizeof` operand, computed without evaluating it
    /// (§6.5.3.4:2), or `None` when the engine cannot name it (pointee
    /// types of arbitrary lvalues are not tracked dynamically).
    fn sizeof_ty_of(&self, e: ExprId) -> Option<SizeofTy> {
        use SizeofTy::*;
        match &self.unit.expr(e).kind {
            ExprKind::IntLit(c) => Some(Scalar(c.ty)),
            ExprKind::Slot(slot, _) => {
                let obj = self.slot_object(*slot)?;
                if self.obj_is_array(obj) {
                    // An array designator under sizeof does not decay
                    // (§6.3.2.1:3): the result is the whole array's size —
                    // which in the byte model simply *is* its byte length.
                    // (Stale-safe: sizeof does not evaluate its operand,
                    // so a recycled slot answers from its tombstone.)
                    Some(Bytes(self.obj_len(obj) as u64))
                } else {
                    match self.obj_elem(obj) {
                        Elem::Scalar(t) => Some(Scalar(t)),
                        Elem::Ptr(_) => Some(Pointer),
                        Elem::Untyped => None,
                    }
                }
            }
            // A cast's type is right there in the node (§6.5.4).
            ExprKind::Cast(ty, _) => match ty {
                Ty::Void => None,
                Ty::Int(t) => Some(Scalar(*t)),
                Ty::Ptr(_) => Some(Pointer),
            },
            ExprKind::Unary(op, a) => match op {
                UnaryOp::Not => Some(Scalar(IntTy::Int)),
                UnaryOp::Neg | UnaryOp::BitNot => match self.sizeof_ty_of(*a)? {
                    Scalar(t) => Some(Scalar(t.promote())),
                    _ => None,
                },
            },
            ExprKind::Binary(op, a, b) => {
                use BinOp::*;
                match op {
                    Lt | Le | Gt | Ge | Eq | Ne => Some(Scalar(IntTy::Int)),
                    // §6.5.7:3 — the result type is the promoted left
                    // operand's.
                    Shl | Shr => match self.sizeof_ty_of(*a)? {
                        Scalar(t) => Some(Scalar(t.promote())),
                        _ => None,
                    },
                    // Arrays decay in every context except as the direct
                    // sizeof operand (§6.3.2.1:3), so an operand typed
                    // `Bytes` participates as a pointer here.
                    _ => match (decay(self.sizeof_ty_of(*a)?), decay(self.sizeof_ty_of(*b)?)) {
                        (Scalar(x), Scalar(y)) => Some(Scalar(IntTy::usual_arith(x, y))),
                        (Pointer, Scalar(_)) | (Scalar(_), Pointer) if matches!(op, Add | Sub) => {
                            Some(Pointer)
                        }
                        _ => None,
                    },
                }
            }
            ExprKind::LogicalAnd(_, _) | ExprKind::LogicalOr(_, _) => Some(Scalar(IntTy::Int)),
            ExprKind::Conditional(_, t, f) => {
                match (decay(self.sizeof_ty_of(*t)?), decay(self.sizeof_ty_of(*f)?)) {
                    (Scalar(x), Scalar(y)) => Some(Scalar(IntTy::usual_arith(x, y))),
                    (Pointer, Pointer) => Some(Pointer),
                    _ => None,
                }
            }
            ExprKind::AddrOf(_) => Some(Pointer),
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => Some(Scalar(SIZE_T)),
            ExprKind::Comma(_, b) => Some(decay(self.sizeof_ty_of(*b)?)),
            ExprKind::Call(name, _) => {
                let f = self.unit.function(*name)?;
                if f.returns_void {
                    None
                } else if f.ret_ptr > 0 {
                    Some(Pointer)
                } else {
                    Some(Scalar(f.ret_scalar))
                }
            }
            _ => None,
        }
    }

    /// `sizeof` of an expression operand, in bytes.
    fn sizeof_expr_bytes(&self, e: ExprId) -> Option<u64> {
        Some(match self.sizeof_ty_of(e)? {
            SizeofTy::Scalar(t) => t.size_bytes(),
            SizeofTy::Pointer => PTR_BYTES,
            SizeofTy::Bytes(n) => n,
        })
    }

    /// Evaluate an expression that must produce a usable pointer.
    fn eval_pointer(&mut self, e: ExprId, loc: SourceLoc) -> EResult<Pointer> {
        let v = self.eval(e)?;
        match self.use_value(v, loc)? {
            Value::Ptr(p) => Ok(p),
            Value::Int(c) if c.is_zero() => Err(self.ub(
                UbKind::NullDereference,
                loc,
                "dereference of a null pointer",
            )),
            Value::Int(c) => Err(self.ub(
                UbKind::NullDereference,
                loc,
                format!("dereference of invalid pointer value {c}"),
            )),
            Value::Missing(_) => unreachable!(),
        }
    }

    /// Evaluate an lvalue to the place it designates. No byte is
    /// accessed; accesses happen in `read_typed`/`write_typed`.
    fn eval_place(&mut self, e: ExprId) -> EResult<Pointer> {
        let unit = self.unit;
        let expr = unit.expr(e);
        let loc = expr.loc;
        self.tick(loc)?;
        match &expr.kind {
            ExprKind::Ident(sym) => Err(stop_unsupported(
                format!("use of undeclared identifier `{}`", self.name(*sym)),
                loc,
            )),
            ExprKind::Slot(slot, sym) => match self.slot_object(*slot) {
                Some(obj) => Ok(self.designator_pointer(obj)),
                None => Err(stop_unsupported(
                    format!(
                        "use of `{}` before its declaration executed",
                        self.name(*sym)
                    ),
                    loc,
                )),
            },
            ExprKind::Deref(inner) => self.eval_pointer(*inner, loc),
            ExprKind::Index(base, idx) => self.eval_index_place(*base, *idx, loc),
            _ => Err(stop_unsupported("expression is not an lvalue", loc)),
        }
    }

    fn eval_index_place(&mut self, base: ExprId, idx: ExprId, loc: SourceLoc) -> EResult<Pointer> {
        let start = self.fp.len();
        let bp = self.eval_pointer(base, loc)?;
        let mid = self.fp.len();
        let iv = self.eval(idx)?;
        self.check_unsequenced(start, mid, loc)?;
        let i = self.as_int(iv, loc)?.math();
        self.pointer_add(bp, i, loc)
    }

    /// `p + delta` with the §6.5.6:8 in-bounds-or-one-past rule, at byte
    /// granularity: the delta counts *elements* and scales by the
    /// pointee size, and the resulting byte offset must stay within
    /// `[0, len]` (one past the end preserved). The delta is a
    /// mathematical value (any integer type may subscript); an offset
    /// outside the object is reported before it could wrap.
    fn pointer_add(&mut self, p: Pointer, delta: i128, loc: SourceLoc) -> EResult<Pointer> {
        self.check_live(p, loc)?;
        let Some(esize) = p.ty.size() else {
            return Err(stop_unsupported("arithmetic on a `void *`", loc));
        };
        // `check_live` passed above, so bare-slot indexing is sound.
        let len = self.objects[obj_slot(p.obj)].bytes.len() as i128;
        let off = p.off as i128 + delta * esize as i128;
        if off < 0 || off > len {
            return Err(self.ub(
                UbKind::PointerArithmeticOutOfBounds,
                loc,
                format!(
                    "byte offset {} of `{}` ({} bytes; one-past-the-end allowed)",
                    off,
                    self.object_name(p.obj),
                    len
                ),
            ));
        }
        Ok(Pointer {
            obj: p.obj,
            off: off as i64,
            ty: p.ty,
        })
    }

    fn apply_binop(&mut self, op: BinOp, l: Value, r: Value, loc: SourceLoc) -> EResult<Value> {
        use BinOp::*;
        match (l, r) {
            (Value::Int(a), Value::Int(b)) => self.int_binop(op, a, b, loc),
            // Pointer arithmetic and comparison.
            (Value::Ptr(p), Value::Int(n)) if op == Add => {
                Ok(Value::Ptr(self.pointer_add(p, n.math(), loc)?))
            }
            (Value::Int(n), Value::Ptr(p)) if op == Add => {
                Ok(Value::Ptr(self.pointer_add(p, n.math(), loc)?))
            }
            (Value::Ptr(p), Value::Int(n)) if op == Sub => {
                Ok(Value::Ptr(self.pointer_add(p, -n.math(), loc)?))
            }
            (Value::Ptr(a), Value::Ptr(b)) if op == Sub => {
                self.check_live(a, loc)?;
                self.check_live(b, loc)?;
                if a.obj != b.obj {
                    return Err(self.ub(
                        UbKind::PointerSubtractionDifferentObjects,
                        loc,
                        format!(
                            "pointers into `{}` and `{}`",
                            self.object_name(a.obj),
                            self.object_name(b.obj)
                        ),
                    ));
                }
                // The byte distance divides by the element size
                // (§6.5.6:9 subtracts element indices, not addresses).
                let (Some(sa), Some(sb)) = (a.ty.size(), b.ty.size()) else {
                    return Err(stop_unsupported("subtraction of `void *` pointers", loc));
                };
                if sa != sb {
                    return Err(stop_unsupported(
                        "subtraction of pointers with different pointee sizes",
                        loc,
                    ));
                }
                let d = (a.off - b.off) as i128;
                if d % sa as i128 != 0 {
                    return Err(stop_unsupported(
                        "subtraction of pointers that are not a whole number of \
                         elements apart",
                        loc,
                    ));
                }
                // The difference has type ptrdiff_t — `long` on LP64.
                Ok(Value::Int(CInt::new(d / sa as i128, IntTy::Long)))
            }
            (Value::Ptr(a), Value::Ptr(b)) if matches!(op, Lt | Le | Gt | Ge) => {
                self.check_live(a, loc)?;
                self.check_live(b, loc)?;
                if a.obj != b.obj {
                    return Err(self.ub(
                        UbKind::PointerCompareDifferentObjects,
                        loc,
                        format!(
                            "pointers into `{}` and `{}`",
                            self.object_name(a.obj),
                            self.object_name(b.obj)
                        ),
                    ));
                }
                let t = match op {
                    Lt => a.off < b.off,
                    Le => a.off <= b.off,
                    Gt => a.off > b.off,
                    _ => a.off >= b.off,
                };
                Ok(Value::Int(CInt::int(t as i64)))
            }
            (Value::Ptr(a), Value::Ptr(b)) if matches!(op, Eq | Ne) => {
                self.check_live(a, loc)?;
                self.check_live(b, loc)?;
                // Equality is by address (§6.5.9:6): the pointee type a
                // cast attached does not change where a pointer points.
                let same = a.same_address(b);
                Ok(Value::Int(CInt::int(
                    (if op == Eq { same } else { !same }) as i64,
                )))
            }
            (Value::Ptr(p), Value::Int(n)) | (Value::Int(n), Value::Ptr(p))
                if matches!(op, Eq | Ne) =>
            {
                self.check_live(p, loc)?;
                // A valid pointer never equals the null constant; comparing
                // with a nonzero integer is outside the subset's types.
                if !n.is_zero() {
                    return Err(stop_unsupported(
                        "comparison of a pointer with a nonzero integer",
                        loc,
                    ));
                }
                Ok(Value::Int(CInt::int((op == Ne) as i64)))
            }
            _ => Err(stop_unsupported(
                "operator applied to incompatible operand types",
                loc,
            )),
        }
    }

    /// Integer arithmetic, delegated to the shared typed core in
    /// [`crate::consteval`] so the run-time and translation-time phases
    /// agree on every undefined case — at the right width.
    fn int_binop(&self, op: BinOp, a: CInt, b: CInt, loc: SourceLoc) -> EResult<Value> {
        match consteval::arith(op, a, b) {
            Ok(v) => Ok(Value::Int(v)),
            Err((kind, detail)) => Err(self.ub(kind, loc, detail)),
        }
    }

    /// An array designator is not a modifiable lvalue (§6.3.2.1:1);
    /// `a = …` and `a++` on an array name are rejected rather than
    /// silently treated as element-0 stores. Spellings through `&a`
    /// (`*&a`, `(&a)[0]`) are already rejected when `&a` is evaluated.
    fn check_modifiable(&self, place: ExprId, p: Pointer, loc: SourceLoc) -> EResult<()> {
        if self.is_designator(place) && self.obj_is_array(p.obj) {
            return Err(stop_unsupported(
                format!(
                    "array `{}` is not a modifiable lvalue",
                    self.object_name(p.obj)
                ),
                loc,
            ));
        }
        Ok(())
    }

    fn eval_assign(
        &mut self,
        place: ExprId,
        op: Option<BinOp>,
        rhs: ExprId,
        loc: SourceLoc,
    ) -> EResult<Value> {
        let start = self.fp.len();
        let p = self.eval_place(place)?;
        self.check_modifiable(place, p, loc)?;
        let mid = self.fp.len();
        let rv = self.eval(rhs)?;
        // Value computations of the two operands are unsequenced with each
        // other (§6.5.16:3)…
        self.check_unsequenced(start, mid, loc)?;
        let rv = self.use_value(rv, loc)?;
        let stored = match op {
            None => rv,
            Some(op) => {
                // Compound assignment reads the place once; that read is a
                // value computation sequenced before the update.
                let old = self.read_typed(p, loc)?;
                let old = self.use_value(old, loc)?;
                self.apply_binop(op, old, rv, loc)?
            }
        };
        // …while the update's side effect is sequenced only after those
        // value computations: it still conflicts with any *other* write to
        // the same scalar in either operand (`x = x++`). The store
        // converts the value to the lvalue's type (§6.5.16.1:2) and that
        // converted value is the expression's result (§6.5.16:3).
        self.check_update_conflict(start, p, loc, "assignment to")?;
        let stored = self.write_typed(p, stored, loc)?;
        Ok(stored)
    }

    /// Shared engine for `++`/`--`; returns (old, new).
    fn eval_incdec(
        &mut self,
        place: ExprId,
        delta: i64,
        loc: SourceLoc,
    ) -> EResult<(Value, Value)> {
        let start = self.fp.len();
        let p = self.eval_place(place)?;
        self.check_modifiable(place, p, loc)?;
        let old = self.read_typed(p, loc)?;
        let old = self.use_value(old, loc)?;
        let new = match old {
            Value::Int(n) => {
                // `x++` is `x += 1` (§6.5.2.4:2): the addition happens at
                // the promoted type through the shared core, then the
                // result converts back to the object's type on store.
                let one = CInt::int(delta);
                match consteval::arith(BinOp::Add, n, one) {
                    Ok(r) => Value::Int(r),
                    Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
                }
            }
            Value::Ptr(ptr) => Value::Ptr(self.pointer_add(ptr, delta as i128, loc)?),
            Value::Missing(_) => unreachable!(),
        };
        self.check_update_conflict(
            start,
            p,
            loc,
            if delta > 0 {
                "increment of"
            } else {
                "decrement of"
            },
        )?;
        // The store converts to the lvalue's type (`unsigned char c =
        // 255; c++` wraps to 0, defined); prefix ++ yields that
        // converted value.
        let new = self.write_typed(p, new, loc)?;
        Ok((old, new))
    }

    fn eval_call(&mut self, name: Symbol, args: &'a [ExprId], loc: SourceLoc) -> EResult<Value> {
        // Argument evaluations are unsequenced with each other
        // (§6.5.2.2:10), so each new argument's footprint is checked
        // against everything the previous arguments did.
        let unit = self.unit;
        let fp_start = self.fp.len();
        let argv_base = self.args.len();
        for &a in args {
            let mid = self.fp.len();
            let v = self.eval(a)?;
            self.check_unsequenced(fp_start, mid, loc)?;
            let v = self.use_value(v, unit.expr(a).loc)?;
            self.args.push(v);
        }
        let nargs = self.args.len() - argv_base;
        let target = unit.func_by_symbol.get(name.index()).copied().flatten();
        if let Some(func_idx) = target {
            let func = &unit.functions[func_idx as usize];
            if func.params.len() != nargs {
                return Err(self.ub(
                    UbKind::CallWrongArity,
                    loc,
                    format!(
                        "`{}` takes {} argument(s), called with {}",
                        self.name(name),
                        func.params.len(),
                        nargs
                    ),
                ));
            }
            // The callee's effects are indeterminately sequenced with the
            // rest of the caller's expression, not unsequenced: they do
            // not join the caller's footprint (`call` truncates to its
            // mark).
            let (ret, _) = self.call(func_idx, argv_base, loc)?;
            return Ok(ret);
        }
        if name == kw::MALLOC {
            if nargs != 1 {
                return Err(self.ub(
                    UbKind::CallWrongArity,
                    loc,
                    format!("`malloc` takes 1 argument, called with {nargs}"),
                ));
            }
            let v = self.args[argv_base];
            self.args.truncate(argv_base);
            return self.builtin_malloc(v, loc);
        }
        if name == kw::FREE {
            if nargs != 1 {
                return Err(self.ub(
                    UbKind::CallWrongArity,
                    loc,
                    format!("`free` takes 1 argument, called with {nargs}"),
                ));
            }
            let v = self.args[argv_base];
            self.args.truncate(argv_base);
            return self.builtin_free(v, loc);
        }
        Err(self.ub(
            UbKind::CallNonFunction,
            loc,
            format!(
                "`{}` does not designate a function in this translation unit",
                self.name(name)
            ),
        ))
    }

    /// `malloc(n)` over an already-evaluated argument value — shared
    /// verbatim by the tree-walker and the VM's `Malloc` op so the
    /// diagnostics cannot drift between engines.
    fn builtin_malloc(&mut self, v: Value, loc: SourceLoc) -> EResult<Value> {
        let n = self.as_int(v, loc)?.math();
        if n < 0 {
            return Err(self.ub(
                UbKind::InvalidLibraryArgument,
                loc,
                format!("malloc({n}) with a negative size"),
            ));
        }
        if n > MAX_BYTES {
            return Err(stop_unsupported(
                format!("malloc({n}) exceeds the engine's memory budget"),
                loc,
            ));
        }
        // `malloc(n)` allocates `n` *bytes* — the model finally
        // agrees with `sizeof`. `malloc(0)` yields a distinct
        // zero-size allocation: legal to `free`, undefined to
        // dereference (any access overruns its zero bytes).
        // The serial in the name is assigned by `alloc` itself
        // (allocation order), so the placeholder here is never shown.
        let obj = self.alloc(ObjName::Heap(0), n as usize, true, true, Elem::Untyped);
        Ok(Value::Ptr(Pointer {
            obj,
            off: 0,
            ty: PointeeTy::Void,
        }))
    }

    /// `free(p)` over an already-evaluated argument value — shared
    /// verbatim by the tree-walker and the VM's `Free` op.
    fn builtin_free(&mut self, v: Value, loc: SourceLoc) -> EResult<Value> {
        match v {
            // free(NULL) is a no-op (§7.22.3.3:2).
            Value::Int(c) if c.is_zero() => Ok(Value::Missing(UbKind::VoidValueUsed)),
            Value::Int(c) => Err(self.ub(
                UbKind::FreeNonHeapPointer,
                loc,
                format!("free() of integer value {c}"),
            )),
            Value::Ptr(p) => {
                // Stale references (the slot was recycled since `p`
                // was formed) answer from the tombstone: the original
                // heap-ness drives the cascade, and stale ⇒ the
                // original lifetime already ended.
                let (heap, alive) = match self.resolved(p.obj) {
                    Some(o) => (o.heap, o.alive),
                    None => (self.tombstone(p.obj).heap, false),
                };
                if !heap {
                    return Err(self.ub(
                        UbKind::FreeNonHeapPointer,
                        loc,
                        format!(
                            "free() of `{}`, which is not heap-allocated",
                            self.object_name(p.obj)
                        ),
                    ));
                }
                if !alive {
                    return Err(self.ub(
                        UbKind::DoubleFree,
                        loc,
                        format!("`{}` was already freed", self.object_name(p.obj)),
                    ));
                }
                if p.off != 0 {
                    return Err(self.ub(
                        UbKind::FreeInteriorPointer,
                        loc,
                        format!(
                            "free() of `{}` at interior offset {}",
                            self.object_name(p.obj),
                            p.off
                        ),
                    ));
                }
                // Current and alive: bare-slot access is sound.
                let slot = obj_slot(p.obj);
                self.objects[slot].alive = false;
                if self.profile_enabled {
                    self.prof.note_dealloc(self.objects[slot].bytes.len(), true);
                }
                // Freed heap slots recycle through the same queue as
                // automatic objects — steady-state malloc/free loops
                // reuse one slot's storage.
                self.retire_slot(slot);
                Ok(Value::Missing(UbKind::VoidValueUsed))
            }
            Value::Missing(_) => unreachable!(),
        }
    }

    // ----- statements -----

    /// Execute a call to `functions[func_idx]` whose argument values sit
    /// at `args[argv_base..]` on the shared argument stack.
    fn call(
        &mut self,
        func_idx: u32,
        argv_base: usize,
        loc: SourceLoc,
    ) -> EResult<(Value, SourceLoc)> {
        let unit = self.unit;
        let func = &unit.functions[func_idx as usize];
        if self.frames.len() + self.tail_depth >= self.limits.max_call_depth {
            return Err(stop_unsupported("call depth limit exceeded", loc));
        }
        // The frame is bound from its precomputed [`FramePlan`]: the slot
        // region is a stack-pointer bump over the shared (pooled) stack,
        // and each parameter's element type/size/fast-store eligibility
        // was derived from the AST once at construction, not per call.
        let plan = &self.frame_plans[func_idx as usize];
        let (n_slots, nparams) = (plan.n_slots, plan.params.len());
        let slot_base = self.slots.len();
        let slot_top = slot_base + n_slots as usize;
        if self.profile_enabled {
            // A call at or under the high-water mark re-binds storage an
            // earlier frame already paid for.
            if slot_top <= self.slots_high_water {
                self.prof.frame_pool_hits += 1;
            } else {
                self.prof.frame_pool_misses += 1;
            }
        }
        if slot_top > self.slots_high_water {
            self.slots_high_water = slot_top;
        }
        self.slots.resize(slot_top, SLOT_NONE);
        let created_base = self.created.len();
        let fp_mark = self.fp.len();
        self.frames.push(Frame {
            func: func_idx,
            returns_void: func.returns_void,
            slot_base,
            tail_calls: 0,
        });
        for i in 0..nparams {
            let pp = self.frame_plans[func_idx as usize].params[i];
            let arg = self.args[argv_base + i];
            // Argument passing is assignment to the parameter
            // (§6.5.2.2:7): the value converts to the declared type — the
            // same typed store every assignment performs.
            let obj = self.alloc(
                ObjName::Sym(pp.sym),
                pp.size as usize,
                false,
                false,
                pp.elem,
            );
            self.slots[slot_base + i] = obj;
            // A scalar argument takes a one-word converted store: the
            // object is fresh, so every check the typed store would run
            // is vacuously true, and the store's footprint entry would
            // sit below every mark the callee can consult.
            if let (Some(t), Value::Int(c)) = (pp.scalar_fast, arg) {
                let stored = self.convert_int(c, t, loc);
                self.objects[obj_slot(obj)]
                    .bytes
                    .store(0, pp.size as usize, stored.bits());
                continue;
            }
            let place = self.designator_pointer(obj);
            self.write_typed(place, arg, loc)?;
        }
        self.args.truncate(argv_base);
        let mut result = (
            Value::Missing(if func.returns_void {
                UbKind::VoidValueUsed
            } else {
                UbKind::MissingReturnValueUsed
            }),
            func.loc,
        );
        let mut stopped = None;
        match self.run_body(func_idx) {
            Ok(Some((v, l))) => {
                // The returned value converts to the function's return
                // type (§6.8.6.4:3): integer conversion for scalar
                // returns, pointee adoption (alignment-checked,
                // §6.3.2.3:7) for pointer returns.
                let v = match v {
                    Value::Int(c) if !func.returns_void && func.ret_ptr == 0 => {
                        Value::Int(self.convert_int(c, func.ret_scalar, l))
                    }
                    Value::Ptr(ptr) if func.ret_ptr > 0 => {
                        let pointee = if func.ret_ptr > 1 {
                            PointeeTy::Ptr
                        } else if func.returns_void {
                            PointeeTy::Void
                        } else {
                            PointeeTy::Scalar(func.ret_scalar)
                        };
                        Value::Ptr(self.convert_pointer(ptr, pointee, l)?)
                    }
                    v => v,
                };
                result = (v, l);
            }
            Ok(None) => {}
            Err(stop) => stopped = Some(stop),
        }
        // Lifetimes of the frame's automatic objects end now (§6.2.4:2),
        // even when unwinding on an error, so diagnostics stay accurate.
        self.kill_created_from(created_base);
        self.slots.truncate(slot_base);
        // The callee's accesses are indeterminately sequenced with the
        // caller's expression: drop them from the shared arena.
        self.fp.truncate(fp_mark);
        let popped = self.frames.pop().expect("frame pushed above");
        self.tail_depth -= popped.tail_calls as usize;
        match stopped {
            Some(stop) => Err(stop),
            None => Ok(result),
        }
    }

    /// Run a function body through the selected engine, between the
    /// shared prologue and epilogue in [`Interp::call`]. `Ok(Some)` is an
    /// executed `return` (value and its position); `Ok(None)` is falling
    /// off the closing `}`.
    fn run_body(&mut self, func_idx: u32) -> EResult<Option<(Value, SourceLoc)>> {
        let func = &self.unit.functions[func_idx as usize];
        if self.engine == Engine::Bytecode {
            if let Some(code) = &self.code {
                let code = Rc::clone(code);
                let fc = &code.funcs[func_idx as usize];
                if !fc.tree_only {
                    return self.run_ops(&code, func_idx);
                }
            }
        }
        match self.exec_block_entry(&func.body, None)? {
            Flow::Return(v, l) => Ok(Some((v, l))),
            // A `goto` no enclosing block caught: its label is nowhere in
            // this function. The resolver rejects this at translation
            // time; an engine-level stop keeps the eval layer honest.
            Flow::Goto(sym, loc) => Err(stop_unsupported(
                format!(
                    "`goto {}` targets no label in this function",
                    self.name(sym)
                ),
                loc,
            )),
            // A stray `break`/`continue` (or plain fall-through) reaches
            // the closing brace.
            Flow::Normal | Flow::Break | Flow::Continue => Ok(None),
        }
    }

    fn exec_block(&mut self, body: &'a [StmtId]) -> EResult<Flow> {
        self.exec_block_entry(body, None)
    }

    /// Execute a block, optionally entering at a label (`entry`) instead
    /// of the top. A `goto` coming out of a statement whose target is in
    /// this block re-seeks within the block *without* ending its
    /// lifetimes — a jump within a block does not leave it (§6.2.4:6) —
    /// while a foreign target unwinds like `break`, killing this block's
    /// objects on the way out.
    fn exec_block_entry(&mut self, body: &'a [StmtId], entry: Option<Symbol>) -> EResult<Flow> {
        let created_base = self.created.len();
        let mut entry = entry;
        let mut flow = Flow::Normal;
        let mut stopped = None;
        'restart: loop {
            let mut skipping = entry.take();
            for &s in body {
                let r = match skipping {
                    Some(target) => {
                        if !stmt_has_label(self.unit, s, target) {
                            continue;
                        }
                        skipping = None;
                        self.seek_stmt(s, target)
                    }
                    None => self.exec_stmt(s),
                };
                match r {
                    Ok(Flow::Normal) => {}
                    Ok(Flow::Goto(sym, loc)) => {
                        if body.iter().any(|&t| stmt_has_label(self.unit, t, sym)) {
                            entry = Some(sym);
                            continue 'restart;
                        }
                        flow = Flow::Goto(sym, loc);
                        break;
                    }
                    Ok(other) => {
                        flow = other;
                        break;
                    }
                    Err(stop) => {
                        stopped = Some(stop);
                        break;
                    }
                }
            }
            break;
        }
        // Leaving the block ends the lifetime of everything declared in it
        // (§6.2.4:6): pointers that escaped the block are now dangling.
        self.kill_created_from(created_base);
        match stopped {
            Some(stop) => Err(stop),
            None => Ok(flow),
        }
    }

    /// Execute statement `s` by jumping to the label `target` known to be
    /// inside it: nothing on the way in is evaluated (§6.8.6.1 — a jump
    /// transfers control directly, so loop conditions and `switch`
    /// dispatch are skipped; declarations jumped over leave their slots
    /// unbound).
    fn seek_stmt(&mut self, s: StmtId, target: Symbol) -> EResult<Flow> {
        let unit = self.unit;
        let stmt = unit.stmt(s);
        self.tick(stmt_loc(unit, stmt))?;
        match stmt {
            Stmt::Label(name, inner, _) if *name == target => self.exec_stmt(*inner),
            Stmt::Label(_, inner, _) | Stmt::Case(_, inner, _) | Stmt::Default(inner, _) => {
                self.seek_stmt(*inner, target)
            }
            Stmt::If(_, then, els) => {
                if stmt_has_label(unit, *then, target) {
                    self.seek_stmt(*then, target)
                } else {
                    let els = els.expect("seek target is under this `if`");
                    self.seek_stmt(els, target)
                }
            }
            Stmt::Block(body, _) => self.exec_block_entry(body, Some(target)),
            Stmt::While(cond, body) => self.run_while(*cond, *body, Some(target)),
            Stmt::For(_, cond, step, body) => {
                // The init clause is jumped over; the loop's scope still
                // opens (and closes when the loop is left).
                let created_base = self.created.len();
                let result = self.run_for(*cond, *step, *body, Some(target));
                self.kill_created_from(created_base);
                result
            }
            Stmt::Switch(_, body, _) => {
                // Jumping to a label inside a `switch` body enters it
                // without dispatching on the controlling expression.
                match self.seek_stmt(*body, target)? {
                    Flow::Break => Ok(Flow::Normal),
                    flow => Ok(flow),
                }
            }
            _ => unreachable!("seek target label is not under this statement"),
        }
    }

    /// The `while` loop engine; `entry` jumps into the body at a label
    /// for the first iteration (skipping the condition, §6.8.6.1).
    fn run_while(
        &mut self,
        cond: ExprId,
        body: StmtId,
        mut entry: Option<Symbol>,
    ) -> EResult<Flow> {
        let unit = self.unit;
        loop {
            let r = match entry.take() {
                Some(target) => self.seek_stmt(body, target)?,
                None => {
                    let v = self.eval_full(cond)?;
                    if !self.truthy(v, unit.expr(cond).loc)? {
                        return Ok(Flow::Normal);
                    }
                    self.exec_stmt(body)?
                }
            };
            match r {
                Flow::Break => return Ok(Flow::Normal),
                Flow::Return(v, l) => return Ok(Flow::Return(v, l)),
                Flow::Goto(sym, loc) => {
                    if stmt_has_label(unit, body, sym) {
                        // A jump back into this loop's body transfers
                        // control directly: no condition re-evaluation.
                        entry = Some(sym);
                    } else {
                        return Ok(Flow::Goto(sym, loc));
                    }
                }
                Flow::Normal | Flow::Continue => {}
            }
        }
    }

    fn exec_stmt(&mut self, s: StmtId) -> EResult<Flow> {
        let unit = self.unit;
        let stmt = unit.stmt(s);
        // Statements count toward the step limit too, so that loops whose
        // iterations evaluate no expressions (`for (;;) ;`) still hit
        // `max_steps` instead of spinning forever.
        self.tick(stmt_loc(unit, stmt))?;
        match stmt {
            Stmt::Empty(_) => Ok(Flow::Normal),
            Stmt::Decl(d) => {
                self.exec_decl(d)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                // A full expression: its footprint dies at the sequence
                // point that ends the statement (§6.8:4).
                self.eval_full(*e)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                let v = self.eval_full(*cond)?;
                if self.truthy(v, unit.expr(*cond).loc)? {
                    self.exec_stmt(*then)
                } else if let Some(els) = els {
                    self.exec_stmt(*els)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(cond, body) => self.run_while(*cond, *body, None),
            Stmt::For(init, cond, step, body) => {
                // The init declaration's scope is the whole loop; its
                // object dies when the loop is left.
                let created_base = self.created.len();
                let result = self.exec_for(*init, *cond, *step, *body);
                self.kill_created_from(created_base);
                result
            }
            Stmt::Return(e, loc) => {
                let v = match e {
                    Some(e) => {
                        let v = self.eval_full(*e)?;
                        self.use_value(v, *loc)?
                    }
                    // An explicit `return;` in a value-returning function
                    // carries §6.9.1:12's explicit-return form (catalog
                    // entry 78), distinct from reaching the closing brace;
                    // in a `void` function its (nonexistent) value is a
                    // void expression's (§6.3.2.2:1).
                    None => {
                        let void = self.frames.last().is_some_and(|f| f.returns_void);
                        Value::Missing(if void {
                            UbKind::VoidValueUsed
                        } else {
                            UbKind::ReturnWithoutValue
                        })
                    }
                };
                Ok(Flow::Return(v, *loc))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(body, _) => self.exec_block(body),
            Stmt::Switch(cond, body, loc) => self.exec_switch(*cond, *body, *loc),
            // Labels are transparent when reached sequentially; `switch`
            // dispatch is the only place they select anything.
            Stmt::Case(_, inner, _) | Stmt::Default(inner, _) | Stmt::Label(_, inner, _) => {
                self.exec_stmt(*inner)
            }
            // The goto unwinds through `Flow` until a block containing
            // the label catches it; translation-phase checks (labels.rs)
            // already rejected jumps into variably-modified scopes.
            Stmt::Goto(target, loc) => Ok(Flow::Goto(*target, *loc)),
        }
    }

    /// Execute a `switch` statement (§6.8.4.2): evaluate the controlling
    /// expression, select the matching `case` (or `default`) at the top
    /// level of the body, and run from there with ordinary fallthrough;
    /// `break` leaves the switch.
    fn exec_switch(&mut self, cond: ExprId, body: StmtId, loc: SourceLoc) -> EResult<Flow> {
        let unit = self.unit;
        let v = self.eval_full(cond)?;
        // §6.8.4.2:5 — the controlling expression undergoes the integer
        // promotions, and each case constant is *converted to the
        // promoted controlling type* before the comparison (so
        // `switch (u) case -1:` matches UINT_MAX for an unsigned
        // controlling expression, exactly as in real C).
        let ctrl = self.as_int(v, unit.expr(cond).loc)?.promoted();
        let Stmt::Block(items, _) = unit.stmt(body) else {
            // `switch (e) case K: stmt;` — a single (possibly labeled)
            // statement as the body.
            return match self.select_in_chain(body, ctrl)? {
                Some(s) => match self.exec_stmt(s)? {
                    Flow::Break => Ok(Flow::Normal),
                    flow => Ok(flow),
                },
                None => Ok(Flow::Normal),
            };
        };
        // Scan the top level of the body, descending through chains of
        // labels (`case 1: case 2: stmt`), for the case matching `v`;
        // remember the first `default:` as the fallback.
        let mut target = None;
        let mut default = None;
        'scan: for (i, &s) in items.iter().enumerate() {
            let mut cur = s;
            loop {
                match unit.stmt(cur) {
                    Stmt::Case(e, inner, _) => {
                        if self.case_matches(*e, ctrl)? {
                            target = Some(i);
                            break 'scan;
                        }
                        cur = *inner;
                    }
                    Stmt::Default(inner, _) => {
                        if default.is_none() {
                            default = Some(i);
                        }
                        cur = *inner;
                    }
                    Stmt::Label(_, inner, _) => cur = *inner,
                    _ => break,
                }
            }
        }
        let start = match target {
            Some(t) => t,
            None => {
                // No top-level case matched. A case hiding below the top
                // level (Duff-style) could still match `v` — falling back
                // to `default:` or skipping the body would be a *wrong
                // verdict*, so the engine must stop instead.
                if items.iter().any(|&s| self.hides_nested_case(s)) {
                    return Err(stop_unsupported(
                        "case labels below the top level of a switch body are \
                         outside the modeled semantics",
                        loc,
                    ));
                }
                match default {
                    Some(d) => d,
                    // Control jumps past the body (§6.8.4.2:7).
                    None => return Ok(Flow::Normal),
                }
            }
        };
        // Execute the tail of the body as a partial block: declarations
        // jumped over never execute (their slots stay unbound), and the
        // block's lifetimes end on exit as usual.
        match self.exec_block(&items[start..])? {
            Flow::Break => Ok(Flow::Normal),
            flow => Ok(flow),
        }
    }

    /// For a non-block `switch` body: walk the label chain wrapping the
    /// single statement and decide whether `v` selects it.
    fn select_in_chain(&mut self, s: StmtId, ctrl: CInt) -> EResult<Option<StmtId>> {
        let unit = self.unit;
        let mut cur = s;
        let mut matched_case = false;
        let mut saw_default = false;
        loop {
            match unit.stmt(cur) {
                Stmt::Case(e, inner, _) => {
                    matched_case = matched_case || self.case_matches(*e, ctrl)?;
                    cur = *inner;
                }
                Stmt::Default(inner, _) => {
                    saw_default = true;
                    cur = *inner;
                }
                Stmt::Label(_, inner, _) => cur = *inner,
                other => {
                    if matched_case {
                        return Ok(Some(cur));
                    }
                    // Without a matching chain case, a label nested
                    // deeper could still be the real dispatch target —
                    // stop rather than misjudge (even past a chain-level
                    // `default:`, which nested cases would outrank).
                    if stmt_contains_case(unit, other) {
                        return Err(stop_unsupported(
                            "case labels below the top level of a switch body are \
                             outside the modeled semantics",
                            stmt_loc(unit, other),
                        ));
                    }
                    return Ok(if saw_default { Some(cur) } else { None });
                }
            }
        }
    }

    /// Whether the case label `e` selects the (promoted) controlling
    /// value `ctrl`: the label's translation-time constant (§6.8.4.2:3,
    /// folded once and memoized — error outcomes abort execution, so
    /// only successful folds need caching) is converted to the promoted
    /// controlling type before the comparison (§6.8.4.2:5).
    fn case_matches(&mut self, e: ExprId, ctrl: CInt) -> EResult<bool> {
        let c = if let Some(&c) = self.case_values.get(&e.0) {
            c
        } else {
            match consteval::const_eval(self.unit, e) {
                Ok(c) => {
                    self.case_values.insert(e.0, c);
                    c
                }
                Err(ConstStop::NotConst(loc)) => {
                    return Err(self.ub(
                        UbKind::NonConstantCaseLabel,
                        loc,
                        "case label is not an integer constant expression",
                    ))
                }
                Err(ConstStop::Ub { kind, detail, loc }) => {
                    return Err(self.ub(kind, loc, format!("in a case label: {detail}")))
                }
            }
        };
        Ok(c.convert(ctrl.ty).0.math() == ctrl.math())
    }

    /// Whether a top-level switch-body item hides `case`/`default` labels
    /// below the label chain the dispatch scan walks.
    fn hides_nested_case(&self, s: StmtId) -> bool {
        let mut cur = s;
        loop {
            match self.unit.stmt(cur) {
                Stmt::Case(_, inner, _) | Stmt::Default(inner, _) | Stmt::Label(_, inner, _) => {
                    cur = *inner
                }
                other => return stmt_contains_case(self.unit, other),
            }
        }
    }

    fn exec_for(
        &mut self,
        init: Option<StmtId>,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: StmtId,
    ) -> EResult<Flow> {
        if let Some(init) = init {
            self.exec_stmt(init)?;
        }
        self.run_for(cond, step, body, None)
    }

    /// The `for` loop engine past its init clause; `entry` jumps into
    /// the body at a label for the first iteration (skipping the
    /// condition — the step and condition still run from then on).
    fn run_for(
        &mut self,
        cond: Option<ExprId>,
        step: Option<ExprId>,
        body: StmtId,
        mut entry: Option<Symbol>,
    ) -> EResult<Flow> {
        let unit = self.unit;
        loop {
            let r = match entry.take() {
                Some(target) => self.seek_stmt(body, target)?,
                None => {
                    if let Some(cond) = cond {
                        let v = self.eval_full(cond)?;
                        if !self.truthy(v, unit.expr(cond).loc)? {
                            return Ok(Flow::Normal);
                        }
                    }
                    self.exec_stmt(body)?
                }
            };
            match r {
                Flow::Break => return Ok(Flow::Normal),
                Flow::Return(v, l) => return Ok(Flow::Return(v, l)),
                Flow::Goto(sym, loc) => {
                    if stmt_has_label(unit, body, sym) {
                        // Direct transfer back into the body: neither the
                        // step nor the condition runs on the way.
                        entry = Some(sym);
                        continue;
                    }
                    return Ok(Flow::Goto(sym, loc));
                }
                Flow::Normal | Flow::Continue => {}
            }
            if let Some(step) = step {
                self.eval_full(step)?;
            }
        }
    }

    fn exec_decl(&mut self, d: &'a Decl) -> EResult<()> {
        if d.redeclaration {
            return Err(stop_unsupported(
                format!("redeclaration of `{}` in the same scope", self.name(d.name)),
                d.loc,
            ));
        }
        // An object declared with an incomplete type has no size to
        // allocate (§6.7:7) — the translation phase flags this, and the
        // dynamic semantics must get stuck on it too, not conjure a
        // placeholder object and run to a clean exit.
        if matches!(d.ty, Ty::Void) {
            return Err(self.ub(
                UbKind::IncompleteTypeObject,
                d.loc,
                format!(
                    "`{}` declared with incomplete type `void`",
                    self.name(d.name)
                ),
            ));
        }
        let unit = self.unit;
        let fp_mark = self.fp.len();
        let elem = elem_of_ty(&d.ty);
        let esize = elem.size() as usize;
        let count = match d.array_size {
            None => 1,
            Some(size) => {
                // A constant non-positive size is the *static* form of the
                // defect (§6.7.6.2:1); a computed one is the VLA form
                // (§6.7.6.2:5). `-1` or `1-2` are integer constant
                // expressions even though they are not literal tokens;
                // the resolver precomputed which applies.
                let v = self.eval_full(size)?;
                let n = self.as_int(v, unit.expr(size).loc)?.math();
                if n <= 0 {
                    let kind = if d.const_size {
                        UbKind::ArraySizeNotPositive
                    } else {
                        UbKind::VlaSizeNotPositive
                    };
                    return Err(self.ub(
                        kind,
                        d.loc,
                        format!("array `{}` declared with size {n}", self.name(d.name)),
                    ));
                }
                if n * esize as i128 > MAX_BYTES {
                    return Err(stop_unsupported(
                        format!(
                            "array `{}` of size {n} exceeds the engine's memory budget",
                            self.name(d.name)
                        ),
                        d.loc,
                    ));
                }
                n as usize
            }
        };
        let obj = self.alloc(
            ObjName::Sym(d.name),
            count * esize,
            false,
            d.array_size.is_some(),
            elem,
        );
        // The declared identifier's scope begins at the end of its
        // declarator (§6.2.1:7) — *before* the initializer, so that
        // `int x = x;` reads the new, indeterminate x, not an outer one.
        // The resolver mirrored this ordering; binding the slot here
        // makes it true dynamically.
        let slot_base = self.frames.last().expect("active frame").slot_base;
        self.slots[slot_base + d.slot.index()] = obj;
        let pointee = elem.pointee();
        if let Some(init) = d.init {
            let v = self.eval_full(init)?;
            let init_loc = unit.expr(init).loc;
            let v = self.use_value(v, init_loc)?;
            // Initialization converts like simple assignment (§6.7.9:11):
            // the same typed store, at byte offset 0.
            let place = Pointer {
                obj,
                off: 0,
                ty: pointee,
            };
            self.write_typed(place, v, init_loc)?;
        }
        if let Some(items) = &d.array_init {
            if items.len() > count {
                return Err(stop_unsupported(
                    format!(
                        "excess initializers for `{}` (array size {}, {} initializers)",
                        self.name(d.name),
                        count,
                        items.len()
                    ),
                    d.loc,
                ));
            }
            for (i, &item) in items.iter().enumerate() {
                let v = self.eval_full(item)?;
                let item_loc = unit.expr(item).loc;
                let v = self.use_value(v, item_loc)?;
                let place = Pointer {
                    obj,
                    off: (i * esize) as i64,
                    ty: pointee,
                };
                self.write_typed(place, v, item_loc)?;
            }
            // Remaining elements are initialized to zero (§6.7.9:21): the
            // fresh object's bytes are already zero (and all-zero pointer
            // elements read back as null), so the tail just becomes
            // initialized.
            let done = items.len() * esize;
            self.objects[obj_slot(obj)]
                .bytes
                .mark_init(done, count * esize - done);
        }
        // Initialization is not modification: the const flag guards the
        // object only once its declaration completes (§6.7.3:6 vs §6.7.9).
        self.objects[obj_slot(obj)].is_const = d.quals.is_const;
        // The initializer stores were part of the declaration's full
        // expressions; they do not persist into later footprints.
        self.fp.truncate(fp_mark);
        Ok(())
    }
}

/// Array-to-pointer decay (§6.3.2.1:3) for `sizeof` operand typing: an
/// array designator keeps its `Bytes` size only as the *direct* operand;
/// anywhere deeper it participates as a pointer.
fn decay(t: SizeofTy) -> SizeofTy {
    match t {
        SizeofTy::Bytes(_) => SizeofTy::Pointer,
        other => other,
    }
}

/// The pointee type a pointer *to* `ty` accesses through.
pub(crate) fn pointee_of_ty(ty: &Ty) -> PointeeTy {
    match ty {
        Ty::Int(it) => PointeeTy::Scalar(*it),
        Ty::Void => PointeeTy::Void,
        Ty::Ptr(_) => PointeeTy::Ptr,
    }
}

/// Source position of a statement, for step-limit and engine-failure
/// reports (and statement-op locations in the bytecode compiler).
pub(crate) fn stmt_loc(unit: &TranslationUnit, s: &Stmt) -> SourceLoc {
    match s {
        Stmt::Decl(d) => d.loc,
        Stmt::Expr(e) | Stmt::If(e, _, _) | Stmt::While(e, _) => unit.expr(*e).loc,
        Stmt::For(init, cond, step, body) => init
            .map(|s| stmt_loc(unit, unit.stmt(s)))
            .or_else(|| cond.map(|e| unit.expr(e).loc))
            .or_else(|| step.map(|e| unit.expr(e).loc))
            .unwrap_or_else(|| stmt_loc(unit, unit.stmt(*body))),
        Stmt::Return(_, loc)
        | Stmt::Break(loc)
        | Stmt::Continue(loc)
        | Stmt::Block(_, loc)
        | Stmt::Switch(_, _, loc)
        | Stmt::Case(_, _, loc)
        | Stmt::Default(_, loc)
        | Stmt::Label(_, _, loc)
        | Stmt::Goto(_, loc)
        | Stmt::Empty(loc) => *loc,
    }
}

/// Whether `target` labels a statement anywhere inside `s` — the test
/// that decides where an in-flight [`Flow::Goto`] lands. Descends into
/// every substatement (labels under nested loops, switches, and `if`
/// arms are all reachable by a jump, §6.8.6.1).
fn stmt_has_label(unit: &TranslationUnit, s: StmtId, target: Symbol) -> bool {
    match unit.stmt(s) {
        Stmt::Label(name, inner, _) => *name == target || stmt_has_label(unit, *inner, target),
        Stmt::Case(_, inner, _) | Stmt::Default(inner, _) => stmt_has_label(unit, *inner, target),
        Stmt::If(_, then, els) => {
            stmt_has_label(unit, *then, target)
                || els.is_some_and(|e| stmt_has_label(unit, e, target))
        }
        Stmt::While(_, body) | Stmt::Switch(_, body, _) => stmt_has_label(unit, *body, target),
        Stmt::For(init, _, _, body) => {
            init.is_some_and(|i| stmt_has_label(unit, i, target))
                || stmt_has_label(unit, *body, target)
        }
        Stmt::Block(items, _) => items.iter().any(|&t| stmt_has_label(unit, t, target)),
        Stmt::Decl(_)
        | Stmt::Expr(_)
        | Stmt::Return(_, _)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Goto(_, _)
        | Stmt::Empty(_) => false,
    }
}

/// The runtime element type of an object declared with `ty`. (`void`
/// local declarations raise [`UbKind::IncompleteTypeObject`] before an
/// object is ever built; for the remaining `void` spellings — parameter
/// lists, which the translation phase rejects — `int` is a harmless
/// placeholder.)
fn elem_of_ty(ty: &Ty) -> Elem {
    match ty {
        Ty::Ptr(inner) => Elem::Ptr(pointee_of_ty(inner)),
        Ty::Int(it) => Elem::Scalar(*it),
        Ty::Void => Elem::Scalar(IntTy::Int),
    }
}

/// Whether `s` contains a `case` or `default` label belonging to the
/// *enclosing* switch (i.e. not descending into nested `switch` bodies,
/// whose labels are their own).
fn stmt_contains_case(unit: &TranslationUnit, s: &Stmt) -> bool {
    let at = |id: StmtId| stmt_contains_case(unit, unit.stmt(id));
    match s {
        Stmt::Case(_, _, _) | Stmt::Default(_, _) => true,
        Stmt::Label(_, inner, _) => at(*inner),
        Stmt::If(_, then, els) => at(*then) || els.is_some_and(at),
        Stmt::While(_, body) => at(*body),
        Stmt::For(init, _, _, body) => init.is_some_and(at) || at(*body),
        Stmt::Block(items, _) => items.iter().any(|&i| at(i)),
        // A nested switch owns its labels.
        Stmt::Switch(_, _, _) => false,
        Stmt::Decl(_)
        | Stmt::Expr(_)
        | Stmt::Return(_, _)
        | Stmt::Break(_)
        | Stmt::Continue(_)
        | Stmt::Goto(_, _)
        | Stmt::Empty(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Outcome {
        let unit = parse(src).unwrap();
        Interp::new(&unit, Limits::default()).run_main()
    }

    fn ub_kind(src: &str) -> UbKind {
        match run(src) {
            Outcome::Undefined(e) => e.kind(),
            other => panic!("expected UB for {src:?}, got {other:?}"),
        }
    }

    #[test]
    fn defined_programs_complete() {
        assert_eq!(
            run("int main(void) { return 41 + 1; }").exit_code(),
            Some(42)
        );
        assert_eq!(
            run("int sq(int x) { return x * x; } int main(void) { return sq(7); }").exit_code(),
            Some(49)
        );
        assert_eq!(
            run("int main(void) { int s = 0; for (int i = 1; i <= 4; i++) s += i; return s; }")
                .exit_code(),
            Some(10)
        );
    }

    #[test]
    fn falling_off_main_returns_zero() {
        assert_eq!(run("int main(void) { 1 + 1; }").exit_code(), Some(0));
    }

    #[test]
    fn unsequenced_writes() {
        assert_eq!(
            ub_kind("int main(void) { int x = 0; x = x++ + 1; return x; }"),
            UbKind::UnsequencedSideEffect
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 0; return x + (x = 1); }"),
            UbKind::UnsequencedSideEffect
        );
        assert_eq!(
            ub_kind("int main(void) { int i = 0; int a[3] = {0, 0, 0}; a[i++] = i; return 0; }"),
            UbKind::UnsequencedSideEffect
        );
    }

    #[test]
    fn sequenced_siblings_are_fine() {
        assert_eq!(
            run("int main(void) { int x = 1; x = x + 1; return x; }").exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int x = 1; x += x; return x; }").exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int x = 0; return (x = 1, x + 1); }").exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int x = 0; return (x = 1) && (x = 2); }").exit_code(),
            Some(1)
        );
    }

    #[test]
    fn arithmetic_family() {
        assert_eq!(
            ub_kind("int main(void) { return 1 / 0; }"),
            UbKind::DivisionByZero
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 % 0; }"),
            UbKind::ModuloByZero
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 2147483647; return x + 1; }"),
            UbKind::SignedOverflow
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 0 - 2147483647 - 1; return x / -1; }"),
            UbKind::DivisionOverflow
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << 32; }"),
            UbKind::ShiftTooFar
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << -1; }"),
            UbKind::ShiftByNegative
        );
        assert_eq!(
            ub_kind("int main(void) { return -1 << 1; }"),
            UbKind::ShiftOfNegative
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << 31; }"),
            UbKind::ShiftOverflow
        );
    }

    #[test]
    fn memory_family() {
        assert_eq!(
            ub_kind("int main(void) { int a[3] = {1, 2, 3}; return a[3]; }"),
            UbKind::OutOfBoundsRead
        );
        assert_eq!(
            ub_kind("int main(void) { int a[2]; a[5] = 1; return 0; }"),
            UbKind::PointerArithmeticOutOfBounds
        );
        assert_eq!(
            ub_kind("int main(void) { int x; return x; }"),
            UbKind::ReadIndeterminate
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = 0; return *p; }"),
            UbKind::NullDereference
        );
    }

    #[test]
    fn lifetime_family() {
        assert_eq!(
            ub_kind(
                "int *escape(void) { int local = 5; return &local; }\n\
                 int main(void) { int *p = escape(); return *p; }"
            ),
            UbKind::DeadObjectAccess
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(sizeof(int)); free(p); return *p; }"),
            UbKind::DeadObjectAccess
        );
    }

    #[test]
    fn allocation_family() {
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(1); free(p); free(p); return 0; }"),
            UbKind::DoubleFree
        );
        assert_eq!(
            ub_kind("int main(void) { int x = 0; free(&x); return 0; }"),
            UbKind::FreeNonHeapPointer
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(2 * sizeof(int)); free(p + 1); return 0; }"),
            UbKind::FreeInteriorPointer
        );
        assert_eq!(
            run(
                "int main(void) { int *p = malloc(2 * sizeof(int)); p[0] = 7; int v = p[0]; free(p); \
                 return v; }"
            )
            .exit_code(),
            Some(7)
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(sizeof(int)); return p[0]; }"),
            UbKind::ReadIndeterminate
        );
    }

    #[test]
    fn call_family() {
        assert_eq!(
            ub_kind("int f(int a) { return a; } int main(void) { return f(1, 2); }"),
            UbKind::CallWrongArity
        );
        assert_eq!(
            ub_kind("int f(void) { return 0; } int main(void) { int x = g(); return x; }"),
            UbKind::CallNonFunction
        );
        assert_eq!(
            ub_kind("int f(int a) { if (a) return 1; } int main(void) { return f(0) + 1; }"),
            UbKind::MissingReturnValueUsed
        );
    }

    #[test]
    fn vla_family() {
        assert_eq!(
            ub_kind("int main(void) { int n = 0; int a[n]; return 0; }"),
            UbKind::VlaSizeNotPositive
        );
        assert_eq!(
            ub_kind("int main(void) { int a[0]; return 0; }"),
            UbKind::ArraySizeNotPositive
        );
    }

    #[test]
    fn pointer_relations() {
        assert_eq!(
            ub_kind("int main(void) { int a; int b; return &a < &b; }"),
            UbKind::PointerCompareDifferentObjects
        );
        assert_eq!(
            ub_kind("int main(void) { int a; int b; return &a - &b; }"),
            UbKind::PointerSubtractionDifferentObjects
        );
        assert_eq!(
            run("int main(void) { int a[4]; int *p = &a[1]; int *q = &a[3]; return q - p; }")
                .exit_code(),
            Some(2)
        );
    }

    #[test]
    fn loops_hit_the_step_limit_not_the_stack() {
        // Including loops whose iterations evaluate no expressions at all:
        // every statement and every `for` iteration must tick.
        for src in [
            "int main(void) { while (1) { } return 0; }",
            "int main(void) { for (;;) { } return 0; }",
            "int main(void) { for (;;) ; return 0; }",
            "int main(void) { for (;;) { ; } return 0; }",
        ] {
            let unit = parse(src).unwrap();
            let outcome = Interp::new(
                &unit,
                Limits {
                    max_steps: 10_000,
                    max_call_depth: 16,
                },
            )
            .run_main();
            assert!(
                matches!(outcome, Outcome::Unsupported { .. }),
                "{src}: {outcome:?}"
            );
        }
    }

    #[test]
    fn incdec_update_conflicts_with_writes_in_its_operand() {
        // The ++ side effect and the subscript's assignment are two
        // unsequenced side effects on a[0], exactly like `a[(a[0]=0)] = 7`.
        assert_eq!(
            ub_kind("int main(void) { int a[1]; a[(a[0]=0)]++; return a[0]; }"),
            UbKind::UnsequencedSideEffect
        );
    }

    #[test]
    fn negative_constant_array_size_is_the_static_form() {
        // Any integer constant expression selects the static form, not
        // just a literal token.
        assert_eq!(
            ub_kind("int main(void) { int a[-1]; return 0; }"),
            UbKind::ArraySizeNotPositive
        );
        assert_eq!(
            ub_kind("int main(void) { int a[1-2]; return 0; }"),
            UbKind::ArraySizeNotPositive
        );
        assert_eq!(
            ub_kind("int main(void) { int n = -1; int a[n]; return 0; }"),
            UbKind::VlaSizeNotPositive
        );
    }

    #[test]
    fn address_of_array_designator_is_outside_the_semantics() {
        // `&a` is the non-decay case of §6.3.2.1:3; its array-pointer type
        // is outside the subset, so every spelling of a store through it
        // (`*&a`, `(&a)[0]`, `*(&a + 0)`) is rejected, not reinterpreted
        // as an element-0 store.
        for src in [
            "int main(void) { int a[2]; *&a = 5; return 0; }",
            "int main(void) { int a[2]; (&a)[0] = 5; return 0; }",
            "int main(void) { int a[2]; *(&a + 0) = 5; return 0; }",
        ] {
            let unit = parse(src).unwrap();
            let outcome = Interp::new(&unit, Limits::default()).run_main();
            assert!(
                matches!(outcome, Outcome::Unsupported { .. }),
                "{src}: {outcome:?}"
            );
        }
        // But `*&x` on a scalar stays a plain store.
        assert_eq!(
            run("int main(void) { int x; *&x = 5; return x; }").exit_code(),
            Some(5)
        );
    }

    #[test]
    fn plain_return_in_main_is_not_a_silent_exit_zero() {
        let outcome = run("int main(void) {\n  int x = 0;\n  return;\n}");
        let err = outcome.ub().expect("should be UB").clone();
        assert_eq!(err.kind(), UbKind::ReturnWithoutValue);
        // The report points at the `return;`, not at main's header.
        assert_eq!(err.loc().map(|l| l.line), Some(3));
        // Reaching the `}` still gets the implicit 0 (§5.1.2.2.3:1).
        assert_eq!(run("int main(void) { int x = 1; }").exit_code(), Some(0));
    }

    #[test]
    fn main_returning_a_pointer_is_outside_the_semantics() {
        let outcome = run("int main(void) { int x = 0; return &x; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn size_one_arrays_decay_like_any_array() {
        assert_eq!(
            run("int main(void) { int a[1]; a[0] = 5; return a[0]; }").exit_code(),
            Some(5)
        );
        assert_eq!(
            run("int main(void) { int n = 1; int a[n]; a[0] = 3; return *a; }").exit_code(),
            Some(3)
        );
    }

    #[test]
    fn shadowing_declaration_is_in_scope_in_its_own_initializer() {
        // §6.2.1:7: the inner x's scope starts before its initializer, so
        // `int x = x;` reads the new, indeterminate x.
        assert_eq!(
            ub_kind("int main(void) { int x = 1; { int x = x; return x; } }"),
            UbKind::ReadIndeterminate
        );
        // But an array *size* is part of the declarator: it still sees the
        // outer binding.
        assert_eq!(
            run("int main(void) { int n = 2; { int n[n]; n[1] = 9; return n[1]; } }").exit_code(),
            Some(9)
        );
    }

    #[test]
    fn array_designators_are_not_modifiable_lvalues() {
        let unit = parse("int main(void) { int a[2]; a = 5; return 0; }").unwrap();
        let outcome = Interp::new(&unit, Limits::default()).run_main();
        assert!(
            matches!(outcome, Outcome::Unsupported { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn diagnostics_carry_function_and_line() {
        let outcome = run("int main(void) {\n  int x = 1;\n  return x / 0;\n}");
        let err = outcome.ub().expect("should be UB").clone();
        assert_eq!(err.function(), Some("main"));
        assert_eq!(err.loc().map(|l| l.line), Some(3));
    }

    #[test]
    fn undeclared_identifiers_in_dead_code_stay_unreported() {
        // Resolution leaves unbound names as lazy runtime errors, so a
        // never-executed reference does not change the verdict — exactly
        // the pre-slot-resolution behavior.
        assert_eq!(
            run("int main(void) { if (0) { ghost; } return 0; }").exit_code(),
            Some(0)
        );
        let outcome = run("int main(void) { ghost; return 0; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("ghost")),
            "{outcome:?}"
        );
    }

    #[test]
    fn redeclaration_is_reported_only_when_executed() {
        let outcome = run("int main(void) { int x = 1; int x = 2; return x; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("redeclaration of `x`")),
            "{outcome:?}"
        );
        // A redeclaration in never-reached code is not reported.
        assert_eq!(
            run("int main(void) { if (0) { int y = 1; int y = 2; y; } return 0; }").exit_code(),
            Some(0)
        );
    }

    #[test]
    fn slot_resolved_diagnostics_print_the_original_spelling() {
        // Two distinct slots share the spelling `x`; the report must name
        // `x`, not a slot number, and point at the inner use.
        let outcome = run("int main(void) {\n  int x = 1;\n  {\n    int x;\n    return x;\n  }\n}");
        let err = outcome.ub().expect("should be UB").clone();
        assert_eq!(err.kind(), UbKind::ReadIndeterminate);
        assert_eq!(err.detail(), Some("`x` holds an indeterminate value"));
        assert_eq!(err.loc().map(|l| l.line), Some(5));
    }

    #[test]
    fn redeclaring_a_parameter_at_body_top_level_is_rejected() {
        // Parameters share the body's outermost block scope (§6.2.1:4),
        // so this is a redeclaration — every C compiler rejects it, and
        // the checker must not hand down a clean verdict.
        let outcome = run("int f(int a) { int a = 2; return a; } int main(void) { return f(1); }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("redeclaration of `a`")),
            "{outcome:?}"
        );
        // A *nested* block may still shadow a parameter.
        assert_eq!(
            run("int f(int a) { { int a = 2; return a; } } int main(void) { return f(1); }")
                .exit_code(),
            Some(2)
        );
    }

    #[test]
    fn use_before_declaration_in_same_block_sees_the_outer_object() {
        // §6.2.1:7: before the block's own `int x` is reached, `x` still
        // means the outer declaration — slot resolution must not bind the
        // earlier use to the later declaration.
        assert_eq!(
            run("int main(void) { int x = 7; { int y = x; int x = 1; return y * 10 + x; } }")
                .exit_code(),
            Some(71)
        );
    }

    #[test]
    fn recursion_works_on_the_shared_stacks() {
        assert_eq!(
            run(
                "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
                 int main(void) { return fib(10); }"
            )
            .exit_code(),
            Some(55)
        );
    }

    #[test]
    fn switch_selects_matches_and_falls_through() {
        assert_eq!(
            run("int main(void) { int x = 2; int r = 0; \
                 switch (x) { case 1: r = 1; break; case 2: r = 2; break; default: r = 9; } \
                 return r; }")
            .exit_code(),
            Some(2)
        );
        // Fallthrough: case 1 runs into case 2's statements.
        assert_eq!(
            run("int main(void) { int r = 0; \
                 switch (1) { case 1: r += 1; case 2: r += 10; break; default: r += 100; } \
                 return r; }")
            .exit_code(),
            Some(11)
        );
        // No match and no default skips the body entirely.
        assert_eq!(
            run("int main(void) { int r = 5; switch (7) { case 1: r = 1; } return r; }")
                .exit_code(),
            Some(5)
        );
        // Default is selected regardless of its position.
        assert_eq!(
            run("int main(void) { int r = 0; \
                 switch (3) { default: r = 9; break; case 1: r = 1; } return r; }")
            .exit_code(),
            Some(9)
        );
        // Chained labels select the shared statement.
        assert_eq!(
            run("int main(void) { int r = 0; switch (2) { case 1: case 2: r = 4; } return r; }")
                .exit_code(),
            Some(4)
        );
        // Single-statement body.
        assert_eq!(
            run("int main(void) { int r = 0; switch (1) case 1: r = 3; return r; }").exit_code(),
            Some(3)
        );
    }

    #[test]
    fn switch_case_labels_must_be_constant_when_dispatched() {
        assert_eq!(
            ub_kind("int main(void) { int k = 1; switch (1) { case k: return 1; } return 0; }"),
            UbKind::NonConstantCaseLabel
        );
        // An undefined operation inside a case's constant expression is
        // the corresponding arithmetic defect.
        assert_eq!(
            ub_kind("int main(void) { switch (1) { case 1 / 0: return 1; } return 0; }"),
            UbKind::DivisionByZero
        );
    }

    #[test]
    fn switch_with_nested_cases_is_unsupported_not_misjudged() {
        let outcome = run("int main(void) { switch (9) { case 1: ; { case 2: ; } } return 0; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("top level of a switch")),
            "{outcome:?}"
        );
        // A nested case outranks the top-level `default:` in real C
        // (here it would execute `case 2` and return 5) — the engine
        // must stop rather than dispatch to default and misjudge.
        let outcome = run("int main(void) { int r = 0; \
             switch (2) { case 1: r = 1; break; { case 2: r = 5; break; } default: r = 9; } \
             return r; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("top level of a switch")),
            "{outcome:?}"
        );
        // Same for a single-statement body whose chain `default:` wraps
        // nested cases.
        let outcome =
            run("int main(void) { int r = 0; switch (2) default: { case 2: r = 5; } return r; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("top level of a switch")),
            "{outcome:?}"
        );
        // But a *matching* top-level case still dispatches even with
        // nested labels elsewhere (a valid program cannot duplicate the
        // matched value).
        assert_eq!(
            run("int main(void) { int r = 0; \
                 switch (1) { case 1: r = 7; break; { case 2: r = 5; } } return r; }")
            .exit_code(),
            Some(7)
        );
    }

    #[test]
    fn break_leaves_the_switch_but_return_propagates() {
        assert_eq!(
            run("int main(void) { switch (1) { case 1: return 42; } return 0; }").exit_code(),
            Some(42)
        );
        // `continue` inside a switch belongs to the enclosing loop.
        assert_eq!(
            run("int main(void) { int s = 0; \
                 for (int i = 0; i < 3; i++) { switch (i) { case 1: continue; } s += 1; } \
                 return s; }")
            .exit_code(),
            Some(2)
        );
    }

    #[test]
    fn labels_are_transparent_and_goto_executes() {
        assert_eq!(
            run("int main(void) { int r = 0; here: r = 6; return r; }").exit_code(),
            Some(6)
        );
        // Forward jump: the skipped statement never executes.
        assert_eq!(
            run("int main(void) { int r = 7; goto out; r = 0; out: return r; }").exit_code(),
            Some(7)
        );
        // Backward jump forms a loop.
        assert_eq!(
            run("int main(void) { int i = 0; again: i++; if (i < 5) goto again; return i; }")
                .exit_code(),
            Some(5)
        );
        // A goto whose label was never defined is a lazy stop when (and
        // only when) it executes.
        let outcome = run("int main(void) { goto nowhere; return 0; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. } if message.contains("goto")),
            "{outcome:?}"
        );
        assert_eq!(
            run("int main(void) { if (0) goto nowhere; return 1; }").exit_code(),
            Some(1)
        );
    }

    #[test]
    fn goto_interacts_with_scopes_and_lifetimes() {
        // Jumping out of a block ends the lifetimes it owns; re-entering
        // creates fresh (uninitialized) objects.
        assert_eq!(
            run("int main(void) { int n = 0; \
                 { int x = 1; n += x; if (n < 3) goto back; } return n; \
                 back: { int y = 2; n += y; } goto fwd; fwd: return n; }")
            .exit_code(),
            Some(3)
        );
        // A jump within one block does not leave it (§6.2.4:6): the
        // block's objects keep their values across the internal goto.
        assert_eq!(
            run("int main(void) { int i = 0; int s = 0; top: s += i; i++; \
                 if (i < 4) goto top; return s; }")
            .exit_code(),
            Some(6)
        );
        // Jumping over a declaration: the declaration never executes, so
        // using the name afterwards is an honest engine stop (the
        // dynamic model binds slots only when declarations run) — in
        // both engines identically.
        let outcome = run("int main(void) { goto skip; int x = 1; skip: x; return x; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("before its declaration executed")),
            "{outcome:?}"
        );
    }

    #[test]
    fn goto_executes_under_the_tree_engine_too() {
        let unit = crate::parser::parse(
            "int main(void) { int i = 0; again: i++; if (i < 5) goto again; return i; }",
        )
        .unwrap();
        let outcome = Interp::with_engine(&unit, Limits::default(), Engine::Tree).run_main();
        assert_eq!(outcome.exit_code(), Some(5));
        let unit =
            crate::parser::parse("int main(void) { goto skip; int x = 1; skip: x; return x; }")
                .unwrap();
        let outcome = Interp::with_engine(&unit, Limits::default(), Engine::Tree).run_main();
        assert!(
            matches!(outcome, Outcome::Unsupported { ref message, .. }
                if message.contains("before its declaration executed")),
            "{outcome:?}"
        );
    }

    #[test]
    fn writes_to_const_defined_objects_are_ub() {
        assert_eq!(
            ub_kind("int main(void) { const int x = 1; x = 2; return x; }"),
            UbKind::WriteToConst
        );
        // …even through a pointer (§6.7.3:6 is about the definition).
        assert_eq!(
            ub_kind("int main(void) { const int x = 1; int *p = &x; *p = 2; return x; }"),
            UbKind::WriteToConst
        );
        // A const pointer to mutable data: the pointee stays writable.
        assert_eq!(
            run("int main(void) { int x = 1; int * const p = &x; *p = 5; return x; }").exit_code(),
            Some(5)
        );
    }

    #[test]
    fn unsigned_arithmetic_wraps_as_defined_behavior() {
        // §6.2.5:9 — no false SignedOverflow on any of these.
        assert_eq!(
            run("int main(void) { unsigned int u = 4294967295u; u = u + 1u; return u == 0u; }")
                .exit_code(),
            Some(1)
        );
        assert_eq!(
            run("int main(void) { unsigned int u = 0u; u = u - 1u; return u == 4294967295u; }")
                .exit_code(),
            Some(1)
        );
        assert_eq!(
            run("int main(void) { unsigned int s = 1u << 31; return s == 2147483648u; }")
                .exit_code(),
            Some(1)
        );
        // …while the same shapes at signed int stay UB.
        assert_eq!(
            ub_kind("int main(void) { int x = 2147483647; return x + 1; }"),
            UbKind::SignedOverflow
        );
        assert_eq!(
            ub_kind("int main(void) { return 1 << 31; }"),
            UbKind::ShiftOverflow
        );
    }

    #[test]
    fn shifts_are_checked_at_the_promoted_left_operands_width() {
        // long shifts by 32..62 are defined at width 64…
        assert_eq!(
            run("int main(void) { long one = 1; return (one << 40) > 0 && (one << 62) > 0; }")
                .exit_code(),
            Some(1)
        );
        // …shifting the 1 into the sign bit overflows long (§6.5.7:4)…
        assert_eq!(
            ub_kind("int main(void) { long one = 1; return (one << 63) < 0; }"),
            UbKind::ShiftOverflow
        );
        // …and 64 is the first undefined count.
        assert_eq!(
            ub_kind(
                "int main(void) { long one = 1; int k = 64; long b = one << k; return b == 0; }"
            ),
            UbKind::ShiftTooFar
        );
        // The *promoted* left operand: a char shifts at width 32, not 8.
        assert_eq!(
            run("int main(void) { char c = 1; return (c << 20) == 1048576; }").exit_code(),
            Some(1)
        );
    }

    #[test]
    fn division_overflow_is_per_width() {
        assert_eq!(
            ub_kind("int main(void) { int m = -2147483647 - 1; return m % -1; }"),
            UbKind::DivisionOverflow
        );
        // The same numerator is fine at long width.
        assert_eq!(
            run("int main(void) { long m = -2147483647 - 1; return (m / -1) > 0; }").exit_code(),
            Some(1)
        );
        // Unsigned division has no overflow case.
        assert_eq!(
            run("int main(void) { unsigned int u = 2147483648u; return (u / 1u) != 0u; }")
                .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn narrowing_stores_wrap_with_a_note_not_a_verdict() {
        let unit = parse(
            "int main(void) { char c = 300; short s = 70000; _Bool b = 42; \
             return c == 44 && s == 4464 && b == 1; }",
        )
        .unwrap();
        let mut interp = Interp::new(&unit, Limits::default());
        let outcome = interp.run_main();
        assert_eq!(outcome.exit_code(), Some(1), "{outcome:?}");
        // Two implementation-defined notes: the char and short stores.
        // Conversion to _Bool is defined (§6.3.1.2) and gets none.
        assert_eq!(interp.notes().len(), 2, "{:?}", interp.notes());
        assert!(interp.notes()[0].1.contains("`char`"));
        assert!(interp.notes()[1].1.contains("`short`"));
    }

    #[test]
    fn mixed_width_expressions_promote_and_convert() {
        // char operands promote to int, so the multiply overflows int…
        assert_eq!(
            ub_kind(
                "int main(void) { short a = 32767; short b = 32767; int p = a * b; \
                     int q = p * 4; return q; }"
            ),
            UbKind::SignedOverflow
        );
        // …but the promoted arithmetic itself is fine (no char-width wrap).
        assert_eq!(
            run("int main(void) { char a = 100; char b = 100; return (a + b) == 200; }")
                .exit_code(),
            Some(1)
        );
        // Usual arithmetic conversions: -1 meets unsigned as UINT_MAX.
        assert_eq!(
            run("int main(void) { unsigned int u = 1u; return (-1 < u) == 0; }").exit_code(),
            Some(1)
        );
        // long absorbs unsigned int on LP64 (no wrap at 2^32).
        assert_eq!(
            run(
                "int main(void) { unsigned int u = 4294967295u; long l = u + 1L; \
                 return l == 4294967296; }"
            )
            .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn sizeof_evaluates_without_evaluating_its_operand() {
        assert_eq!(
            run(
                "int main(void) { return sizeof(int) == 4u && sizeof(long) == 8u \
                 && sizeof(char) == 1u && sizeof(int *) == 8u; }"
            )
            .exit_code(),
            Some(1)
        );
        // `sizeof x` uses the declared type; `sizeof (x + 1L)` the
        // converted one.
        assert_eq!(
            run("int main(void) { short x = 1; return sizeof x == 2u \
                 && sizeof(x + 1) == 4u && sizeof(x + 1L) == 8u; }")
            .exit_code(),
            Some(1)
        );
        // An array designator under sizeof does not decay.
        assert_eq!(
            run("int main(void) { long a[3]; return sizeof a == 24u && sizeof(a + 0) == 8u; }")
                .exit_code(),
            Some(1)
        );
        // The operand is not evaluated: no division by zero here
        // (§6.5.3.4:2).
        assert_eq!(
            run("int main(void) { int x = 0; return sizeof(1 / x) == 4u; }").exit_code(),
            Some(1)
        );
    }

    #[test]
    fn typed_parameters_and_returns_convert_like_assignment() {
        // The argument converts to the parameter's type (note-worthy but
        // defined), and the return value to the return type.
        assert_eq!(
            run("char trunc(char c) { return c; } \
                 int main(void) { return trunc(300) == 44; }")
            .exit_code(),
            Some(1)
        );
        assert_eq!(
            run("unsigned int wrap(void) { return -1; } \
                 int main(void) { return wrap() == 4294967295u; }")
            .exit_code(),
            Some(1)
        );
        // A long parameter keeps 64-bit values intact.
        assert_eq!(
            run("long pass(long v) { return v; } \
                 int main(void) { return pass(1L << 40) == (1L << 40); }")
            .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn incdec_respects_the_object_type() {
        // unsigned char wraps 255 -> 0: defined.
        assert_eq!(
            run("int main(void) { unsigned char c = 255; c++; return c == 0; }").exit_code(),
            Some(1)
        );
        // int at INT_MAX overflows: UB.
        assert_eq!(
            ub_kind("int main(void) { int x = 2147483647; x++; return x; }"),
            UbKind::SignedOverflow
        );
        // unsigned int at UINT_MAX wraps: defined.
        assert_eq!(
            run("int main(void) { unsigned int u = 4294967295u; u++; return u == 0u; }")
                .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn switch_dispatches_on_converted_values() {
        // The controlling expression is promoted; a char selects its
        // promoted value's case.
        assert_eq!(
            run("int main(void) { char c = 65; switch (c) { case 'A': return 7; } return 0; }")
                .exit_code(),
            Some(7)
        );
        // long-valued cases work at full width.
        assert_eq!(
            run("int main(void) { long v = 1L << 40; \
                 switch (v == (1L << 40)) { case 1: return 3; } return 0; }")
            .exit_code(),
            Some(3)
        );
    }

    #[test]
    fn case_constants_convert_to_the_controlling_type() {
        // §6.8.4.2:5 — `case -1:` converts to UINT_MAX for an unsigned
        // controlling expression, exactly as in real C.
        assert_eq!(
            run("int main(void) { unsigned int u = 0u - 1u; \
                 switch (u) { case -1: return 1; } return 0; }")
            .exit_code(),
            Some(1)
        );
        // …and a case constant the controlling type cannot represent
        // wraps on conversion before comparing.
        assert_eq!(
            run("int main(void) { int x = 0; \
                 switch (x) { case 4294967296L: return 1; } return 0; }")
            .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn heap_cells_are_untyped_so_wide_stores_survive() {
        // malloc'd memory has no declared type (§6.5:6): a long stored
        // through a long* must read back intact, not truncate to int.
        assert_eq!(
            run(
                "int main(void) { long *p = malloc(2 * sizeof(long)); p[0] = 4294967296L; \
                 return p[0] == 4294967296L; }"
            )
            .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn sizeof_of_a_non_vla_is_a_constant_array_size() {
        // `int a[sizeof x]` is an ordinary (non-VLA) array, so jumping
        // over its declaration is legal — no JumpIntoVlaScope and no
        // VLA-form verdicts.
        assert_eq!(
            ub_kind("int main(void) { int x; int a[sizeof x - 4]; return 0; }"),
            // sizeof x - 4 == 0: the *static* array-size form, proving
            // const_size was set.
            UbKind::ArraySizeNotPositive
        );
        // sizeof of a VLA stays non-constant (§6.5.3.4:2): the VLA form.
        assert_eq!(
            ub_kind("int main(void) { int n = 4; int v[n]; int a[sizeof v - 16]; return 0; }"),
            UbKind::VlaSizeNotPositive
        );
    }

    #[test]
    fn oversized_objects_are_an_engine_limit_not_a_crash() {
        for src in [
            "int main(void) { long n = 1; n = n << 40; int a[n]; return 0; }",
            "int main(void) { int *p = malloc(1 << 30); return 0; }",
        ] {
            let unit = parse(src).unwrap();
            let outcome = Interp::new(&unit, Limits::default()).run_main();
            assert!(
                matches!(outcome, Outcome::Unsupported { .. }),
                "{src}: {outcome:?}"
            );
        }
    }

    #[test]
    fn malloc_counts_bytes_not_cells() {
        // The documented cell-model divergence is closed: malloc(2) is
        // two *bytes*, not enough for an int.
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(2); p[0] = 1; return 0; }"),
            UbKind::OutOfBoundsWrite
        );
        assert_eq!(
            run(
                "int main(void) { long *p = malloc(sizeof(long)); p[0] = 9; int v = p[0]; \
                 free(p); return v; }"
            )
            .exit_code(),
            Some(9)
        );
    }

    #[test]
    fn malloc_zero_is_legal_to_free_but_ub_to_dereference() {
        // §7.22.3:1 — a zero-size allocation behaves like any other
        // object pointer except that it must not be used to access one.
        assert_eq!(
            run("int main(void) { int *p = malloc(0); free(p); return 0; }").exit_code(),
            Some(0)
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(0); return p[0]; }"),
            UbKind::OutOfBoundsRead
        );
        assert_eq!(
            ub_kind("int main(void) { int *p = malloc(0); p[0] = 1; return 0; }"),
            UbKind::OutOfBoundsWrite
        );
        // Distinct zero-size allocations are distinct objects.
        assert_eq!(
            run("int main(void) { int *p = malloc(0); int *q = malloc(0); \
                 int r = p == q; free(p); free(q); return r; }")
            .exit_code(),
            Some(0)
        );
    }

    #[test]
    fn one_past_the_end_at_byte_granularity() {
        // The one-past pointer exists at both element and byte stride…
        assert_eq!(
            run(
                "int main(void) { int a[2]; a[0] = 1; a[1] = 2; int *p = a + 2; \
                 return (int)(p - a); }"
            )
            .exit_code(),
            Some(2)
        );
        assert_eq!(
            run("int main(void) { int a[2]; char *c = (char *)a + 8; \
                 return c == (char *)(a + 2); }")
            .exit_code(),
            Some(1)
        );
        // …but one element past one-past is out, as is byte 9 of 8.
        assert_eq!(
            ub_kind("int main(void) { int a[2]; int *p = a + 3; return 0; }"),
            UbKind::PointerArithmeticOutOfBounds
        );
        assert_eq!(
            ub_kind("int main(void) { int a[2]; char *c = (char *)a + 9; return 0; }"),
            UbKind::PointerArithmeticOutOfBounds
        );
        // Dereferencing the one-past pointer overruns the object.
        assert_eq!(
            ub_kind("int main(void) { int a[2] = {1, 2}; return *(a + 2); }"),
            UbKind::OutOfBoundsRead
        );
    }

    #[test]
    fn per_byte_init_tracking_across_partial_stores() {
        // One byte of a long initialized: the 8-byte read is UB,
        // byte-precise.
        assert_eq!(
            ub_kind(
                "int main(void) { long l; char *p = (char *)&l; p[0] = 1; \
                     return l == 1; }"
            ),
            UbKind::ReadIndeterminate
        );
        // Writing every byte completes the object.
        assert_eq!(
            run("int main(void) { long l; char *p = (char *)&l; \
                 for (int i = 0; i < 8; i++) p[i] = 0; return l == 0; }")
            .exit_code(),
            Some(1)
        );
        // The partial-init report names the first indeterminate byte.
        let outcome = run("int main(void) { long l; char *p = (char *)&l; p[0] = 1; \
                           return l == 1; }");
        let err = outcome.ub().expect("should be UB");
        assert!(
            err.detail().is_some_and(|d| d.contains("byte 1")),
            "{err:?}"
        );
        // At a nonzero offset the byte index is *read-relative*: a[1]'s
        // read covers object bytes 8..16, and byte 9 of the object is
        // byte 1 of that read.
        let outcome = run("int main(void) { long a[2]; \
             unsigned char *c = (unsigned char *)a; \
             for (int i = 0; i < 16; i++) if (i != 9) c[i] = 0; \
             return a[1] == 0; }");
        let err = outcome.ub().expect("should be UB");
        assert!(
            err.detail()
                .is_some_and(|d| d.contains("byte 1 of the 8-byte read at byte offset 8")),
            "{err:?}"
        );
    }

    #[test]
    fn char_sweep_reassembles_the_representation() {
        // §6.5:7 — character lvalues may read any object's bytes, and
        // the little-endian reassembly equals the stored value.
        assert_eq!(
            run(
                "int main(void) { long l = 258; unsigned char *p = (unsigned char *)&l; \
                 long r = 0; for (int i = 7; i >= 0; i--) r = (r << 8) + p[i]; \
                 return r == 258; }"
            )
            .exit_code(),
            Some(1)
        );
        // A negative int's bytes reassemble bit-for-bit too.
        assert_eq!(
            run(
                "int main(void) { int x = 0 - 2; unsigned char *p = (unsigned char *)&x; \
                 unsigned int r = 0u; for (int i = 3; i >= 0; i--) r = (r << 8) + p[i]; \
                 return r == 4294967294u; }"
            )
            .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn misaligned_pointer_conversions_are_ub_at_the_cast() {
        // §6.3.2.3:7 — byte offset 1 of a long can never hold an int.
        assert_eq!(
            ub_kind(
                "int main(void) { long l = 0; char *c = (char *)&l; \
                     int *p = (int *)(c + 1); return 0; }"
            ),
            UbKind::MisalignedAccess
        );
        // Character casts never misalign (alignment 1).
        assert_eq!(
            run("int main(void) { long l = 7; char *c = (char *)&l + 3; return c != 0; }")
                .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn effective_type_violations_raise_kind_33() {
        // An aligned, in-bounds int access to a long object is still
        // §6.5:7 — for writes…
        assert_eq!(
            ub_kind("int main(void) { long l = 42; int *p = (int *)&l; *p = 7; return 0; }"),
            UbKind::AccessWrongEffectiveType
        );
        // …and for reads (offset 4 is int-aligned, so the cast is fine
        // and the *access* is the defect).
        assert_eq!(
            ub_kind(
                "int main(void) { long l = 0; char *c = (char *)&l; \
                     int *p = (int *)(c + 4); return *p; }"
            ),
            UbKind::AccessWrongEffectiveType
        );
        // Same-rank signed/unsigned lvalues are compatible (§6.5:7).
        assert_eq!(
            run("int main(void) { int x = 0 - 1; \
                 unsigned int *p = (unsigned int *)&x; return *p == 4294967295u; }")
            .exit_code(),
            Some(1)
        );
        // Heap memory takes the effective type of what was stored.
        assert_eq!(
            ub_kind(
                "int main(void) { int *p = malloc(2 * sizeof(int)); \
                     p[0] = 1; p[1] = 2; long *q = (long *)p; return *q == 1; }"
            ),
            UbKind::AccessWrongEffectiveType
        );
    }

    #[test]
    fn stored_pointers_keep_provenance() {
        // Pointers stored through pointer lvalues read back intact…
        assert_eq!(
            run("int main(void) { int x = 5; int *p = &x; int **q = &p; return **q; }").exit_code(),
            Some(5)
        );
        // …their representation has no numeric bytes to sweep…
        let outcome = run("int main(void) { int x = 5; int *p = &x; \
             unsigned char *c = (unsigned char *)&p; return c[0]; }");
        assert!(
            matches!(outcome, Outcome::Unsupported { .. }),
            "{outcome:?}"
        );
        // …and a byte store into one destroys it: the other seven bytes
        // go indeterminate, so reading the pointer is UB.
        assert_eq!(
            ub_kind(
                "int main(void) { int x = 5; int *p = &x; \
                     unsigned char *c = (unsigned char *)&p; c[0] = 0; return *p; }"
            ),
            UbKind::ReadIndeterminate
        );
    }

    #[test]
    fn casts_convert_values_and_types() {
        // Integer casts convert with the usual §6.3.1.3 semantics.
        assert_eq!(
            run(
                "int main(void) { return (char)300 == 44 && (unsigned char)300 == 44 \
                 && (long)2147483647 + 1 == 2147483648L && (_Bool)42 == 1; }"
            )
            .exit_code(),
            Some(1)
        );
        // `(void)e` discards the value; using it is the void-value defect.
        assert_eq!(
            run("int main(void) { int x = 1; (void)(x = 2); return x; }").exit_code(),
            Some(2)
        );
        // The null pointer constant casts to any pointer type.
        assert_eq!(
            run("int main(void) { char *p = (char *)0; return p == 0; }").exit_code(),
            Some(1)
        );
        // Casting does not move the pointer: equality is by address.
        assert_eq!(
            run("int main(void) { long l = 1; return (char *)&l == (char *)(void *)&l; }")
                .exit_code(),
            Some(1)
        );
    }

    #[test]
    fn detected_kinds_registry_matches_this_file() {
        let src = include_str!("eval.rs");
        // Every listed kind is actually referenced by the engine…
        for k in detected_kinds() {
            assert!(
                src.contains(&format!("UbKind::{k:?}")),
                "{k:?} is listed in detected_kinds() but never raised here"
            );
        }
        // …and every kind the engine references is listed, so the
        // registry cannot rot in either direction.
        let listed: std::collections::BTreeSet<String> =
            detected_kinds().iter().map(|k| format!("{k:?}")).collect();
        for (idx, _) in src.match_indices("UbKind::") {
            let name: String = src[idx + "UbKind::".len()..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            // Skip this test's own quoted `UbKind::` fragments, which are
            // followed by punctuation rather than a variant name.
            if name.is_empty() {
                continue;
            }
            assert!(
                listed.contains(&name),
                "UbKind::{name} appears in eval.rs but is missing from detected_kinds()"
            );
        }
    }
}
