//! String interning: identifiers as small integers.
//!
//! Every identifier in a translation unit is interned once into a
//! [`Symbol`] — a `u32` index into the unit's [`Interner`] — so that the
//! parser, the resolver, and the evaluator compare and hash plain
//! integers instead of strings, and so AST nodes carry 4 bytes instead of
//! a heap-allocated `String`. The original spelling is recovered through
//! [`Interner::resolve`] only when a diagnostic is rendered.
//!
//! Keywords and the recognized library functions are pre-interned at
//! fixed indices (the `kw` module), which turns the parser's keyword
//! tests into integer comparisons.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier: an index into the owning [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The index, for table-based side lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this symbol is a C keyword of the subset (pre-interned at
    /// the front of every interner), and therefore not a valid
    /// identifier.
    pub fn is_keyword(self) -> bool {
        self.0 < kw::KEYWORD_COUNT
    }
}

/// Pre-interned symbols: keywords first, then known library functions
/// and `main`.
pub mod kw {
    use super::Symbol;

    macro_rules! preinterned {
        ($($name:ident => $text:literal),* $(,)?) => {
            preinterned!(@build 0u32; $($name => $text),*);
            /// Spellings of all pre-interned symbols, in index order.
            pub(super) const SPELLINGS: &[&str] = &[$($text),*];
        };
        (@build $idx:expr; $name:ident => $text:literal $(, $rest:ident => $rtext:literal)*) => {
            #[doc = concat!("The pre-interned symbol for `", $text, "`.")]
            pub const $name: Symbol = Symbol($idx);
            preinterned!(@build $idx + 1; $($rest => $rtext),*);
        };
        (@build $idx:expr;) => {};
    }

    preinterned! {
        INT => "int",
        VOID => "void",
        IF => "if",
        ELSE => "else",
        WHILE => "while",
        FOR => "for",
        RETURN => "return",
        BREAK => "break",
        CONTINUE => "continue",
        GOTO => "goto",
        SWITCH => "switch",
        CASE => "case",
        DEFAULT => "default",
        CONST => "const",
        VOLATILE => "volatile",
        RESTRICT => "restrict",
        STATIC => "static",
        CHAR => "char",
        SHORT => "short",
        LONG => "long",
        SIGNED => "signed",
        UNSIGNED => "unsigned",
        BOOL => "_Bool",
        SIZEOF => "sizeof",
        MALLOC => "malloc",
        FREE => "free",
        MAIN => "main",
    }

    /// Number of leading symbols that are keywords (everything up to and
    /// including `sizeof`; `malloc`/`free`/`main` are ordinary
    /// identifiers).
    pub(super) const KEYWORD_COUNT: u32 = SIZEOF.0 + 1;
}

/// A symbol table mapping identifier spellings to [`Symbol`]s and back.
///
/// # Examples
///
/// ```
/// use cundef_semantics::intern::{kw, Interner};
///
/// let mut interner = Interner::new();
/// let x = interner.intern("x");
/// assert_eq!(interner.intern("x"), x);
/// assert_eq!(interner.resolve(x), "x");
/// assert_eq!(interner.intern("while"), kw::WHILE);
/// assert!(kw::WHILE.is_keyword());
/// assert!(!x.is_keyword());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// Create an interner with the keywords and known library names
    /// pre-interned at their fixed [`kw`] indices.
    pub fn new() -> Interner {
        let mut interner = Interner {
            names: Vec::with_capacity(kw::SPELLINGS.len() + 16),
            map: HashMap::with_capacity(kw::SPELLINGS.len() + 16),
        };
        for s in kw::SPELLINGS {
            interner.intern(s);
        }
        interner
    }

    /// Intern `text`, returning the existing symbol if already present.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&id) = self.map.get(text) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("fewer than 2^32 identifiers");
        self.names.push(text.to_string());
        self.map.insert(text.to_string(), id);
        Symbol(id)
    }

    /// The spelling of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was interned by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned symbols (including the pre-interned ones).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner holds no symbols. Never true in practice
    /// (keywords are pre-interned), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_preinterned_at_fixed_indices() {
        let mut i = Interner::new();
        assert_eq!(i.intern("int"), kw::INT);
        assert_eq!(i.intern("goto"), kw::GOTO);
        assert_eq!(i.intern("switch"), kw::SWITCH);
        assert_eq!(i.intern("restrict"), kw::RESTRICT);
        assert_eq!(i.intern("malloc"), kw::MALLOC);
        assert_eq!(i.intern("main"), kw::MAIN);
    }

    #[test]
    fn keyword_predicate_covers_exactly_the_keywords() {
        assert!(kw::INT.is_keyword());
        assert!(kw::GOTO.is_keyword());
        assert!(kw::SWITCH.is_keyword());
        assert!(kw::CASE.is_keyword());
        assert!(kw::DEFAULT.is_keyword());
        assert!(kw::CONST.is_keyword());
        assert!(kw::STATIC.is_keyword());
        assert!(kw::UNSIGNED.is_keyword());
        assert!(kw::BOOL.is_keyword());
        assert!(kw::SIZEOF.is_keyword());
        assert!(!kw::MALLOC.is_keyword());
        assert!(!kw::FREE.is_keyword());
        assert!(!kw::MAIN.is_keyword());
    }

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
    }
}
