//! The bytecode execution engine: a flat dispatch loop over a
//! [`CodeUnit`]'s instruction stream.
//!
//! This is the fast driver behind [`Interp::run_main`]; the tree-walker
//! in the parent module is the reference semantics. Both share the
//! memory/object core (`read_typed`, `write_typed`, `apply_binop`,
//! lifetimes, conversions), which is what keeps every diagnostic —
//! kind, position, detail string, note — byte-identical between them.
//! Fast-path ops (`LoadSlotFast`, fused stores) guard on the exact
//! object state their shortcut assumes and fail over to the generic
//! core *before* any observable action; tree-fallback ops (`EvalFull`,
//! `ExecStmt`, `DeclFull`) hand whole constructs back to the walker.

use super::*;
use crate::bytecode::{FnCode, FusedSweep, Op, Pc, SweepSrc};

impl<'a> Interp<'a> {
    /// Execute one function body from its op range; the shared
    /// prologue/epilogue in [`Interp::call`] has already run. `Ok(Some)`
    /// carries an executed `return`'s value and position; `Ok(None)` is
    /// falling off the closing `}`.
    pub(super) fn run_ops(
        &mut self,
        code: &CodeUnit,
        func_idx: u32,
    ) -> EResult<Option<(Value, SourceLoc)>> {
        let vbase = self.vstack.len();
        let sbase = self.scope_marks.len();
        // Monomorphized dispatch: the profiling build is a separate
        // function body, so with `--profile` off no counter code exists
        // on the hot path at all.
        let r = if self.profile_enabled {
            self.dispatch::<true>(code, func_idx)
        } else {
            self.dispatch::<false>(code, func_idx)
        };
        // On any exit — return, fall-off, or error unwind — the operand
        // stack and open scope marks roll back to the caller's; objects
        // still alive in abandoned scopes are killed by `call`'s
        // frame-level cleanup, exactly as the tree-walker's unwind does.
        self.vstack.truncate(vbase);
        self.scope_marks.truncate(sbase);
        r
    }

    fn dispatch<const PROFILE: bool>(
        &mut self,
        code: &CodeUnit,
        func_idx: u32,
    ) -> EResult<Option<(Value, SourceLoc)>> {
        let unit = self.unit;
        let fc = &code.funcs[func_idx as usize];
        let end: Pc = fc.end;
        let mut pc: Pc = fc.start;
        // Footprint mark at function entry: between statements the arena
        // is always back at this level, so sequence-point ops truncate
        // to it directly.
        let fp_base = self.fp.len();
        // The frame's slot window is fixed for the whole dispatch, so
        // the cost of `frames.last()` is paid once, not per slot op.
        let slot_base = self.frames.last().expect("active frame").slot_base;
        // Function-entry state, restored when a self-tail call rewinds
        // the body: operand stack, open scopes, and the automatic-object
        // mark above which the incarnation's locals live.
        let v_enter = self.vstack.len();
        let s_enter = self.scope_marks.len();
        let c_enter = self.created.len();
        // Step accounting is batched: each op bumps a register-resident
        // counter which is settled into the interpreter's step total —
        // and the limit checked — at loop back-edges, calls, and tree
        // fallbacks, the only places unbounded work can hide (straight-
        // line op runs are bounded by the code itself).
        let mut ops_since: u64 = 0;
        let ops: &[Op] = &code.ops;
        let locs: &[SourceLoc] = &code.locs;
        macro_rules! settle {
            ($loc:expr) => {
                self.steps += ops_since;
                #[allow(unused_assignments)]
                {
                    ops_since = 0;
                }
                if self.steps > self.limits.max_steps {
                    return Err(stop_unsupported("evaluation step limit exceeded", $loc));
                }
            };
        }
        while pc < end {
            let op = ops[pc as usize];
            let loc = locs[pc as usize];
            ops_since += 1;
            pc += 1;
            if PROFILE {
                self.prof.note_op(op.mnemonic());
            }
            match op {
                Op::Nop => {}
                Op::Const(i) => self.vstack.push(Value::Int(code.pool[i as usize])),
                Op::LoadSlot(slot) => {
                    let v = self.load_slot_any::<PROFILE>(fc, slot_base, slot, loc)?;
                    self.vstack.push(v);
                }
                Op::LoadSlotFast(slot, t) => {
                    let v = self.load_slot_fast::<PROFILE>(fc, slot_base, slot, t, loc)?;
                    self.vstack.push(v);
                }
                Op::Pop => {
                    // A comma's discarded left value: not a sequence
                    // point op in the tree either (no `use_value`).
                    self.vpop();
                }
                Op::PopSeq => {
                    self.vpop();
                    self.fp.truncate(fp_base);
                }
                Op::Unary(op) => {
                    let v = self.vpop();
                    let v = self.use_value(v, loc)?;
                    let out = match (op, v) {
                        (UnaryOp::Neg, Value::Int(n)) => match consteval::neg(n) {
                            Ok(r) => Value::Int(r),
                            Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
                        },
                        (UnaryOp::Not, v) => {
                            let t = self.truthy(v, loc)?;
                            Value::Int(CInt::int(if t { 0 } else { 1 }))
                        }
                        (UnaryOp::BitNot, Value::Int(n)) => match consteval::bit_not(n) {
                            Ok(r) => Value::Int(r),
                            Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
                        },
                        (UnaryOp::Neg | UnaryOp::BitNot, Value::Ptr(_)) => {
                            return Err(stop_unsupported(
                                "arithmetic unary operator applied to a pointer",
                                loc,
                            ))
                        }
                        (_, Value::Missing(_)) => unreachable!(),
                    };
                    self.vstack.push(out);
                }
                Op::Binary(op) => {
                    let rv = self.vpop();
                    let lv = self.vpop();
                    let lv = self.use_value(lv, loc)?;
                    let rv = self.use_value(rv, loc)?;
                    let v = self.apply_binop(op, lv, rv, loc)?;
                    self.vstack.push(v);
                }
                Op::BinaryC(op, ci) => {
                    let lv = self.vpop();
                    let lv = self.use_value(lv, loc)?;
                    let rv = Value::Int(code.pool[ci as usize]);
                    let v = self.apply_binop(op, lv, rv, loc)?;
                    self.vstack.push(v);
                }
                Op::BinSS(i) | Op::BinSC(i) => {
                    let v = self.fused_bin::<PROFILE>(
                        code,
                        fc,
                        slot_base,
                        i,
                        matches!(op, Op::BinSC(_)),
                        loc,
                    )?;
                    self.vstack.push(v);
                }
                Op::BinVS(i) => {
                    let l = self.vpop();
                    let f = code.fused[i as usize];
                    let r =
                        self.load_slot_fast::<PROFILE>(fc, slot_base, f.a_slot, f.a_ty, f.a_loc)?;
                    let v = self.apply_binop(f.op, l, r, loc)?;
                    self.vstack.push(v);
                }
                Op::Bin2SF(j) | Op::Bin2VF(j) => {
                    let f2 = code.fused2[j as usize];
                    let l = if matches!(op, Op::Bin2SF(_)) {
                        self.load_slot_fast::<PROFILE>(fc, slot_base, f2.a_slot, f2.a_ty, f2.a_loc)?
                    } else {
                        self.vpop()
                    };
                    let r = self.fused_bin::<PROFILE>(
                        code,
                        fc,
                        slot_base,
                        f2.inner,
                        f2.inner_const,
                        f2.inner_loc,
                    )?;
                    let v = self.apply_binop(f2.op, l, r, loc)?;
                    self.vstack.push(v);
                }
                Op::Bin2FC(j) => {
                    // `(b ⊕ c) ⊕ k`: the inner pair's result (a computed
                    // value, never missing) meets a pool constant.
                    let f2 = code.fused2[j as usize];
                    let l = self.fused_bin::<PROFILE>(
                        code,
                        fc,
                        slot_base,
                        f2.inner,
                        f2.inner_const,
                        f2.inner_loc,
                    )?;
                    let r = Value::Int(code.pool[f2.a_slot as usize]);
                    let v = self.apply_binop(f2.op, l, r, loc)?;
                    self.vstack.push(v);
                }
                Op::Jump(t) => {
                    if t < pc {
                        // Loop back-edge (or backward goto): the one place
                        // a pure-op program can run forever.
                        settle!(loc);
                    }
                    pc = t;
                }
                Op::BranchFalse(t) => {
                    let v = self.vpop();
                    if !self.truthy(v, loc)? {
                        pc = t;
                    }
                }
                Op::BranchFalseSeq(t) => {
                    let v = self.vpop();
                    self.fp.truncate(fp_base);
                    if !self.truthy(v, loc)? {
                        pc = t;
                    }
                }
                Op::AndFalse(t) => {
                    let v = self.vpop();
                    if !self.truthy(v, loc)? {
                        self.vstack.push(Value::Int(CInt::int(0)));
                        pc = t;
                    }
                }
                Op::OrTrue(t) => {
                    let v = self.vpop();
                    if self.truthy(v, loc)? {
                        self.vstack.push(Value::Int(CInt::int(1)));
                        pc = t;
                    }
                }
                Op::ToBool01 => {
                    let v = self.vpop();
                    let t = self.truthy(v, loc)?;
                    self.vstack.push(Value::Int(CInt::int(t as i64)));
                }
                Op::BrCmpSS(i, t) | Op::BrCmpSC(i, t) => {
                    let is_const = matches!(op, Op::BrCmpSC(_, _));
                    let v = self.fused_bin::<PROFILE>(code, fc, slot_base, i, is_const, loc)?;
                    self.fp.truncate(fp_base);
                    if !self.truthy(v, loc)? {
                        pc = t;
                    }
                }
                Op::CondCommon(id) => {
                    let v = self.vpop();
                    let v = if let Value::Int(n) = v {
                        let ExprKind::Conditional(_, t, f) = &unit.expr(id).kind else {
                            unreachable!("CondCommon on a non-conditional node");
                        };
                        if let (Some(SizeofTy::Scalar(x)), Some(SizeofTy::Scalar(y))) = (
                            self.sizeof_ty_of(*t).map(decay),
                            self.sizeof_ty_of(*f).map(decay),
                        ) {
                            let common = IntTy::usual_arith(x, y);
                            Value::Int(self.convert_int(n, common, loc))
                        } else {
                            Value::Int(n)
                        }
                    } else {
                        v
                    };
                    self.vstack.push(v);
                }
                Op::AsPtr => {
                    let v = self.vpop();
                    let p = self.as_pointer(v, loc)?;
                    self.vstack.push(Value::Ptr(p));
                }
                Op::ReadThru => {
                    let Value::Ptr(p) = self.vpop() else {
                        unreachable!("ReadThru without AsPtr");
                    };
                    let v = match self.read_word_fast(p) {
                        Some(v) => {
                            if PROFILE {
                                self.prof.word_fast_hits += 1;
                            }
                            v
                        }
                        None => {
                            if PROFILE {
                                self.prof.word_fast_fallbacks += 1;
                            }
                            self.read_typed(p, loc)?
                        }
                    };
                    self.vstack.push(v);
                }
                Op::IndexPlace | Op::IndexRead => {
                    let iv = self.vpop();
                    let Value::Ptr(bp) = self.vpop() else {
                        unreachable!("Index without AsPtr");
                    };
                    let p = match self.index_ptr_fast(bp, &iv) {
                        Some(p) => {
                            if PROFILE {
                                self.prof.word_fast_hits += 1;
                            }
                            p
                        }
                        None => {
                            if PROFILE {
                                self.prof.word_fast_fallbacks += 1;
                            }
                            let i = self.as_int(iv, loc)?.math();
                            self.pointer_add(bp, i, loc)?
                        }
                    };
                    if matches!(op, Op::IndexRead) {
                        let v = match self.read_word_fast(p) {
                            Some(v) => {
                                if PROFILE {
                                    self.prof.word_fast_hits += 1;
                                }
                                v
                            }
                            None => {
                                if PROFILE {
                                    self.prof.word_fast_fallbacks += 1;
                                }
                                self.read_typed(p, loc)?
                            }
                        };
                        self.vstack.push(v);
                    } else {
                        self.vstack.push(Value::Ptr(p));
                    }
                }
                Op::SlotPlace(slot) => {
                    let obj = self.bound_slot(fc, slot_base, slot, loc)?;
                    self.vstack.push(Value::Ptr(self.designator_pointer(obj)));
                }
                Op::BindCheck(slot) => {
                    self.bound_slot(fc, slot_base, slot, loc)?;
                }
                Op::StoreSimple => {
                    let rv = self.vpop();
                    let Value::Ptr(p) = self.vpop() else {
                        unreachable!("store without a place");
                    };
                    let rv = self.use_value(rv, loc)?;
                    let stored = match self.write_word_fast(p, &rv, loc) {
                        Some(s) => {
                            if PROFILE {
                                self.prof.word_fast_hits += 1;
                            }
                            s
                        }
                        None => {
                            if PROFILE {
                                self.prof.word_fast_fallbacks += 1;
                            }
                            self.write_typed(p, rv, loc)?
                        }
                    };
                    self.vstack.push(stored);
                }
                Op::StoreCompound(bop) => {
                    let rv = self.vpop();
                    let Value::Ptr(p) = self.vpop() else {
                        unreachable!("store without a place");
                    };
                    let rv = self.use_value(rv, loc)?;
                    let old = match self.read_word_fast(p) {
                        Some(v) => v,
                        None => {
                            let old = self.read_typed(p, loc)?;
                            self.use_value(old, loc)?
                        }
                    };
                    let stored = self.apply_binop(bop, old, rv, loc)?;
                    let stored = match self.write_word_fast(p, &stored, loc) {
                        Some(s) => {
                            if PROFILE {
                                self.prof.word_fast_hits += 1;
                            }
                            s
                        }
                        None => {
                            if PROFILE {
                                self.prof.word_fast_fallbacks += 1;
                            }
                            self.write_typed(p, stored, loc)?
                        }
                    };
                    self.vstack.push(stored);
                }
                Op::AssignSlot(i) => {
                    let v = self.assign_slot::<PROFILE>(code, slot_base, i, loc)?;
                    self.vstack.push(v);
                }
                Op::AssignSlotPop(i) => {
                    self.assign_slot::<PROFILE>(code, slot_base, i, loc)?;
                    self.fp.truncate(fp_base);
                }
                Op::IncDec(delta, is_post) => {
                    let Value::Ptr(p) = self.vpop() else {
                        unreachable!("IncDec without a place");
                    };
                    let (old, new) = self.incdec_at(p, delta, loc)?;
                    self.vstack.push(if is_post { old } else { new });
                }
                Op::IncDecSlotStmt(i) => {
                    self.incdec_slot::<PROFILE>(code, fc, slot_base, i, loc)?;
                    self.fp.truncate(fp_base);
                }
                Op::CastInt(t) => {
                    let v = self.vpop();
                    match self.use_value(v, loc)? {
                        Value::Int(c) => {
                            let r = self.convert_int(c, t, loc);
                            self.vstack.push(Value::Int(r));
                        }
                        Value::Ptr(_) => {
                            return Err(stop_unsupported(
                                "pointer-to-integer casts are outside the modeled semantics \
                                 (pointers have no numeric address here)",
                                loc,
                            ))
                        }
                        Value::Missing(_) => unreachable!(),
                    }
                }
                Op::CastPtr(pointee) => {
                    let v = self.vpop();
                    match self.use_value(v, loc)? {
                        Value::Int(c) if c.is_zero() => self.vstack.push(Value::Int(CInt::int(0))),
                        Value::Int(_) => {
                            return Err(stop_unsupported(
                                "integer-to-pointer casts are outside the modeled semantics",
                                loc,
                            ))
                        }
                        Value::Ptr(p) => {
                            let q = self.convert_pointer(p, pointee, loc)?;
                            self.vstack.push(Value::Ptr(q));
                        }
                        Value::Missing(_) => unreachable!(),
                    }
                }
                Op::CastVoid => {
                    self.vpop();
                    self.vstack.push(Value::Missing(UbKind::VoidValueUsed));
                }
                Op::SizeofExpr(inner) => {
                    match self.sizeof_expr_bytes(inner) {
                        Some(n) => self.vstack.push(Value::Int(CInt::new(n as i128, SIZE_T))),
                        None => return Err(stop_unsupported(
                            "the type of this `sizeof` operand is outside the modeled semantics",
                            loc,
                        )),
                    }
                }
                Op::ArgPush => {
                    let v = self.vpop();
                    let v = self.use_value(v, loc)?;
                    self.args.push(v);
                }
                Op::Call(f, argc) => {
                    settle!(loc);
                    let argv_base = self.args.len() - argc as usize;
                    let (ret, _) = self.call(f, argv_base, loc)?;
                    self.vstack.push(ret);
                }
                Op::Malloc => {
                    let v = self.args.pop().expect("Malloc without ArgPush");
                    let ret = self.builtin_malloc(v, loc)?;
                    self.vstack.push(ret);
                }
                Op::Free => {
                    let v = self.args.pop().expect("Free without ArgPush");
                    let ret = self.builtin_free(v, loc)?;
                    self.vstack.push(ret);
                }
                Op::TailSelf(argc) => {
                    settle!(loc);
                    let vals_base = self.vstack.len() - argc as usize;
                    if self.tail_rebind(func_idx, vals_base, loc)? {
                        // Frame reuse: the incarnation's locals die (the
                        // same kills the call epilogue would run), the
                        // operand stack, scopes, and footprint roll back
                        // to function entry, and control restarts at the
                        // body with the parameters rebound.
                        self.kill_created_from(c_enter);
                        self.vstack.truncate(v_enter);
                        self.scope_marks.truncate(s_enter);
                        self.fp.truncate(fp_base);
                        if PROFILE {
                            self.prof.frame_pool_hits += 1;
                        }
                        pc = fc.start;
                    } else {
                        // An argument shape the in-place rebind can't
                        // take verbatim: move the values to the argument
                        // stack, run the general call, and fall through
                        // to the `Ret` that still follows.
                        let argv_base = self.args.len();
                        self.args.extend(self.vstack.drain(vals_base..));
                        let (ret, _) = self.call(func_idx, argv_base, loc)?;
                        self.vstack.push(ret);
                    }
                }
                Op::Ret => {
                    self.steps += ops_since;
                    let v = self.vpop();
                    self.fp.truncate(fp_base);
                    let v = self.use_value(v, loc)?;
                    return Ok(Some((v, loc)));
                }
                Op::RetNone => {
                    self.steps += ops_since;
                    let void = self.frames.last().is_some_and(|f| f.returns_void);
                    let v = Value::Missing(if void {
                        UbKind::VoidValueUsed
                    } else {
                        UbKind::ReturnWithoutValue
                    });
                    return Ok(Some((v, loc)));
                }
                Op::EnterScope => self.scope_marks.push(self.created.len()),
                Op::ExitScope => {
                    let base = self.scope_marks.pop().expect("scope underflow");
                    self.kill_created_from(base);
                }
                Op::ScopePopN(n) => self.pop_scopes(n),
                Op::ScopePushN(n) => {
                    for _ in 0..n {
                        self.scope_marks.push(self.created.len());
                    }
                }
                Op::DeclAlloc(sid) | Op::DeclSimple(sid) => {
                    let Stmt::Decl(d) = unit.stmt(sid) else {
                        unreachable!("decl op on a non-decl statement");
                    };
                    self.decl_alloc(d, slot_base);
                    if matches!(op, Op::DeclSimple(_)) {
                        self.decl_finish(d, slot_base);
                    }
                }
                Op::DeclInit(sid) => {
                    let Stmt::Decl(d) = unit.stmt(sid) else {
                        unreachable!("decl op on a non-decl statement");
                    };
                    let v = self.vpop();
                    self.decl_init::<PROFILE>(d, slot_base, v, loc)?;
                    self.decl_finish(d, slot_base);
                    self.fp.truncate(fp_base);
                }
                Op::DeclFull(sid) => {
                    settle!(loc);
                    let Stmt::Decl(d) = unit.stmt(sid) else {
                        unreachable!("decl op on a non-decl statement");
                    };
                    self.exec_decl(d)?;
                }
                Op::EvalFull(e) => {
                    settle!(loc);
                    let v = self.eval_full(e)?;
                    self.vstack.push(v);
                }
                Op::EvalFullPop(e) => {
                    settle!(loc);
                    self.eval_full(e)?;
                }
                Op::ExecStmt(i) => {
                    settle!(loc);
                    let info = code.execs[i as usize];
                    match self.exec_stmt(info.stmt)? {
                        Flow::Normal => {}
                        Flow::Return(v, l) => return Ok(Some((v, l))),
                        Flow::Continue => match info.cont {
                            Some((pops, target)) => {
                                self.pop_scopes(pops);
                                pc = target;
                            }
                            None => {
                                // Stray continue: like the tree, control
                                // falls off the function.
                                self.pop_scopes(info.depth);
                                pc = end;
                            }
                        },
                        // `exec_switch` absorbs `break`; a `goto` cannot
                        // occur here (functions with both goto and switch
                        // are tree-only), but stay honest if it does.
                        Flow::Break => unreachable!("switch absorbs break"),
                        Flow::Goto(sym, gloc) => {
                            return Err(stop_unsupported(
                                format!(
                                    "`goto {}` targets no label in this function",
                                    self.name(sym)
                                ),
                                gloc,
                            ))
                        }
                    }
                }
                Op::ByteSweep(i) => {
                    // Step-neutral: cancel this dispatch's own tick;
                    // a successful sweep charges exactly the ops the
                    // generic loop would have settled, a fallback lets
                    // the generic ops (which follow immediately) count
                    // themselves.
                    ops_since -= 1;
                    if let Some(t) = self.byte_sweep::<PROFILE>(code, i, slot_base, &mut ops_since)
                    {
                        // The loop's condition is a sequence boundary;
                        // leave the arena as its last test would have.
                        self.fp.truncate(fp_base);
                        pc = t;
                    }
                }
                Op::FailUnsupported(m) => {
                    return Err(stop_unsupported(code.fails[m as usize].clone(), loc))
                }
                Op::FailUb(i) => return Err(Box::new(Stop::Ub(code.ubs[i as usize].clone()))),
            }
        }
        self.steps += ops_since;
        Ok(None)
    }
}

/// Shared helpers for the dispatch loop: slot access, fused operators,
/// and the fast/generic store pair. Every fast path is guarded by the
/// exact object state it assumes and falls back to the same shared core
/// the tree-walker uses, so no diagnostic can differ.
impl<'a> Interp<'a> {
    #[inline]
    fn vpop(&mut self) -> Value {
        self.vstack.pop().expect("operand stack underflow")
    }

    /// Try to rebind the current frame in place for a self-tail call
    /// whose argument values sit at `vstack[vals_base..]`. Returns
    /// `true` on success (the caller then rewinds to the function
    /// entry); `false` when an argument needs the general typed store,
    /// in which case nothing has been touched and the ordinary call
    /// runs instead.
    ///
    /// The logical call still happens: the depth limit fires with the
    /// tree-walker's exact message and position, each parameter takes
    /// the same converted store (§6.5.2.2:7) the call prologue performs
    /// on a fresh object, and the allocation-order serial advances as if
    /// the parameters had been allocated anew, so heap object naming
    /// stays in lockstep between engines.
    fn tail_rebind(&mut self, func_idx: u32, vals_base: usize, loc: SourceLoc) -> EResult<bool> {
        if self.frames.len() + self.tail_depth >= self.limits.max_call_depth {
            return Err(stop_unsupported("call depth limit exceeded", loc));
        }
        let nparams = self.frame_plans[func_idx as usize].params.len();
        debug_assert_eq!(self.vstack.len() - vals_base, nparams);
        // Check every argument before storing any: the rebind is
        // all-or-nothing so the fallback call sees untouched state.
        for i in 0..nparams {
            let pp = &self.frame_plans[func_idx as usize].params[i];
            if pp.scalar_fast.is_none() || !matches!(self.vstack[vals_base + i], Value::Int(_)) {
                return Ok(false);
            }
        }
        let slot_base = self.frames.last().expect("active frame").slot_base;
        for i in 0..nparams {
            let pp = self.frame_plans[func_idx as usize].params[i];
            let (Some(t), Value::Int(c)) = (pp.scalar_fast, self.vstack[vals_base + i]) else {
                unreachable!("checked above")
            };
            let stored = self.convert_int(c, t, loc);
            let slot = obj_slot(self.slots[slot_base + i]);
            let obj = &mut self.objects[slot];
            debug_assert!(obj.alive, "parameter object died mid-frame");
            obj.bytes.store(0, pp.size as usize, stored.bits());
            obj.ptr_slots.clear();
        }
        // Logically these are fresh parameter objects: allocation order
        // (and with it `heap object #N` naming) advances identically.
        self.alloc_count += nparams as u64;
        self.tail_depth += 1;
        self.frames.last_mut().expect("active frame").tail_calls += 1;
        Ok(true)
    }

    /// Pop `n` open scopes, ending the lifetimes they own (a `goto` or
    /// `continue` leaving nested blocks).
    fn pop_scopes(&mut self, n: u32) {
        for _ in 0..n {
            let base = self.scope_marks.pop().expect("scope underflow");
            self.kill_created_from(base);
        }
    }

    /// Object bound to a frame slot, or the tree-walker's exact
    /// "declaration not executed" stop.
    #[inline]
    fn bound_slot(
        &mut self,
        fc: &FnCode,
        slot_base: usize,
        slot: u32,
        loc: SourceLoc,
    ) -> EResult<usize> {
        match self.slots[slot_base + slot as usize] {
            obj if obj != SLOT_NONE => Ok(obj),
            _ => Err(stop_unsupported(
                format!(
                    "use of `{}` before its declaration executed",
                    self.name(fc.slot_syms[slot as usize])
                ),
                loc,
            )),
        }
    }

    /// Generic slot load: array designators decay to pointers, scalars
    /// read through the typed core (uninitialized reads and `_Bool`
    /// traps report exactly as in the tree).
    fn load_slot_generic(
        &mut self,
        fc: &FnCode,
        slot_base: usize,
        slot: u32,
        loc: SourceLoc,
    ) -> EResult<Value> {
        let obj = self.bound_slot(fc, slot_base, slot, loc)?;
        if self.obj_is_array(obj) {
            return Ok(Value::Ptr(self.designator_pointer(obj)));
        }
        let p = self.designator_pointer(obj);
        self.read_typed(p, loc)
    }

    /// Fast slot load for a scalar-declared non-`_Bool` slot: one init
    /// check over the whole word, one raw load. The guards reproduce
    /// everything `read_typed` would check for this statically-known
    /// shape (alive, fully sized, fully initialized); any other state
    /// falls back to the generic path for the byte-precise diagnostic.
    #[inline]
    fn load_slot_fast<const PROFILE: bool>(
        &mut self,
        fc: &FnCode,
        slot_base: usize,
        slot: u32,
        t: IntTy,
        loc: SourceLoc,
    ) -> EResult<Value> {
        let obj = self.slots[slot_base + slot as usize];
        if obj != SLOT_NONE {
            // `resolved` filters stale refs (recycled slot) along with
            // SLOT_NONE padding; both fall back for the exact diagnostic.
            if let Some(o) = self.resolved(obj) {
                if o.alive {
                    if let Some(bits) = o.bytes.word_init(t.size_bytes() as usize) {
                        if PROFILE {
                            self.prof.word_fast_hits += 1;
                        }
                        return Ok(Value::Int(CInt::from_bits(bits, t)));
                    }
                }
            }
        }
        if PROFILE {
            self.prof.word_fast_fallbacks += 1;
        }
        self.load_slot_generic(fc, slot_base, slot, loc)
    }

    /// Slot load for slots with no static scalar shape (pointer
    /// variables, arrays, `_Bool`). The hot case — a live, current
    /// pointer slot holding exactly one stored pointer at offset 0 —
    /// completes in one guarded lookup: for that shape `check_access`
    /// cannot fail (offset 0 is aligned and in bounds of the 8-byte
    /// object, and a pointer lvalue agrees with `Elem::Ptr`) and
    /// `read_typed` would return the out-of-band value verbatim.
    /// Everything else (arrays, zero-byte null, uninitialized, stale
    /// refs) falls back to the generic path for the exact diagnostic.
    #[inline]
    fn load_slot_any<const PROFILE: bool>(
        &mut self,
        fc: &FnCode,
        slot_base: usize,
        slot: u32,
        loc: SourceLoc,
    ) -> EResult<Value> {
        let obj = self.slots[slot_base + slot as usize];
        if obj != SLOT_NONE {
            if let Some(o) = self.resolved(obj) {
                if o.alive && !o.is_array && matches!(o.elem, Elem::Ptr(_)) {
                    if let [(0, v)] = o.ptr_slots.as_slice() {
                        let v = *v;
                        if PROFILE {
                            self.prof.word_fast_hits += 1;
                        }
                        return Ok(v);
                    }
                }
            }
        }
        if PROFILE {
            self.prof.word_fast_fallbacks += 1;
        }
        self.load_slot_generic(fc, slot_base, slot, loc)
    }

    /// A fused slot(/const) ⊕ slot(/const) operator: both operands load
    /// on the fast path, then the shared `apply_binop` core evaluates —
    /// overflow, shift-range, and division diagnostics are the tree's.
    fn fused_bin<const PROFILE: bool>(
        &mut self,
        code: &CodeUnit,
        fc: &FnCode,
        slot_base: usize,
        i: u32,
        b_const: bool,
        loc: SourceLoc,
    ) -> EResult<Value> {
        let f = code.fused[i as usize];
        let a = self.load_slot_fast::<PROFILE>(fc, slot_base, f.a_slot, f.a_ty, f.a_loc)?;
        let b = if b_const {
            Value::Int(code.pool[f.b_slot as usize])
        } else {
            self.load_slot_fast::<PROFILE>(fc, slot_base, f.b_slot, f.b_ty, f.b_loc)?
        };
        self.apply_binop(f.op, a, b, loc)
    }

    /// The value dereferenced by `*` / `[]`: the tree-walker's
    /// `eval_pointer` tail, over an already-computed operand.
    fn as_pointer(&mut self, v: Value, loc: SourceLoc) -> EResult<Pointer> {
        match self.use_value(v, loc)? {
            Value::Ptr(p) => Ok(p),
            Value::Int(c) if c.is_zero() => Err(self.ub(
                UbKind::NullDereference,
                loc,
                "dereference of a null pointer",
            )),
            Value::Int(c) => Err(self.ub(
                UbKind::NullDereference,
                loc,
                format!("dereference of invalid pointer value {c}"),
            )),
            Value::Missing(_) => unreachable!(),
        }
    }

    /// Simple or compound assignment to a scalar slot (the place was
    /// bound-checked before the right-hand side ran, preserving the
    /// tree's evaluation order). The fast path batches the init bitmap
    /// and size checks into one whole-word guarded store; `_Bool` and
    /// every non-pristine object state fall back to the typed core.
    fn assign_slot<const PROFILE: bool>(
        &mut self,
        code: &CodeUnit,
        slot_base: usize,
        i: u32,
        loc: SourceLoc,
    ) -> EResult<Value> {
        let st = code.stores[i as usize];
        let rv = self.vpop();
        let rv = self.use_value(rv, loc)?;
        let obj = self.slots[slot_base + st.slot as usize];
        debug_assert_ne!(obj, SLOT_NONE, "BindCheck must precede AssignSlot");
        if let (Some(t), Value::Int(c)) = (st.fast, rv) {
            let size = t.size_bytes() as usize;
            // Stale refs (recycled slot) fail `resolved` and take the
            // generic path, which reports the lifetime error.
            if let Some(o) = self.resolved(obj) {
                if o.alive && !o.is_const && o.bytes.len() == size {
                    match st.op {
                        None => {
                            if PROFILE {
                                self.prof.word_fast_hits += 1;
                            }
                            let stored = self.convert_int(c, t, loc);
                            let o = &mut self.objects[obj_slot(obj)];
                            o.bytes.store(0, size, stored.bits());
                            return Ok(Value::Int(stored));
                        }
                        Some(bop) if o.bytes.all_init(0, size) => {
                            let old = CInt::from_bits(o.bytes.load(0, size), t);
                            if PROFILE {
                                self.prof.word_fast_hits += 1;
                            }
                            let r = self.apply_binop(bop, Value::Int(old), Value::Int(c), loc)?;
                            let Value::Int(n) = r else { unreachable!() };
                            let stored = self.convert_int(n, t, loc);
                            let o = &mut self.objects[obj_slot(obj)];
                            o.bytes.store(0, size, stored.bits());
                            return Ok(Value::Int(stored));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        // Generic path: the typed core reports const violations,
        // uninitialized compound reads, and `_Bool` traps.
        if PROFILE {
            self.prof.word_fast_fallbacks += 1;
        }
        let p = self.designator_pointer(obj);
        let stored = match st.op {
            None => rv,
            Some(bop) => {
                let old = self.read_typed(p, loc)?;
                let old = self.use_value(old, loc)?;
                self.apply_binop(bop, old, rv, loc)?
            }
        };
        self.write_typed(p, stored, loc)
    }

    /// `++`/`--` through an arbitrary place: the tree-walker's
    /// `eval_incdec` tail over an already-computed pointer.
    fn incdec_at(&mut self, p: Pointer, delta: i64, loc: SourceLoc) -> EResult<(Value, Value)> {
        let old = self.read_typed(p, loc)?;
        let old = self.use_value(old, loc)?;
        let new = match old {
            Value::Int(n) => match consteval::arith(BinOp::Add, n, CInt::int(delta)) {
                Ok(r) => Value::Int(r),
                Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
            },
            Value::Ptr(ptr) => Value::Ptr(self.pointer_add(ptr, delta as i128, loc)?),
            Value::Missing(_) => unreachable!(),
        };
        let new = self.write_typed(p, new, loc)?;
        Ok((old, new))
    }

    /// Statement-position `x++` on a slot, value discarded: one op. The
    /// fast path runs when the object is pristine (alive, non-const,
    /// whole-word, fully initialized, non-`_Bool`); otherwise the
    /// generic tail reports exactly as the tree would.
    fn incdec_slot<const PROFILE: bool>(
        &mut self,
        code: &CodeUnit,
        fc: &FnCode,
        slot_base: usize,
        i: u32,
        loc: SourceLoc,
    ) -> EResult<()> {
        let d = code.incdecs[i as usize];
        let obj = self.bound_slot(fc, slot_base, d.slot, d.place_loc)?;
        if let Some(t) = d.fast {
            let size = t.size_bytes() as usize;
            if let Some(o) = self.resolved(obj) {
                if o.alive && !o.is_const && o.bytes.len() == size && o.bytes.all_init(0, size) {
                    let old = CInt::from_bits(o.bytes.load(0, size), t);
                    if PROFILE {
                        self.prof.word_fast_hits += 1;
                    }
                    let new = match consteval::arith(BinOp::Add, old, CInt::int(d.delta)) {
                        Ok(r) => r,
                        Err((kind, detail)) => return Err(self.ub(kind, loc, detail)),
                    };
                    let stored = self.convert_int(new, t, loc);
                    let o = &mut self.objects[obj_slot(obj)];
                    o.bytes.store(0, size, stored.bits());
                    return Ok(());
                }
            }
        }
        if PROFILE {
            self.prof.word_fast_fallbacks += 1;
        }
        let p = self.designator_pointer(obj);
        self.incdec_at(p, d.delta, loc)?;
        Ok(())
    }

    /// The allocation half of a declaration: scalar object, slot bound
    /// at the end of the declarator (§6.2.1:7) — before any initializer
    /// runs. The compiler routes redeclarations, `void`, and arrays to
    /// `DeclFull` instead, so no check is needed here.
    fn decl_alloc(&mut self, d: &Decl, slot_base: usize) {
        let elem = elem_of_ty(&d.ty);
        let obj = self.alloc(
            ObjName::Sym(d.name),
            elem.size() as usize,
            false,
            false,
            elem,
        );
        self.slots[slot_base + d.slot.index()] = obj;
    }

    /// The initialization half: converts like simple assignment
    /// (§6.7.9:11) through the typed core, at the initializer's own
    /// position — matching the tree's `init_loc`.
    fn decl_init<const PROFILE: bool>(
        &mut self,
        d: &Decl,
        slot_base: usize,
        v: Value,
        loc: SourceLoc,
    ) -> EResult<()> {
        let v = self.use_value(v, loc)?;
        let obj = self.slots[slot_base + d.slot.index()];
        let place = Pointer {
            obj,
            off: 0,
            ty: elem_of_ty(&d.ty).pointee(),
        };
        // The object is freshly allocated (alive, not yet const, no
        // pointer bytes), so a scalar initializer almost always takes
        // the one-word store.
        if self.write_word_fast(place, &v, loc).is_some() {
            if PROFILE {
                self.prof.word_fast_hits += 1;
            }
            return Ok(());
        }
        if PROFILE {
            self.prof.word_fast_fallbacks += 1;
        }
        self.write_typed(place, v, loc)?;
        Ok(())
    }

    /// Close out a declaration: the const qualifier guards the object
    /// only once its declaration completes (§6.7.3:6 vs §6.7.9).
    fn decl_finish(&mut self, d: &Decl, slot_base: usize) {
        let obj = self.slots[slot_base + d.slot.index()];
        self.objects[obj_slot(obj)].is_const = d.quals.is_const;
    }

    /// Element-stepping half of `p[i]` without the error plumbing: the
    /// exact liveness / `void *` / §6.5.6:8 range checks `pointer_add`
    /// performs, returning `None` (→ generic path, full diagnostics)
    /// the moment any would fail.
    #[inline]
    fn index_ptr_fast(&self, p: Pointer, iv: &Value) -> Option<Pointer> {
        let Value::Int(c) = iv else { return None };
        let esize = p.ty.size()? as i128;
        let o = self.resolved(p.obj)?;
        if !o.alive {
            return None;
        }
        let off = p.off as i128 + c.math() * esize;
        if off < 0 || off > o.bytes.len() as i128 {
            return None;
        }
        Some(Pointer {
            obj: p.obj,
            off: off as i64,
            ty: p.ty,
        })
    }

    /// One guarded whole-word load through `p`, batching the liveness,
    /// bounds, alignment, effective-type, and per-byte init checks
    /// `read_typed` would run for this statically-common shape (scalar
    /// non-`_Bool` lvalue over an object declared with that very type,
    /// no pointer bytes anywhere in it). `None` means the state is too
    /// interesting for one word op: the typed core runs and reports.
    /// Skipping the footprint push here is the sound §6.5:2 elision —
    /// this op shape is only emitted where overlap is impossible.
    #[inline]
    fn read_word_fast(&self, p: Pointer) -> Option<Value> {
        let PointeeTy::Scalar(t) = p.ty else {
            return None;
        };
        if t == IntTy::Bool {
            return None;
        }
        let o = self.resolved(p.obj)?;
        let size = t.size_bytes() as usize;
        let off = p.off;
        if o.alive
            && o.ptr_slots.is_empty()
            && off >= 0
            && off as usize + size <= o.bytes.len()
            && off % p.ty.align() == 0
            // Exact effective-type match — or a character-type read,
            // which §6.5:7 allows against any effective type (including
            // a heap block's `Untyped`, which char traffic never
            // imprints).
            && (o.elem == Elem::Scalar(t) || size == 1)
            && o.bytes.all_init(off as usize, size)
        {
            let bits = o.bytes.load(off as usize, size);
            return Some(Value::Int(CInt::from_bits(bits, t)));
        }
        None
    }

    /// Whole-word store counterpart of [`Self::read_word_fast`]: the
    /// same guards plus writability (`const`, liveness), then one
    /// converted store that marks the word initialized. The effective
    /// type stays exact — the guard requires the object's declared
    /// element to already *be* this scalar, so no imprinting happens.
    #[inline]
    fn write_word_fast(&mut self, p: Pointer, v: &Value, loc: SourceLoc) -> Option<Value> {
        let Value::Int(c) = *v else { return None };
        let PointeeTy::Scalar(t) = p.ty else {
            return None;
        };
        if t == IntTy::Bool {
            return None;
        }
        let size = t.size_bytes() as usize;
        let off = p.off;
        {
            let o = self.resolved(p.obj)?;
            if !(o.alive
                && !o.is_const
                && o.ptr_slots.is_empty()
                && off >= 0
                && off as usize + size <= o.bytes.len()
                && off % p.ty.align() == 0
                // Exact effective-type match — or a character-type
                // store, allowed against any effective type and never
                // imprinting one (§6.5:6), so the object's `elem` stays
                // exactly what the typed core would leave.
                && (o.elem == Elem::Scalar(t) || size == 1))
            {
                return None;
            }
        }
        let stored = self.convert_int(c, t, loc);
        self.objects[obj_slot(p.obj)]
            .bytes
            .store(off as usize, size, stored.bits());
        Some(Value::Int(stored))
    }

    // ----- fused byte sweeps -----

    /// Attempt the fused byte sweep `sweeps[i]`: one validation pass
    /// proving that no iteration of the generic loop could report a
    /// diagnostic (or observe state the bulk move wouldn't produce),
    /// then the whole copy/fill as one move, charging exactly the steps
    /// the generic loop would have settled. Returns the loop's exit pc
    /// on a completed sweep; `None` falls through to the generic ops,
    /// which replay the iterations — and their diagnostics — byte for
    /// byte.
    fn byte_sweep<const PROFILE: bool>(
        &mut self,
        code: &CodeUnit,
        i: u32,
        slot_base: usize,
        ops_since: &mut u64,
    ) -> Option<Pc> {
        let sw = code.sweeps[i as usize];
        let r = self.try_byte_sweep(sw, slot_base, ops_since);
        if PROFILE {
            match r {
                Some(_) => self.prof.sweep_hits += 1,
                None => self.prof.sweep_fallbacks += 1,
            }
        }
        r
    }

    fn try_byte_sweep(
        &mut self,
        sw: FusedSweep,
        slot_base: usize,
        ops_since: &mut u64,
    ) -> Option<Pc> {
        // The counter: a live, initialized, non-`const` plain `int`
        // whose value only the loop's own `k++` steps.
        let k_ref = self.slots[slot_base + sw.k_slot as usize];
        if k_ref == SLOT_NONE {
            return None;
        }
        let k = self.resolved(k_ref)?;
        if !k.alive
            || k.is_const
            || k.elem != Elem::Scalar(IntTy::Int)
            || k.bytes.len() != 4
            || !k.bytes.all_init(0, 4)
        {
            return None;
        }
        let k0 = k.bytes.load(0, 4) as u32 as i32 as i64;
        let count = sw.bound - k0;
        if count <= 0 {
            // Zero iterations: the generic condition simply fails once.
            return None;
        }
        let k_slab = obj_slot(k_ref);
        // The pointers: live character pointers read whole from their
        // variables, both accessing through the *same* character type so
        // the store's §6.5.16.1:2 conversion is the identity.
        let (pd, d_var) = self.sweep_pointer(slot_base, sw.d_slot)?;
        let PointeeTy::Scalar(char_t) = pd.ty else {
            return None;
        };
        if !pd.ty.is_char() {
            return None;
        }
        let (src, fill) = match sw.src {
            SweepSrc::Slot(s) => {
                let (ps, s_var) = self.sweep_pointer(slot_base, s)?;
                if ps.ty != pd.ty {
                    return None;
                }
                (Some((ps, s_var)), 0u8)
            }
            SweepSrc::Fill(c) => {
                // The generic store converts the constant every
                // iteration; only an exact (note-free) conversion is
                // bulk-fillable.
                let out = if c.ty == char_t {
                    c
                } else {
                    let (out, impl_defined) = c.convert(char_t);
                    if impl_defined {
                        return None;
                    }
                    out
                };
                (None, out.bits() as u8)
            }
        };
        // Destination object: alive, writable, no stored-pointer bytes
        // anywhere (a byte hitting a pointer's representation would
        // destroy it; a byte *read* from one would stop the engine),
        // and the whole swept range in bounds. Character lvalues pass
        // §6.5:7 against any element type and never imprint heap
        // memory, so no type state changes either.
        let d_slab = obj_slot(pd.obj);
        {
            let t = self.resolved(pd.obj)?;
            if !t.alive || t.is_const || !t.ptr_slots.is_empty() {
                return None;
            }
            if pd.off + k0 < 0 || pd.off + sw.bound > t.bytes.len() as i64 {
                return None;
            }
        }
        // Writing must not touch the loop's own state: the counter, or
        // the pointer variables (those hold stored pointers, so the
        // empty-`ptr_slots` guard above already excludes them — the
        // counter check is the load-bearing one).
        if d_slab == k_slab || d_slab == d_var {
            return None;
        }
        let src = match src {
            Some((ps, s_var)) => {
                if d_slab == s_var {
                    return None;
                }
                let t = self.resolved(ps.obj)?;
                if !t.alive || !t.ptr_slots.is_empty() {
                    return None;
                }
                let lo = ps.off + k0;
                if lo < 0 || ps.off + sw.bound > t.bytes.len() as i64 {
                    return None;
                }
                // Every source byte initialized up front; and reading
                // the counter's own object would see it change
                // mid-loop, so that aliasing falls back too.
                if !t.bytes.all_init(lo as usize, count as usize) {
                    return None;
                }
                if obj_slot(ps.obj) == k_slab {
                    return None;
                }
                Some(ps)
            }
            None => None,
        };
        // Step budget: if the generic loop would trip the limit at one
        // of its back-edges, run it generically so the stop lands at
        // exactly that back-edge.
        let total = count as u64 * sw.per_iter_ops + sw.tail_ops;
        if self.steps + *ops_since + total > self.limits.max_steps {
            return None;
        }
        // -- validated: perform the sweep --
        let n = count as usize;
        let d_lo = (pd.off + k0) as usize;
        match src {
            Some(ps) => {
                let s_slab = obj_slot(ps.obj);
                let s_lo = (ps.off + k0) as usize;
                // Forward per-byte order, exactly the generic loop's —
                // an overlap within one object propagates forward.
                for j in 0..n {
                    let b = self.objects[s_slab].bytes.get_byte(s_lo + j);
                    self.objects[d_slab].bytes.set_byte(d_lo + j, b);
                }
            }
            None => {
                for j in 0..n {
                    self.objects[d_slab].bytes.set_byte(d_lo + j, fill);
                }
            }
        }
        self.objects[d_slab].bytes.mark_init(d_lo, n);
        // The counter leaves the loop at its bound, as `k++` would.
        self.objects[k_slab]
            .bytes
            .store(0, 4, (sw.bound as i32 as u32) as u64);
        *ops_since += total;
        Some(sw.exit)
    }

    /// The pointer a sweep reads from pointer-variable slot `slot`,
    /// when that read could not report or stop: bound, current, alive,
    /// exactly one stored pointer covering bytes 0..8. Also returns the
    /// variable's own slab slot, so the sweep can refuse to write
    /// through its own pointer storage.
    fn sweep_pointer(&self, slot_base: usize, slot: u32) -> Option<(Pointer, usize)> {
        let r = self.slots[slot_base + slot as usize];
        if r == SLOT_NONE {
            return None;
        }
        let o = self.resolved(r)?;
        if !o.alive || o.bytes.len() != 8 {
            return None;
        }
        match o.ptr_slots.as_slice() {
            [(0, Value::Ptr(p))] => Some((*p, obj_slot(r))),
            _ => None,
        }
    }
}
