// Included (not compiled as its own test binary) by `differential.rs`
// and `engine_parity.rs` via `include!`, so both suites exercise the
// exact same expression set.

/// The shared table: every entry is checked for phase agreement, and
/// constant values are re-checked dynamically via an exit-code compare.
const TABLE: &[&str] = &[
    // plain int arithmetic
    "1 + 2 * 3",
    "(10 / 3) + (10 % 3)",
    "2147483647 + 1",
    "2147483647 * 2",
    "(-2147483647 - 1) - 1",
    "(-2147483647 - 1) / -1",
    "(-2147483647 - 1) % -1",
    "1 / 0",
    "1 % 0",
    "-(-2147483647 - 1)",
    // unsigned wrap: all defined
    "4294967295u + 1u",
    "0u - 1u",
    "2147483647u * 3u",
    "18446744073709551615uL + 1uL",
    // shifts, per width
    "1 << 30",
    "1 << 31",
    "1 << 32",
    "1 << -1",
    "-1 << 1",
    "1u << 31",
    "1u << 32",
    "1L << 31",
    "1L << 40",
    "1L << 62",
    "1L << 63",
    "1L << 64",
    "1uL << 63",
    "255 >> 4",
    "-16 >> 2",
    // promotions and usual arithmetic conversions
    "65535 * 65535",
    "65535L * 65535",
    "'A' + 1",
    "'\\n' * 10",
    "-1 < 1u",
    "1u + 1L",
    "(2147483648uL % 4294967296uL) + 0L",
    // sizeof as a constant: both phases must agree on every LP64 byte
    // size the byte-addressable memory model is laid out with
    "sizeof(int) + sizeof(long)",
    "sizeof(char) * 100",
    "sizeof(int *) - 8u",
    "sizeof(short) * 1000",
    "sizeof(long long) - sizeof(int)",
    "sizeof(unsigned short) + sizeof(_Bool)",
    "(int)sizeof(int *) * 8",
    // casts fold in constant expressions (§6.6:6) exactly as they
    // evaluate at run time
    "(int)3L + 4",
    "(char)300 + 0",
    "(unsigned char)300 + 0",
    "(short)65535 + 0",
    "(long)2147483647 + 1",
    "(unsigned int)(0u - 1u) / 2u",
    "(int)(char)200 + 0",
    // logic and conditionals with short circuits
    "0 && (1 / 0)",
    "1 || (1 / 0)",
    "1 ? 7 : 1 / 0",
    "0 ? 1 / 0 : 9",
    "~0u",
    "~0 + 1",
    // Promoted fuzz trophies (trophy-case/): expressions the sweep
    // minimized out of real phase divergences, kept in the shared table
    // so the agreement *and* value checks cover them forever.
    "(sizeof(0))",
    "(0 ? 0 : ((short)(0)))",
    "(9223372036854775807LL ? (0 ? 0 : 0) : 4294967295L)",
    "sizeof(0 ? (char)1 : (long)2) + 0u",
];
