//! Golden-output tests: the exact kcc-style report for one program per
//! detector family. These pin down the whole pipeline — parsing,
//! evaluation order, the catalog code, the C11 reference, and the
//! rendering — in one assertion each.

use cundef_semantics::check_translation_unit;

fn report(source: &str) -> String {
    let outcome = check_translation_unit(source).expect("source should parse");
    let err = outcome
        .ub()
        .unwrap_or_else(|| panic!("expected UB, got {outcome:?}"));
    err.to_diagnostic().to_string()
}

#[test]
fn golden_unsequenced_side_effect() {
    let rendered = report("int main(void) {\n  int x = 0;\n  x = x++ + 1;\n  return x;\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00016\n\
         Description: Unsequenced side effect on scalar object with side effect of same object.\n\
         See section 6.5:2 of ISO/IEC 9899:2011.\n\
         Detail: assignment to `x` unsequenced with another side effect on it\n\
         ===============================================\n\
         Function: main\n\
         Line: 3\n"
    );
}

#[test]
fn golden_division_by_zero() {
    let rendered = report("int main(void) {\n  int d = 0;\n  return 7 / d;\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00002\n\
         Description: Division by zero.\n\
         See section 6.5.5:5 of ISO/IEC 9899:2011.\n\
         Detail: 7 / 0\n\
         ===============================================\n\
         Function: main\n\
         Line: 3\n"
    );
}

#[test]
fn golden_signed_overflow() {
    let rendered = report("int main(void) {\n  int big = 2147483647;\n  return big + 1;\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00004\n\
         Description: Signed integer overflow.\n\
         See section 6.5:5 of ISO/IEC 9899:2011.\n\
         Detail: 2147483647 + 1 is not representable in int\n\
         ===============================================\n\
         Function: main\n\
         Line: 3\n"
    );
}

#[test]
fn golden_out_of_bounds_read() {
    let rendered =
        report("int main(void) {\n  int a[3] = {1, 2, 3};\n  int *p = a;\n  return *(p + 3);\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00023\n\
         Description: Read outside the bounds of an object.\n\
         See section 6.5.6:8 of ISO/IEC 9899:2011.\n\
         Detail: read of 4 byte(s) at byte offset 12 of `a` (12 bytes)\n\
         ===============================================\n\
         Function: main\n\
         Line: 4\n"
    );
}

#[test]
fn golden_read_indeterminate() {
    let rendered = report("int main(void) {\n  int y;\n  return y;\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00028\n\
         Description: Use of an indeterminate value.\n\
         See section 6.2.6.1:5 of ISO/IEC 9899:2011.\n\
         Detail: `y` holds an indeterminate value\n\
         ===============================================\n\
         Function: main\n\
         Line: 3\n"
    );
}

#[test]
fn golden_shift_too_far() {
    let rendered = report("int main(void) {\n  int bits = 32;\n  return 1 << bits;\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00007\n\
         Description: Shift amount not less than the width of the type.\n\
         See section 6.5.7:3 of ISO/IEC 9899:2011.\n\
         Detail: shift amount 32 >= width 32\n\
         ===============================================\n\
         Function: main\n\
         Line: 3\n"
    );
}

#[test]
fn golden_dead_object_access() {
    let rendered = report(
        "int *escape(void) {\n  int local = 5;\n  return &local;\n}\n\
         int main(void) {\n  int *p = escape();\n  return *p;\n}\n",
    );
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00022\n\
         Description: Access to an object outside of its lifetime.\n\
         See section 6.2.4:2 of ISO/IEC 9899:2011.\n\
         Detail: object `local` is outside its lifetime\n\
         ===============================================\n\
         Function: main\n\
         Line: 7\n"
    );
}

#[test]
fn golden_double_free() {
    let rendered =
        report("int main(void) {\n  int *p = malloc(1);\n  free(p);\n  free(p);\n  return 0;\n}\n");
    assert_eq!(
        rendered,
        "ERROR! KCC encountered an error.\n\
         ===============================================\n\
         Error: 00042\n\
         Description: free() of an already freed allocation.\n\
         See section 7.22.3.3:2 of ISO/IEC 9899:2011.\n\
         Detail: `heap object #1` was already freed\n\
         ===============================================\n\
         Function: main\n\
         Line: 4\n"
    );
}
