//! Property tests for the C integer type lattice (`ctype`): the
//! promotion and usual-arithmetic-conversion algebra over *all* type
//! pairs, and `CInt` object-representation round-trips at every width.
//!
//! These are exhaustive where the domain is small (11 types → 121
//! pairs, 1331 triples) and seeded-exhaustive over value patterns where
//! it is not — no randomness source outside the test.

use cundef_semantics::ctype::{CInt, IntTy, SIZE_T};

/// Every integer type of the target, in rank order.
const ALL: [IntTy; 11] = [
    IntTy::Bool,
    IntTy::Char,
    IntTy::UChar,
    IntTy::Short,
    IntTy::UShort,
    IntTy::Int,
    IntTy::UInt,
    IntTy::Long,
    IntTy::ULong,
    IntTy::LongLong,
    IntTy::ULongLong,
];

/// Deterministic 64-bit mixer (SplitMix64) for value-pattern sweeps.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Interesting bit patterns for a type plus a seeded spray.
fn patterns(ty: IntTy) -> Vec<u64> {
    let mut v = vec![
        0,
        1,
        u64::MAX,
        1u64 << (ty.width() - 1),
        (1u64 << (ty.width() - 1)).wrapping_sub(1),
    ];
    for i in 0..64u64 {
        v.push(mix(ty as u64 * 1000 + i));
    }
    v
}

#[test]
fn promotion_is_idempotent_and_never_below_int() {
    for t in ALL {
        let p = t.promote();
        assert_eq!(p.promote(), p, "{t}: promote must be idempotent");
        assert!(
            p.rank() >= IntTy::Int.rank(),
            "{t}: promoted to sub-int {p}"
        );
        // §6.3.1.1:2 — promotion is value-preserving on LP64: every value
        // of every sub-int type fits in the promoted type.
        assert!(p.contains(t.min()) && p.contains(t.max()));
        // Types at or above int rank are fixed points.
        if t.rank() >= IntTy::Int.rank() {
            assert_eq!(p, t);
        }
    }
}

#[test]
fn usual_arith_is_commutative_and_idempotent_over_all_pairs() {
    for a in ALL {
        for b in ALL {
            let ab = IntTy::usual_arith(a, b);
            let ba = IntTy::usual_arith(b, a);
            assert_eq!(ab, ba, "usual_arith({a}, {b}) not commutative");
            // The common type is a fixed point: converting both operands
            // to it and re-running the conversions changes nothing.
            assert_eq!(IntTy::usual_arith(ab, ab), ab);
            // …and never drops below int (§6.3.1.8 runs on promoted
            // operands).
            assert!(
                ab.rank() >= IntTy::Int.rank(),
                "usual_arith({a}, {b}) = {ab}"
            );
            // The common type has at least the rank of both promoted
            // operands — conversions never narrow.
            assert!(ab.rank() >= a.promote().rank().max(b.promote().rank()));
        }
    }
}

#[test]
fn usual_arith_absorbs_each_operand() {
    // usual_arith(a, usual_arith(a, b)) == usual_arith(a, b): once the
    // common type is found, pairing it with either original operand is a
    // no-op. (Full associativity over triples does not hold in C — e.g.
    // on LP64, (uint ⊔ long) ⊔ ulong and uint ⊔ (long ⊔ ulong) do agree,
    // but the absorption law is the one the evaluator actually relies
    // on when folding chained binary operators left to right.)
    for a in ALL {
        for b in ALL {
            let c = IntTy::usual_arith(a, b);
            assert_eq!(IntTy::usual_arith(a, c), c, "({a}, {b}) -> {c}");
            assert_eq!(IntTy::usual_arith(b, c), c, "({a}, {b}) -> {c}");
        }
    }
}

#[test]
fn common_type_represents_at_least_one_operand_fully() {
    // §6.3.1.8: at most one operand is converted with possible value
    // change; the other always fits. Check that for every pair, the
    // common type contains the full range of at least one of the two
    // promoted operands (both, when signedness agrees).
    for a in ALL {
        for b in ALL {
            let c = IntTy::usual_arith(a, b);
            let fits = |t: IntTy| c.contains(t.min()) && c.contains(t.max());
            assert!(
                fits(a.promote()) || fits(b.promote()),
                "usual_arith({a}, {b}) = {c} represents neither operand"
            );
        }
    }
}

#[test]
fn cint_bits_round_trip_at_every_width() {
    for ty in ALL {
        for bits in patterns(ty) {
            let v = CInt::from_bits(bits, ty);
            // from_bits truncates to the width; bits() must return
            // exactly that truncation, and re-assembling is the identity.
            assert_eq!(
                CInt::from_bits(v.bits(), ty),
                v,
                "{ty}: from_bits∘bits not identity for {bits:#x}"
            );
            // The mathematical value is always in range…
            assert!(ty.contains(v.math()), "{ty}: {} out of range", v.math());
            // …and new() on that value rebuilds the same representation
            // (for _Bool only when the value bit survives: from_bits
            // keeps the raw low bit, new() collapses nonzero to 1 — the
            // two agree on 0 and 1, the only valid _Bool objects).
            assert_eq!(CInt::new(v.math(), ty), v, "{ty}: new∘math not identity");
        }
    }
}

#[test]
fn conversion_to_unsigned_wraps_and_is_never_flagged() {
    // §6.3.1.3:2 — conversion to an unsigned type is always defined.
    for from in ALL {
        for bits in patterns(from) {
            let v = CInt::from_bits(bits, from);
            for to in ALL
                .into_iter()
                .filter(|t| !t.is_signed() || *t == IntTy::Bool)
            {
                let (out, note) = v.convert(to);
                assert!(!note, "{from} -> {to}: defined conversion flagged");
                assert_eq!(out.ty, to);
                if to == IntTy::Bool {
                    assert_eq!(out.math(), (!v.is_zero()) as i128);
                } else {
                    let m = 1i128 << to.width();
                    assert_eq!(out.math(), v.math().rem_euclid(m), "{from} -> {to}");
                }
            }
        }
    }
}

#[test]
fn conversion_notes_exactly_the_unrepresentable_signed_cases() {
    // §6.3.1.3:3 — the implementation-defined flag fires iff the target
    // is signed (not _Bool) and cannot represent the value.
    for from in ALL {
        for bits in patterns(from) {
            let v = CInt::from_bits(bits, from);
            for to in ALL {
                let (out, note) = v.convert(to);
                let expect = to != IntTy::Bool && to.is_signed() && !to.contains(v.math());
                assert_eq!(note, expect, "{from} -> {to}, value {}", v.math());
                // Representable conversions are value-preserving.
                if to.contains(v.math()) && to != IntTy::Bool {
                    assert_eq!(out.math(), v.math());
                }
            }
        }
    }
}

#[test]
fn promoted_values_are_preserved() {
    for ty in ALL {
        for bits in patterns(ty) {
            let v = CInt::from_bits(bits, ty);
            let p = v.promoted();
            assert_eq!(p.ty, ty.promote());
            assert_eq!(p.math(), v.math(), "{ty}: promotion changed the value");
        }
    }
}

#[test]
fn size_t_measures_every_sizeof() {
    // The generator and both engines spell sizeof results in SIZE_T;
    // every target size must be representable there (trivially, but the
    // constant must stay an unsigned 64-bit type for the LP64 layout).
    assert_eq!(SIZE_T, IntTy::ULong);
    assert!(!SIZE_T.is_signed());
    for t in ALL {
        assert!(SIZE_T.contains(t.size_bytes() as i128));
        assert_eq!(t.align_of(), t.size_bytes(), "{t}: not naturally aligned");
    }
}
